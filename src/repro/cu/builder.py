"""Computational Unit construction.

A CU (DiscoPoP terminology, Fig. 4 of the paper) is a maximal group of
instructions that follow a *read–compute–write* pattern around shared
variables.  We form CUs per basic block as connected components of the
def-use graph where instructions are linked by

* virtual-register def-use (expression temporaries), and
* accesses to the same memory symbol within the block (the "pivot variable"
  linkage that groups lines 3/5/6/7 of the paper's Fig. 4 example into the
  CU of ``x``).

Loop pseudo-instructions and branch terminators attach to no CU; components
without any memory access (pure control glue) are discarded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.linear import (
    Instr,
    IRFunction,
    IRProgram,
    MEM_READS,
    MEM_WRITES,
    Opcode,
    Reg,
    TERMINATORS,
)
from repro.profiler.report import InstrKey
from repro.profiler.static_info import block_loop_map


@dataclass
class CU:
    """One computational unit.

    ``cu_id`` is globally unique (``fn/block/ordinal``); START/END are the
    synthetic source lines spanned — the paper's ``<ID, START, END>`` node
    triple.
    """

    cu_id: str
    function: str
    block: str
    instrs: List[Instr] = field(default_factory=list)
    loop_id: Optional[str] = None  # innermost enclosing loop

    @property
    def start_line(self) -> int:
        lines = [i.line for i in self.instrs if i.line > 0]
        return min(lines) if lines else 0

    @property
    def end_line(self) -> int:
        lines = [i.line for i in self.instrs if i.line > 0]
        return max(lines) if lines else 0

    @property
    def instr_keys(self) -> List[InstrKey]:
        return [(self.function, i.iid) for i in self.instrs]

    def symbols_read(self) -> List[str]:
        return [i.symbol for i in self.instrs if i.opcode in MEM_READS]

    def symbols_written(self) -> List[str]:
        return [i.symbol for i in self.instrs if i.opcode in MEM_WRITES]

    def __len__(self) -> int:
        return len(self.instrs)


class _UnionFind:
    __slots__ = ("parent",)

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


_SKIP_OPS = TERMINATORS | {Opcode.LOOPENTER, Opcode.LOOPNEXT, Opcode.LOOPEXIT}


def build_cus(fn: IRFunction) -> List[CU]:
    """Form CUs for every basic block of ``fn``."""
    owner = block_loop_map(fn)
    cus: List[CU] = []
    for block in fn.blocks:
        members = [i for i in block.instrs if i.opcode not in _SKIP_OPS]
        if not members:
            continue
        index = {id(instr): pos for pos, instr in enumerate(members)}
        uf = _UnionFind(len(members))
        reg_def: Dict[str, int] = {}
        last_access: Dict[str, int] = {}
        for pos, instr in enumerate(members):
            # register def-use linkage
            for op in instr.operands:
                if isinstance(op, Reg) and op.name in reg_def:
                    uf.union(reg_def[op.name], pos)
            if instr.result is not None:
                reg_def[instr.result.name] = pos
            # same-symbol linkage (the pivot-variable grouping)
            symbol = instr.symbol
            if symbol is not None:
                if symbol in last_access:
                    uf.union(last_access[symbol], pos)
                last_access[symbol] = pos
        groups: Dict[int, List[Instr]] = {}
        for pos, instr in enumerate(members):
            groups.setdefault(uf.find(pos), []).append(instr)
        ordinal = 0
        for root in sorted(groups, key=lambda r: groups[r][0].iid):
            instrs = groups[root]
            if not any(
                i.opcode in MEM_READS or i.opcode in MEM_WRITES for i in instrs
            ):
                continue  # pure control glue, no data
            cus.append(
                CU(
                    cu_id=f"{fn.name}/{block.label}/cu{ordinal}",
                    function=fn.name,
                    block=block.label,
                    instrs=instrs,
                    loop_id=owner.get(block.label),
                )
            )
            ordinal += 1
    return cus


def cu_index_by_instr(cus: List[CU]) -> Dict[InstrKey, str]:
    """Map each instruction key to its CU id."""
    index: Dict[InstrKey, str] = {}
    for cu in cus:
        for key in cu.instr_keys:
            index[key] = cu.cu_id
    return index


def build_program_cus(program: IRProgram) -> List[CU]:
    """CUs for every function of ``program``."""
    cus: List[CU] = []
    for fn in program.functions.values():
        cus.extend(build_cus(fn))
    return cus
