"""Computational Unit (CU) formation — the DiscoPoP CU-graph analogue."""

from repro.cu.builder import CU, build_cus, build_program_cus, cu_index_by_instr

__all__ = ["CU", "build_cus", "build_program_cus", "cu_index_by_instr"]
