"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Malformed MiniC AST or LinearIR (failed verification, bad operands)."""


class LoweringError(IRError):
    """The AST -> LinearIR lowering encountered an unsupported construct."""


class InterpreterError(ReproError):
    """Runtime failure while executing LinearIR (bad memory access, etc.)."""


class ProfilingError(ReproError):
    """Dynamic profiling could not produce a dependence report."""


class GraphError(ReproError):
    """Invalid PEG construction or query."""


class EmbeddingError(ReproError):
    """Vocabulary / embedding failure (unknown statement, bad dimensions)."""


class ModelError(ReproError):
    """Neural-network model misconfiguration or shape mismatch."""


class DatasetError(ReproError):
    """Dataset assembly failure (bad split, unbalanced classes, etc.)."""


class ToolError(ReproError):
    """A tool baseline (pluto_lite / autopar_lite / discopop_cls) failed."""


class ConfigError(ReproError):
    """Invalid experiment or training configuration."""


class EngineError(ReproError):
    """Batched inference runtime failure (bad input kind, missing extractor)."""


class AdvisorError(ReproError):
    """Advice-plan construction, transformation, or validation failure."""


class ServeError(ReproError):
    """Inference-service failure (batcher shutdown, internal error)."""


class WireError(ServeError):
    """Malformed request payload (maps to HTTP 400)."""


class GraphValidationError(WireError):
    """A decodable request whose graph fails structural validation.

    Distinct from :class:`WireError` (undecodable JSON / missing fields /
    non-numeric data, HTTP 400): the payload parsed fine but the decoded
    arrays violate a model-input invariant — wrong shapes, NaN/Inf, an
    asymmetric or non-binary adjacency, too many nodes.  Maps to HTTP 422;
    ``findings`` carries machine-readable lint findings (plain dicts,
    JSON-ready) for the response payload.
    """

    def __init__(self, message: str, findings=None) -> None:
        super().__init__(message)
        self.findings = list(findings or [])


class WorkerExitedError(ServeError):
    """An engine worker process died or hung mid-request.

    Raised supervisor-side (:mod:`repro.serve.supervisor`) when the pipe to
    a worker breaks, the worker's process is found dead, or an IPC request
    exceeds its timeout.  The fleet retries the affected batch on a
    replacement worker up to ``worker_retries`` times before letting this
    escape to the client as a 500 — the chaos suite asserts it never does
    for a single worker kill.
    """


class QueueFullError(ServeError):
    """Admission control rejected the request: the queue is at capacity.

    Maps to HTTP 429; ``retry_after_s`` is the suggested client back-off,
    surfaced as a ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after_s: float = 0.05) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class DeadlineExceededError(ServeError):
    """The request's deadline expired before a response could be served.

    Raised both for requests shed while still queued and for requests whose
    batch finished after the deadline — a deadline is a promise to never
    serve late.  Maps to HTTP 504.
    """
