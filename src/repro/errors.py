"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Malformed MiniC AST or LinearIR (failed verification, bad operands)."""


class LoweringError(IRError):
    """The AST -> LinearIR lowering encountered an unsupported construct."""


class InterpreterError(ReproError):
    """Runtime failure while executing LinearIR (bad memory access, etc.)."""


class ProfilingError(ReproError):
    """Dynamic profiling could not produce a dependence report."""


class GraphError(ReproError):
    """Invalid PEG construction or query."""


class EmbeddingError(ReproError):
    """Vocabulary / embedding failure (unknown statement, bad dimensions)."""


class ModelError(ReproError):
    """Neural-network model misconfiguration or shape mismatch."""


class DatasetError(ReproError):
    """Dataset assembly failure (bad split, unbalanced classes, etc.)."""


class ToolError(ReproError):
    """A tool baseline (pluto_lite / autopar_lite / discopop_cls) failed."""


class ConfigError(ReproError):
    """Invalid experiment or training configuration."""


class EngineError(ReproError):
    """Batched inference runtime failure (bad input kind, missing extractor)."""
