"""View-importance analysis (Fig. 8).

"For each benchmark, we set N_multi, N_n, N_s as the number of parallelism
identified by our approach, the node feature view and the structural pattern
view correspondingly.  Then the importance of the view is represented as a
normalized value IMP_view = N_view / N_multi."  (Section IV-D)
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.dataset.types import LoopDataset
from repro.errors import DatasetError
from repro.train.adapters import ModelAdapter
from repro.train.eval import count_identified_parallel


def view_importance(
    multi_adapter: ModelAdapter,
    node_adapter: ModelAdapter,
    struct_adapter: ModelAdapter,
    suites: Dict[str, LoopDataset],
) -> Dict[str, Dict[str, float]]:
    """IMP_n / IMP_s per suite, plus the raw identified-parallel counts."""
    out: Dict[str, Dict[str, float]] = {}
    for suite, data in suites.items():
        if not len(data):
            raise DatasetError(f"empty suite {suite!r} for view importance")
        n_multi = count_identified_parallel(multi_adapter, data)
        n_node = count_identified_parallel(node_adapter, data)
        n_struct = count_identified_parallel(struct_adapter, data)
        denom = max(n_multi, 1)
        out[suite] = {
            "N_multi": float(n_multi),
            "N_n": float(n_node),
            "N_s": float(n_struct),
            "IMP_n": n_node / denom,
            "IMP_s": n_struct / denom,
        }
    return out
