"""Supervised training loop with curve recording (Fig. 7).

Per epoch: shuffle, minibatch, accumulate summed loss, one Adam step per
minibatch (loss scaled by batch size).  Records train loss/accuracy and,
optionally, held-out accuracy per ``eval_every`` epochs.

With ``TrainConfig.batched`` (the default) each minibatch runs through the
adapter's packed fast path — ``loss_and_correct_batched`` — so one
forward/backward covers the whole minibatch; ``batched=False`` drives the
per-sample reference path instead.  Both paths step the optimizer on the
same summed-loss-over-batch-size gradient and agree to floating-point
tolerance (``tests/train/test_batched_training.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.dataset.types import LoopDataset, LoopSample
from repro.errors import ConfigError
from repro.mlbase.metrics import accuracy
from repro.nn.optim import Adam
from repro.train.adapters import ModelAdapter
from repro.train.config import TrainConfig
from repro.utils.rng import ensure_rng


@dataclass
class TrainingCurves:
    """Per-epoch training history (the Fig. 7 series)."""

    epochs: List[int] = field(default_factory=list)
    loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    test_accuracy: List[float] = field(default_factory=list)
    wall_seconds: float = 0.0
    best_epoch: int = 0          # epoch whose parameters were kept

    def final_test_accuracy(self) -> Optional[float]:
        return self.test_accuracy[-1] if self.test_accuracy else None


def train_model(
    adapter: ModelAdapter,
    train_data: LoopDataset,
    config: TrainConfig,
    test_data: Optional[LoopDataset] = None,
    verbose: bool = False,
) -> TrainingCurves:
    """Train ``adapter`` on ``train_data``; returns the training curves."""
    samples: List[LoopSample] = list(train_data)
    if not samples:
        raise ConfigError("empty training set")
    rng = ensure_rng(config.seed)
    if config.max_train_samples and len(samples) > config.max_train_samples:
        picks = rng.choice(
            len(samples), size=config.max_train_samples, replace=False
        )
        samples = [samples[int(i)] for i in picks]

    optimizer = Adam(
        adapter.module.parameters(), lr=config.lr, clip=config.grad_clip
    )
    # opt the adapter into the tape-compiled packed path (no-op for
    # adapters without one, and for the per-sample reference path)
    if hasattr(adapter, "compiled"):
        adapter.compiled = bool(config.batched and config.compiled)
    step_loss = (
        adapter.loss_and_correct_batched
        if config.batched
        else adapter.loss_and_correct
    )
    curves = TrainingCurves()
    start = time.perf_counter()
    adapter.module.train()

    # best-epoch checkpointing on *training* loss (no test peeking): SGD at
    # the fast configuration's learning rate occasionally spikes on the last
    # epoch, and the paper's 200-epoch/1e-5 schedule effectively averages
    # that away — restoring the best-loss parameters plays the same role
    params = adapter.module.parameters()
    best_loss = float("inf")
    best_state = [p.data.copy() for p in params]

    for epoch in range(config.epochs):
        order = rng.permutation(len(samples))
        epoch_loss = 0.0
        epoch_correct = 0
        for batch_start in range(0, len(samples), config.batch_size):
            batch = [
                samples[int(i)]
                for i in order[batch_start : batch_start + config.batch_size]
            ]
            optimizer.zero_grad()
            loss, correct = step_loss(batch, config.temperature)
            (loss * (1.0 / len(batch))).backward()
            optimizer.step()
            epoch_loss += loss.item()
            epoch_correct += correct

        if epoch_loss < best_loss:
            best_loss = epoch_loss
            curves.best_epoch = epoch
            for slot, param in zip(best_state, params):
                slot[...] = param.data

        if epoch % config.eval_every == 0 or epoch == config.epochs - 1:
            curves.epochs.append(epoch)
            curves.loss.append(epoch_loss / len(samples))
            curves.train_accuracy.append(epoch_correct / len(samples))
            if test_data is not None and len(test_data):
                preds = adapter.predict(test_data)
                curves.test_accuracy.append(
                    accuracy(test_data.labels(), preds)
                )
            if verbose:
                test_part = (
                    f" test={curves.test_accuracy[-1]:.3f}"
                    if curves.test_accuracy
                    else ""
                )
                print(
                    f"[{adapter.name}] epoch {epoch:3d} "
                    f"loss={curves.loss[-1]:.4f} "
                    f"train={curves.train_accuracy[-1]:.3f}{test_part}"
                )

    # restore the best-loss parameters
    for slot, param in zip(best_state, params):
        param.data[...] = slot

    curves.wall_seconds = time.perf_counter() - start
    return curves
