"""Model adapters: a uniform train/predict interface over heterogeneous
models (per-graph GNNs, the batched-LSTM NCC, single-view ablations).

An adapter owns its model plus any input preprocessing (which features a
model sees is part of the baseline's definition — e.g. Static-GNN gets the
dynamic columns zeroed).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.dataset.types import LoopSample
from repro.embeddings.inst2vec import Inst2Vec
from repro.errors import ModelError
from repro.models.dgcnn import DGCNN, DGCNNConfig
from repro.models.mvgnn import MVGNN, MVGNNConfig
from repro.models.ncc import NCC, NCCConfig
from repro.models.single_view import SingleViewModel
from repro.nn.functional import (
    softmax_cross_entropy,
    softmax_cross_entropy_batch,
)
from repro.nn.layers import Module
from repro.nn.tensor import Tensor, no_grad
from repro.utils.rng import RngLike


class ModelAdapter:
    """Uniform interface the trainer drives."""

    name = "model"

    @property
    def module(self) -> Module:
        raise NotImplementedError

    def loss_and_correct(self, batch: Sequence[LoopSample], temperature: float):
        """(summed loss Tensor, #correct) for one minibatch."""
        raise NotImplementedError

    def predict(self, samples: Iterable[LoopSample]) -> np.ndarray:
        """Predicted labels without recording gradients."""
        raise NotImplementedError


class _PerGraphAdapter(ModelAdapter):
    """Base for models scoring one graph at a time."""

    def _logits(self, sample: LoopSample) -> Tensor:
        raise NotImplementedError

    def loss_and_correct(self, batch, temperature):
        total = None
        correct = 0
        for sample in batch:
            logits = self._logits(sample)
            loss = softmax_cross_entropy(logits, sample.label, temperature)
            total = loss if total is None else total + loss
            if int(np.argmax(logits.data)) == sample.label:
                correct += 1
        return total, correct

    def predict(self, samples) -> np.ndarray:
        self.module.eval()
        out: List[int] = []
        with no_grad():
            for sample in samples:
                out.append(int(np.argmax(self._logits(sample).data)))
        self.module.train()
        return np.asarray(out, dtype=np.int64)


class MVGNNAdapter(_PerGraphAdapter):
    """The paper's multi-view model."""

    name = "MV-GNN"

    def __init__(self, config: MVGNNConfig, rng: RngLike = None) -> None:
        self.model = MVGNN(config, rng=rng)

    @property
    def module(self) -> Module:
        return self.model

    def _logits(self, sample: LoopSample) -> Tensor:
        return self.model(sample.x_semantic, sample.x_structural, sample.adjacency)


class DGCNNAdapter(_PerGraphAdapter):
    """Node-feature-view DGCNN alone (full semantic features)."""

    name = "DGCNN"

    def __init__(self, config: DGCNNConfig, rng: RngLike = None) -> None:
        self.model = DGCNN(config, rng=rng)

    @property
    def module(self) -> Module:
        return self.model

    def _logits(self, sample: LoopSample) -> Tensor:
        return self.model(sample.x_semantic, sample.adjacency)


class StaticGNNAdapter(DGCNNAdapter):
    """Shen et al. baseline: the same DGCNN but static features only —
    dynamic columns (the trailing 7) are zeroed."""

    name = "Static GNN"

    def __init__(
        self, config: DGCNNConfig, n_dynamic: int = 7, rng: RngLike = None
    ) -> None:
        super().__init__(config, rng=rng)
        self.n_dynamic = n_dynamic

    def _logits(self, sample: LoopSample) -> Tensor:
        x = sample.x_semantic.copy()
        x[:, -self.n_dynamic :] = 0.0
        return self.model(x, sample.adjacency)


class SingleViewAdapter(_PerGraphAdapter):
    """One view + LSTM + dense (the Fig. 8 importance setup)."""

    def __init__(
        self,
        view: str,
        dgcnn_config: DGCNNConfig,
        walk_types: int = 0,
        rng: RngLike = None,
    ) -> None:
        self.view = view
        self.name = f"view:{view}"
        self.model = SingleViewModel(view, dgcnn_config, rng=rng)
        if view == "structural":
            if walk_types <= 0:
                raise ModelError("structural view needs walk_types")
            self.model.with_projection(walk_types, rng=rng)

    @property
    def module(self) -> Module:
        return self.model

    def _logits(self, sample: LoopSample) -> Tensor:
        x = (
            sample.x_semantic
            if self.view == "node"
            else sample.x_structural
        )
        return self.model(x, sample.adjacency)


class NCCAdapter(ModelAdapter):
    """NCC over inst2vec statement sequences, batched for speed."""

    name = "NCC"

    def __init__(
        self, config: NCCConfig, inst2vec: Inst2Vec, rng: RngLike = None
    ) -> None:
        self.model = NCC(config, rng=rng)
        self.inst2vec = inst2vec
        self._cache: dict = {}

    @property
    def module(self) -> Module:
        return self.model

    def _sequence(self, sample: LoopSample) -> np.ndarray:
        seq = self._cache.get(sample.sample_id)
        if seq is None:
            seq = self.inst2vec.embed_matrix(sample.statements)
            if seq.shape[1] != self.model.config.embedding_dim:
                # pad / trim the embedding dimension to the model's width
                width = self.model.config.embedding_dim
                padded = np.zeros((seq.shape[0], width))
                copy = min(width, seq.shape[1])
                padded[:, :copy] = seq[:, :copy]
                seq = padded
            self._cache[sample.sample_id] = seq
        return seq

    def loss_and_correct(self, batch, temperature):
        sequences = [self._sequence(s) for s in batch]
        labels = np.array([s.label for s in batch], dtype=np.int64)
        logits = self.model.forward_batch(sequences)
        loss = softmax_cross_entropy_batch(logits, labels, temperature)
        correct = int((np.argmax(logits.data, axis=1) == labels).sum())
        # trainer expects a summed loss for consistent lr scaling
        return loss * float(len(batch)), correct

    def predict(self, samples) -> np.ndarray:
        self.module.eval()
        samples = list(samples)
        out = np.zeros(len(samples), dtype=np.int64)
        with no_grad():
            for start in range(0, len(samples), 32):
                chunk = samples[start : start + 32]
                logits = self.model.forward_batch(
                    [self._sequence(s) for s in chunk]
                )
                out[start : start + len(chunk)] = np.argmax(logits.data, axis=1)
        self.module.train()
        return out
