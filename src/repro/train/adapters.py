"""Model adapters: a uniform train/predict interface over heterogeneous
models (per-graph GNNs, the batched-LSTM NCC, single-view ablations).

An adapter owns its model plus any input preprocessing (which features a
model sees is part of the baseline's definition — e.g. Static-GNN gets the
dynamic columns zeroed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

import numpy as np

from repro.dataset.types import LoopSample
from repro.embeddings.inst2vec import Inst2Vec
from repro.errors import ModelError
from repro.models.dgcnn import DGCNN, DGCNNConfig
from repro.models.mvgnn import MVGNN, MVGNNConfig
from repro.models.ncc import NCC, NCCConfig
from repro.models.single_view import SingleViewModel
from repro.nn.functional import (
    softmax_cross_entropy,
    softmax_cross_entropy_batch,
)
from repro.nn.layers import Module, normalized_adjacency
from repro.nn.tensor import Tensor, no_grad
from repro.runtime.batch import GraphBatch
from repro.runtime.tape import (
    Tape,
    trace_dgcnn_forward,
    trace_mvgnn_forward,
)
from repro.utils.rng import RngLike


class ModelAdapter:
    """Uniform interface the trainer drives.

    ``loss_and_correct`` is the per-sample *reference* implementation;
    adapters with a packed fast path additionally set
    ``supports_batched_training`` and implement
    :meth:`loss_and_correct_batched`, which must agree with the reference
    on loss, correct count, and every parameter gradient to floating-point
    tolerance (differentially tested in
    ``tests/train/test_batched_training.py``).
    """

    name = "model"
    supports_batched_training = False
    #: adapters whose packed forward can be trace-compiled set this; the
    #: trainer then flips ``compiled`` from ``TrainConfig.compiled``
    supports_compiled_training = False

    @property
    def module(self) -> Module:
        raise NotImplementedError

    def loss_and_correct(self, batch: Sequence[LoopSample], temperature: float):
        """(summed loss Tensor, #correct) for one minibatch."""
        raise NotImplementedError

    def loss_and_correct_batched(
        self, batch: Sequence[LoopSample], temperature: float
    ):
        """Packed-minibatch counterpart of :meth:`loss_and_correct`.

        Default: delegate to the per-sample reference path, so the trainer
        can call this unconditionally when ``TrainConfig.batched`` is on.
        """
        return self.loss_and_correct(batch, temperature)

    def predict(self, samples: Iterable[LoopSample]) -> np.ndarray:
        """Predicted labels without recording gradients."""
        raise NotImplementedError

    def calibrate(self, samples: Sequence[LoopSample], batch_size: int = 32):
        """Per-layer int8 scale calibration from a held-out shard.

        Drives :meth:`repro.runtime.engine.Engine.calibrate` over this
        adapter's module and returns the recorded
        :class:`~repro.nn.quantize.Calibration` — persist it next to the
        weights with ``save_params(adapter.module, path, calibration=cal)``
        so serving engines can load both together.  Only engine-compatible
        modules (the MVGNN family) have a fast tier; for other adapters
        the engine's tracer raises.
        """
        from repro.runtime.engine import Engine

        engine = Engine(self.module, batch_size=batch_size, compile=True)
        return engine.calibrate(list(samples), batch_size=batch_size)


@dataclass
class _PreparedGraph:
    """One sample's model-ready arrays, computed once and reused each epoch.

    ``adj_norm`` is the row-normalized ``D̃⁻¹Ã`` block the packed batch
    stacks directly (``GraphBatch.from_arrays(..., pre_normalized=True)``);
    ``semantic`` already carries any adapter-specific input transformation
    (zeroed dynamic columns, view selection).
    """

    semantic: np.ndarray
    structural: np.ndarray
    adj_norm: np.ndarray
    sample_id: str


class _PerGraphAdapter(ModelAdapter):
    """Base for models scoring one graph at a time.

    Subclasses opting into the packed training path set
    ``supports_batched_training = True`` and implement
    :meth:`_batch_logits`; the input-preparation cache here plays the same
    role for training that :class:`repro.runtime.features.FeatureCache`
    plays for inference — per-sample work (input transforms, adjacency
    normalization) is paid once, not once per epoch.  Keys are
    ``sample_id``, which the dataset pipeline guarantees identify content.
    """

    def __init__(self) -> None:
        self._prepared: Dict[str, _PreparedGraph] = {}
        # tape-compiled packed forward/backward (see repro.runtime.tape):
        # one recording per (graph count, train/eval mode) shape class
        self.compiled = False
        self._tapes: Dict[tuple, Tape] = {}

    def _logits(self, sample: LoopSample) -> Tensor:
        raise NotImplementedError

    def loss_and_correct(self, batch, temperature):
        total = None
        correct = 0
        for sample in batch:
            logits = self._logits(sample)
            loss = softmax_cross_entropy(logits, sample.label, temperature)
            total = loss if total is None else total + loss
            if int(np.argmax(logits.data)) == sample.label:
                correct += 1
        return total, correct

    # -- packed fast path ----------------------------------------------------

    def _semantic_input(self, sample: LoopSample) -> np.ndarray:
        """The node-feature matrix this model consumes (hook for subclasses)."""
        return sample.x_semantic

    def _prepare(self, sample: LoopSample) -> _PreparedGraph:
        prepared = self._prepared.get(sample.sample_id)
        if prepared is None:
            prepared = _PreparedGraph(
                semantic=self._semantic_input(sample),
                structural=sample.x_structural,
                adj_norm=normalized_adjacency(sample.adjacency),
                sample_id=sample.sample_id,
            )
            self._prepared[sample.sample_id] = prepared
        return prepared

    def _pack(self, batch: Sequence[LoopSample]) -> GraphBatch:
        prepared = [self._prepare(sample) for sample in batch]
        return GraphBatch.from_arrays(
            [p.semantic for p in prepared],
            [p.structural for p in prepared],
            [p.adj_norm for p in prepared],
            ids=[p.sample_id for p in prepared],
            pre_normalized=True,
        )

    def _batch_logits(self, pack: GraphBatch) -> Tensor:
        """``(num_graphs, num_classes)`` logits for one packed minibatch."""
        raise NotImplementedError

    # -- tape-compiled fast path --------------------------------------------

    def _trace_batch(self, pack: GraphBatch) -> Tape:
        """Record this adapter's packed forward (compiled adapters only)."""
        raise NotImplementedError

    def _tape_bindings(self, pack: GraphBatch) -> Dict[str, object]:
        raise NotImplementedError

    def _batch_logits_compiled(self, pack: GraphBatch) -> Tensor:
        """Tape-executed logits whose backward runs the mechanical VJP sweep.

        The returned Tensor is a graph *leaf* carrying a backward hook: when
        the loss backpropagates into it, :meth:`repro.runtime.tape.Tape.backward`
        replays the recorded program in reverse and accumulates parameter
        gradients — replacing the hand-written autograd closures.
        """
        key = (pack.num_graphs, self.module.training)
        tape = self._tapes.get(key)
        if tape is None:
            tape = self._trace_batch(pack)
            self._tapes[key] = tape
        values, residuals = tape.forward_values(self._tape_bindings(pack))
        out = values[tape.output]

        def backward(grad: np.ndarray) -> None:
            tape.backward(grad, values, residuals)

        return Tensor(
            np.array(out), requires_grad=True, _parents=(), _backward=backward
        )

    def _packed_logits(self, pack: GraphBatch) -> Tensor:
        if self.compiled and self.supports_compiled_training:
            return self._batch_logits_compiled(pack)
        return self._batch_logits(pack)

    def loss_and_correct_batched(self, batch, temperature):
        if not self.supports_batched_training:
            return self.loss_and_correct(batch, temperature)
        logits = self._packed_logits(self._pack(batch))
        labels = np.array([s.label for s in batch], dtype=np.int64)
        loss = softmax_cross_entropy_batch(
            logits, labels, temperature, reduction="sum"
        )
        correct = int((np.argmax(logits.data, axis=1) == labels).sum())
        return loss, correct

    def predict(self, samples) -> np.ndarray:
        self.module.eval()
        samples = list(samples)
        out = np.zeros(len(samples), dtype=np.int64)
        with no_grad():
            if self.supports_batched_training:
                for start in range(0, len(samples), 32):
                    chunk = samples[start : start + 32]
                    logits = self._packed_logits(self._pack(chunk))
                    out[start : start + len(chunk)] = np.argmax(
                        logits.data, axis=1
                    )
            else:
                for pos, sample in enumerate(samples):
                    out[pos] = int(np.argmax(self._logits(sample).data))
        self.module.train()
        return out


class MVGNNAdapter(_PerGraphAdapter):
    """The paper's multi-view model."""

    name = "MV-GNN"
    supports_batched_training = True
    supports_compiled_training = True

    def __init__(self, config: MVGNNConfig, rng: RngLike = None) -> None:
        super().__init__()
        self.model = MVGNN(config, rng=rng)

    @property
    def module(self) -> Module:
        return self.model

    def _logits(self, sample: LoopSample) -> Tensor:
        return self.model(sample.x_semantic, sample.x_structural, sample.adjacency)

    def _batch_logits(self, pack: GraphBatch) -> Tensor:
        return self.model.forward_batch(
            pack.x_semantic, pack.x_structural, pack.adj_norm, pack.sizes
        )

    def _trace_batch(self, pack: GraphBatch) -> Tape:
        return trace_mvgnn_forward(
            self.model, pack.x_semantic, pack.x_structural,
            pack.adj_norm, pack.sizes,
        )

    def _tape_bindings(self, pack: GraphBatch) -> Dict[str, object]:
        return {
            "x_semantic": pack.x_semantic,
            "x_structural": pack.x_structural,
            "adj_norm": pack.adj_norm,
            "sizes": pack.sizes,
        }


class DGCNNAdapter(_PerGraphAdapter):
    """Node-feature-view DGCNN alone (full semantic features)."""

    name = "DGCNN"
    supports_batched_training = True
    supports_compiled_training = True

    def __init__(self, config: DGCNNConfig, rng: RngLike = None) -> None:
        super().__init__()
        self.model = DGCNN(config, rng=rng)

    @property
    def module(self) -> Module:
        return self.model

    def _logits(self, sample: LoopSample) -> Tensor:
        return self.model(sample.x_semantic, sample.adjacency)

    def _batch_logits(self, pack: GraphBatch) -> Tensor:
        return self.model.forward_batch(
            pack.x_semantic, pack.adj_norm, pack.sizes
        )

    def _trace_batch(self, pack: GraphBatch) -> Tape:
        return trace_dgcnn_forward(
            self.model, pack.x_semantic, pack.adj_norm, pack.sizes
        )

    def _tape_bindings(self, pack: GraphBatch) -> Dict[str, object]:
        return {
            "x": pack.x_semantic,
            "adj_norm": pack.adj_norm,
            "sizes": pack.sizes,
        }


class StaticGNNAdapter(DGCNNAdapter):
    """Shen et al. baseline: the same DGCNN but static features only —
    dynamic columns (the trailing 7) are zeroed."""

    name = "Static GNN"

    def __init__(
        self, config: DGCNNConfig, n_dynamic: int = 7, rng: RngLike = None
    ) -> None:
        super().__init__(config, rng=rng)
        self.n_dynamic = n_dynamic

    def _semantic_input(self, sample: LoopSample) -> np.ndarray:
        x = sample.x_semantic.copy()
        x[:, -self.n_dynamic :] = 0.0
        return x

    def _logits(self, sample: LoopSample) -> Tensor:
        return self.model(self._semantic_input(sample), sample.adjacency)


class SingleViewAdapter(_PerGraphAdapter):
    """One view + LSTM + dense (the Fig. 8 importance setup).

    The LSTM head has no packed path, so this adapter always trains through
    the per-sample reference implementation.
    """

    def __init__(
        self,
        view: str,
        dgcnn_config: DGCNNConfig,
        walk_types: int = 0,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        self.view = view
        self.name = f"view:{view}"
        self.model = SingleViewModel(view, dgcnn_config, rng=rng)
        if view == "structural":
            if walk_types <= 0:
                raise ModelError("structural view needs walk_types")
            self.model.with_projection(walk_types, rng=rng)

    @property
    def module(self) -> Module:
        return self.model

    def _logits(self, sample: LoopSample) -> Tensor:
        x = (
            sample.x_semantic
            if self.view == "node"
            else sample.x_structural
        )
        return self.model(x, sample.adjacency)


class NCCAdapter(ModelAdapter):
    """NCC over inst2vec statement sequences, batched for speed."""

    name = "NCC"

    def __init__(
        self, config: NCCConfig, inst2vec: Inst2Vec, rng: RngLike = None
    ) -> None:
        self.model = NCC(config, rng=rng)
        self.inst2vec = inst2vec
        self._cache: dict = {}

    @property
    def module(self) -> Module:
        return self.model

    def _sequence(self, sample: LoopSample) -> np.ndarray:
        seq = self._cache.get(sample.sample_id)
        if seq is None:
            seq = self.inst2vec.embed_matrix(sample.statements)
            if seq.shape[1] != self.model.config.embedding_dim:
                # pad / trim the embedding dimension to the model's width
                width = self.model.config.embedding_dim
                padded = np.zeros((seq.shape[0], width))
                copy = min(width, seq.shape[1])
                padded[:, :copy] = seq[:, :copy]
                seq = padded
            self._cache[sample.sample_id] = seq
        return seq

    def loss_and_correct(self, batch, temperature):
        sequences = [self._sequence(s) for s in batch]
        labels = np.array([s.label for s in batch], dtype=np.int64)
        logits = self.model.forward_batch(sequences)
        loss = softmax_cross_entropy_batch(logits, labels, temperature)
        correct = int((np.argmax(logits.data, axis=1) == labels).sum())
        # trainer expects a summed loss for consistent lr scaling
        return loss * float(len(batch)), correct

    def predict(self, samples) -> np.ndarray:
        self.module.eval()
        samples = list(samples)
        out = np.zeros(len(samples), dtype=np.int64)
        with no_grad():
            for start in range(0, len(samples), 32):
                chunk = samples[start : start + 32]
                logits = self.model.forward_batch(
                    [self._sequence(s) for s in chunk]
                )
                out[start : start + len(chunk)] = np.argmax(logits.data, axis=1)
        self.module.train()
        return out
