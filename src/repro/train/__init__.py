"""Training and evaluation harness."""

from repro.train.config import TrainConfig
from repro.train.trainer import TrainingCurves, train_model
from repro.train.adapters import (
    ModelAdapter,
    MVGNNAdapter,
    DGCNNAdapter,
    StaticGNNAdapter,
    NCCAdapter,
    SingleViewAdapter,
)
from repro.train.data import cached_loop_samples, cached_samples_for_programs
from repro.train.eval import evaluate_adapter, evaluate_tool_votes
from repro.train.importance import view_importance
from repro.train.pretrain import PretrainConfig, pretrain_dgcnn

__all__ = [
    "TrainConfig",
    "TrainingCurves", "train_model",
    "ModelAdapter", "MVGNNAdapter", "DGCNNAdapter", "StaticGNNAdapter",
    "NCCAdapter", "SingleViewAdapter",
    "cached_loop_samples",
    "cached_samples_for_programs",
    "evaluate_adapter", "evaluate_tool_votes",
    "view_importance",
    "PretrainConfig", "pretrain_dgcnn",
]
