"""Evaluation helpers for Table III / Table IV."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.dataset.types import LoopDataset
from repro.errors import DatasetError
from repro.mlbase.metrics import accuracy
from repro.train.adapters import ModelAdapter


def evaluate_adapter(adapter: ModelAdapter, data: LoopDataset) -> float:
    """Accuracy of a trained adapter on ``data``."""
    if not len(data):
        raise DatasetError(f"empty evaluation set {data.name!r}")
    preds = adapter.predict(data)
    return accuracy(data.labels(), preds)


def evaluate_tool_votes(tool_name: str, data: LoopDataset) -> float:
    """Accuracy of a tool baseline from the votes stored on each sample."""
    if not len(data):
        raise DatasetError(f"empty evaluation set {data.name!r}")
    labels = data.labels()
    preds = np.array(
        [s.tool_votes.get(tool_name, 0) for s in data], dtype=np.int64
    )
    return accuracy(labels, preds)


def count_identified_parallel(
    adapter: ModelAdapter, data: LoopDataset
) -> int:
    """Number of loops the model identifies as parallelizable (Table IV)."""
    if not len(data):
        return 0
    preds = adapter.predict(data)
    return int(preds.sum())
