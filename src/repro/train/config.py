"""Training configuration.

The paper's settings (Section IV-B): 200 epochs, learning rate 1e-5,
softmax loss with temperature 0.5, SortPooling k = 135, NCC batch size 32.
``TrainConfig.paper()`` reproduces them; ``TrainConfig.fast()`` is the
CPU-friendly default used by the benchmark harness (fewer epochs, a higher
learning rate to converge within them, a smaller SortPooling k matched to
our sub-PEG sizes) — EXPERIMENTS.md records both.

``batched`` (default on) routes minibatches through the adapters' packed
fast path — one forward/backward per minibatch over a block-diagonal pack
instead of one per sample; differential tests pin both paths to the same
losses and gradients, and ``batched=False`` keeps the per-sample reference
implementation reachable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass
class TrainConfig:
    epochs: int = 30
    lr: float = 1e-3
    batch_size: int = 32
    temperature: float = 0.5
    sortpool_k: int = 16
    seed: int = 17
    max_train_samples: int = 0        # 0 = use everything
    eval_every: int = 1               # record curves every N epochs
    grad_clip: float = 5.0
    batched: bool = True              # pack minibatches (one forward/backward
                                      # per minibatch); False = per-sample
                                      # reference path
    compiled: bool = True             # trace-compile the packed forward into
                                      # a repro.runtime.tape program whose
                                      # backward is derived mechanically;
                                      # False = hand-written autograd (only
                                      # meaningful when batched is on)

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ConfigError("epochs must be >= 1")
        if not 0.0 < self.lr:
            raise ConfigError("lr must be positive")
        if self.batch_size < 1:
            raise ConfigError("batch_size must be >= 1")

    @classmethod
    def paper(cls) -> "TrainConfig":
        """The paper-fidelity settings (hours on CPU; use on a beefy box)."""
        return cls(epochs=200, lr=1e-5, batch_size=32, sortpool_k=135)

    @classmethod
    def fast(cls, seed: int = 17) -> "TrainConfig":
        return cls(epochs=50, lr=1.5e-3, batch_size=32, sortpool_k=16, seed=seed)

    @classmethod
    def smoke(cls, seed: int = 17) -> "TrainConfig":
        """Minimal settings for unit tests."""
        return cls(epochs=2, lr=1e-3, batch_size=8, sortpool_k=8, seed=seed)
