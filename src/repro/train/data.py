"""Training-side sample assembly through the runtime ``FeatureCache``.

:mod:`repro.dataset.extraction` recomputes inst2vec node features and
anonymous-walk distributions on every call — right for one-shot dataset
builds, wasteful for iterative training workflows (the CLI ``train``
command, hyper-parameter sweeps) that re-extract the same programs run
after run.  :func:`cached_loop_samples` assembles the same
:class:`~repro.dataset.types.LoopSample` objects with the two feature
matrices pulled through :class:`repro.runtime.features.FeatureCache`, so
extraction is paid once per loop *content* — and, because the cache is
disk-backed, once across processes: a second ``train`` run over the same
app skips straight to model math.

One semantic difference from dataset extraction: walk sampling derives
from the cache's fixed per-call seed (``walk_seed``) rather than a single
generator threaded through all loops — the determinism property that makes
the structural view cacheable at all (see
:mod:`repro.runtime.features`).  Both schemes draw from the same walk
distribution; they just differ in which concrete walks are sampled.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.features import attach_node_features, loop_features
from repro.dataset.types import LoopSample
from repro.embeddings.anonwalk import AnonymousWalkSpace
from repro.embeddings.inst2vec import Inst2Vec
from repro.errors import DatasetError
from repro.ir.ast_nodes import Program
from repro.ir.linear import IRProgram
from repro.ir.lowering import lower_program
from repro.ir.verify import verify_program
from repro.peg.builder import build_peg
from repro.peg.subgraph import all_loop_subpegs
from repro.profiler.interpreter import profile_program
from repro.runtime.features import FeatureCache, subpeg_adjacency


def cached_loop_samples(
    program: Program,
    labels: Optional[Mapping[str, int]],
    inst2vec: Inst2Vec,
    walk_space: AnonymousWalkSpace,
    cache: FeatureCache,
    suite: str,
    app: str,
    gamma: int = 30,
    walk_seed: int = 0,
    variant: str = "O0",
    ir_program: Optional[IRProgram] = None,
) -> List[LoopSample]:
    """One :class:`LoopSample` per labeled loop, features via ``cache``.

    ``labels`` maps loop_id -> 0/1; when None, every executed For loop is
    labeled by the dynamic oracle (as in dataset extraction).  Profiling
    and PEG construction still run per call — they are cheap next to
    feature extraction and provide the Table I values — but the inst2vec
    and anonymous-walk matrices come from the content-hash cache.
    """
    if ir_program is None:
        ir_program = lower_program(program)
        verify_program(ir_program)
    report = profile_program(ir_program)
    peg = build_peg(ir_program, report)
    attach_node_features(peg, ir_program, report)

    if labels is None:
        from repro.analysis.oracle import classify_all_loops

        labels = {
            loop_id: int(result.parallel)
            for loop_id, result in classify_all_loops(ir_program, report).items()
            if result.executed and ir_program.all_loops()[loop_id].var
        }

    subpegs = all_loop_subpegs(peg)
    samples: List[LoopSample] = []
    for loop_id, label in labels.items():
        if loop_id not in subpegs:
            raise DatasetError(
                f"labeled loop {loop_id!r} not found in program "
                f"{program.name!r} (variant {variant})"
            )
        subpeg = subpegs[loop_id]
        x_semantic = cache.semantic_features(subpeg, inst2vec)
        x_structural = cache.structural_features(
            subpeg, walk_space, gamma=gamma, seed=walk_seed
        )
        node_ids = list(subpeg.nodes)
        ordered = sorted(
            (subpeg.nodes[nid] for nid in node_ids),
            key=lambda node: (node.start_line, node.node_id),
        )
        statements: List[str] = []
        for node in ordered:
            statements.extend(node.statements)
        feats = loop_features(ir_program, report, loop_id)
        sample = LoopSample(
            sample_id=f"{program.name}/{variant}/{loop_id}",
            loop_id=loop_id,
            program_name=program.name,
            app=app,
            suite=suite,
            label=int(label),
            adjacency=subpeg_adjacency(subpeg),
            x_semantic=np.asarray(x_semantic),
            x_structural=np.asarray(x_structural),
            statements=statements,
            loop_features=feats.as_array(),
            meta={"variant": variant, "features": "cached"},
        )
        sample.validate()
        samples.append(sample)
    return samples


def _cached_samples_job(payload) -> Tuple[List[LoopSample], int, int]:
    """Worker body for :func:`cached_samples_for_programs`.

    Rebuilds a :class:`FeatureCache` over the shared on-disk directory, so
    workers cooperate through the disk (atomic writes make concurrent
    misses safe — last writer wins with identical content) and returns its
    local hit/miss counters for aggregation.
    """
    (program, labels, inst2vec, walk_space, cache, suite, app, gamma,
     walk_seed) = payload
    samples = cached_loop_samples(
        program, labels, inst2vec, walk_space, cache,
        suite=suite, app=app, gamma=gamma, walk_seed=walk_seed,
    )
    hits, misses = cache.snapshot()
    return samples, hits, misses


def cached_samples_for_programs(
    items: Sequence[Tuple[Program, Optional[Mapping[str, int]]]],
    inst2vec: Inst2Vec,
    walk_space: AnonymousWalkSpace,
    cache: FeatureCache,
    suite: str,
    app: str,
    gamma: int = 30,
    walk_seed: int = 0,
    n_workers: int = 1,
) -> Tuple[List[LoopSample], int, int]:
    """Fan :func:`cached_loop_samples` over ``items`` — one (program,
    labels) pair per task — across ``n_workers`` processes.

    Returns ``(samples, cache_hits, cache_misses)`` with samples in item
    order.  Results are identical for any worker count: each call derives
    its walks from the fixed ``walk_seed``, never from shared generator
    state.  With ``n_workers=1`` no processes are spawned and the parent's
    ``cache`` counters advance as before.
    """
    if n_workers <= 1:
        samples: List[LoopSample] = []
        for program, labels in items:
            samples.extend(
                cached_loop_samples(
                    program, labels, inst2vec, walk_space, cache,
                    suite=suite, app=app, gamma=gamma, walk_seed=walk_seed,
                )
            )
        hits, misses = cache.snapshot()
        return samples, hits, misses

    payloads = [
        (program, labels, inst2vec, walk_space, cache, suite, app, gamma,
         walk_seed)
        for program, labels in items
    ]
    samples = []
    hits = misses = 0
    import multiprocessing as mp

    mp_context = (
        mp.get_context("fork")
        if "fork" in mp.get_all_start_methods()
        else None
    )
    with ProcessPoolExecutor(
        max_workers=n_workers, mp_context=mp_context
    ) as executor:
        for job_samples, job_hits, job_misses in executor.map(
            _cached_samples_job, payloads
        ):
            samples.extend(job_samples)
            hits += job_hits
            misses += job_misses
    cache.hits += hits
    cache.misses += misses
    return samples, cache.hits, cache.misses
