"""GraphSAGE-style unsupervised pretraining (Section III-E).

"Upon that, the unsupervised objective of GraphSAGE is adopted for learning
and making predictions."  (paper, after Eq. 5)

The GraphSAGE unsupervised loss (Hamilton et al. 2017, Eq. 1) pulls
representations of nodes that co-occur on short random walks together and
pushes random negatives apart:

    L = -log σ(z_u · z_v) - Q · E_{n ~ P_neg} log σ(-z_u · z_n)

We apply it to the graph-convolution stack of a DGCNN over the training
sub-PEGs: positives are pairs within ``walk_window`` steps on a random walk,
negatives are sampled uniformly from other graphs' nodes.  Pretraining the
conv stack this way before supervised fine-tuning regularizes the scarce-
label regime — the usage the paper's Section V motivates ("additional
datasets for unsupervised model training").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.dataset.types import LoopDataset, LoopSample
from repro.errors import ConfigError
from repro.models.dgcnn import DGCNN
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class PretrainConfig:
    epochs: int = 5
    lr: float = 1e-3
    walk_length: int = 3
    walks_per_node: int = 2
    negatives: int = 3
    max_graphs_per_epoch: int = 64
    seed: int = 23


def _random_walk_pairs(
    adjacency: np.ndarray,
    walk_length: int,
    walks_per_node: int,
    rng: np.random.Generator,
) -> List[Tuple[int, int]]:
    """(anchor, positive) node-index pairs from short random walks."""
    n = adjacency.shape[0]
    neighbors = [np.nonzero(adjacency[i])[0] for i in range(n)]
    pairs: List[Tuple[int, int]] = []
    for start in range(n):
        for _ in range(walks_per_node):
            current = start
            for _step in range(walk_length):
                nbrs = neighbors[current]
                if nbrs.size == 0:
                    break
                current = int(nbrs[rng.integers(nbrs.size)])
                if current != start:
                    pairs.append((start, current))
    return pairs


def graphsage_unsupervised_loss(
    dgcnn: DGCNN,
    sample: LoopSample,
    x: np.ndarray,
    negatives_pool: Sequence[np.ndarray],
    config: PretrainConfig,
    rng: np.random.Generator,
) -> Optional[Tensor]:
    """The unsupervised loss of one graph, or None when it has no walks."""
    pairs = _random_walk_pairs(
        sample.adjacency, config.walk_length, config.walks_per_node, rng
    )
    if not pairs:
        return None
    z = dgcnn.node_representations(x, sample.adjacency)  # (n, channels)

    anchors = np.array([p[0] for p in pairs])
    positives = np.array([p[1] for p in pairs])
    z_anchor = z.take_rows(anchors)
    z_positive = z.take_rows(positives)
    pos_score = (z_anchor * z_positive).sum(axis=1)
    loss = -(pos_score.sigmoid() + Tensor(1e-12)).log().mean()

    # negatives: random node rows from other graphs, pushed through the
    # same conv stack against this graph's anchors
    if negatives_pool:
        neg_rows = []
        for _ in range(config.negatives):
            other = negatives_pool[int(rng.integers(len(negatives_pool)))]
            neg_rows.append(other[int(rng.integers(other.shape[0]))])
        z_neg = Tensor(np.stack(neg_rows))          # raw features as proxies
        # project negatives through the first conv's weight so the spaces
        # match (cheap single-layer negative encoder)
        w = dgcnn.graph_convs[0].weight
        z_neg_enc = (z_neg @ w).tanh()
        channels = z_neg_enc.shape[1]
        neg_score = (
            z_anchor[:, :channels].mean(axis=0) @ z_neg_enc.T
        )
        loss = loss - ((-neg_score).sigmoid() + Tensor(1e-12)).log().mean()
    return loss


def pretrain_dgcnn(
    dgcnn: DGCNN,
    data: LoopDataset,
    config: Optional[PretrainConfig] = None,
    use_structural: bool = False,
    rng: RngLike = None,
) -> List[float]:
    """Unsupervised pretraining of ``dgcnn``'s conv stack over ``data``.

    ``use_structural`` selects the walk-distribution features instead of the
    semantic ones (for pretraining a structural-view DGCNN).  Returns the
    per-epoch mean losses.
    """
    config = config or PretrainConfig()
    if not len(data):
        raise ConfigError("empty pretraining set")
    rng = ensure_rng(rng if rng is not None else config.seed)

    conv_params = [p for conv in dgcnn.graph_convs for p in conv.parameters()]
    optimizer = Adam(conv_params, lr=config.lr)

    def features_of(sample: LoopSample) -> np.ndarray:
        return sample.x_structural if use_structural else sample.x_semantic

    history: List[float] = []
    samples = list(data)
    for _epoch in range(config.epochs):
        order = rng.permutation(len(samples))[: config.max_graphs_per_epoch]
        epoch_losses: List[float] = []
        for pos in order:
            sample = samples[int(pos)]
            x = features_of(sample)
            if x.shape[1] != dgcnn.config.in_features:
                raise ConfigError(
                    f"pretraining features ({x.shape[1]}) do not match the "
                    f"DGCNN input width ({dgcnn.config.in_features})"
                )
            pool = [
                features_of(samples[int(i)])
                for i in rng.integers(len(samples), size=4)
            ]
            optimizer.zero_grad()
            loss = graphsage_unsupervised_loss(
                dgcnn, sample, x, pool, config, rng
            )
            if loss is None:
                continue
            loss.backward()
            optimizer.step()
            epoch_losses.append(loss.item())
        history.append(float(np.mean(epoch_losses)) if epoch_losses else 0.0)
    return history
