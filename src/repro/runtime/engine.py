"""The batched loop-classification engine.

:class:`Engine` is the throughput-oriented front door to the MV-GNN: callers
hand it many loops at once — precomputed :class:`~repro.dataset.types.LoopSample`
feature sets or raw sub-PEGs — and it answers with one label per loop,
amortizing the forward pass across :class:`~repro.runtime.batch.GraphBatch`
packs and memoizing feature extraction in a
:class:`~repro.runtime.features.FeatureCache`.

Inference runs under ``no_grad`` with the model in eval mode (dropout off),
and the model's train/eval state is restored afterwards, so an Engine can
safely share a model with a training loop.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dataset.types import LoopSample
from repro.embeddings.anonwalk import AnonymousWalkSpace
from repro.embeddings.inst2vec import Inst2Vec
from repro.errors import EngineError
from repro.models.mvgnn import MVGNN
from repro.nn.tensor import no_grad
from repro.peg.graph import PEG
from repro.runtime.batch import GraphBatch, iter_chunks
from repro.runtime.features import FeatureCache, subpeg_adjacency

@dataclass(frozen=True)
class GraphInput:
    """Pre-extracted model inputs for one loop sub-PEG.

    The wire-level input kind: callers (the serving layer, remote clients)
    that already hold the three feature arrays hand them over directly,
    with no dataset metadata and no extractor round-trip.  Shapes follow
    :class:`~repro.dataset.types.LoopSample`: ``adjacency`` is ``(n, n)``,
    the two feature matrices have ``n`` rows.
    """

    x_semantic: np.ndarray
    x_structural: np.ndarray
    adjacency: np.ndarray
    graph_id: str = ""


LoopInput = Union[LoopSample, PEG, GraphInput]


@dataclass
class EngineStats:
    """Cumulative counters across an Engine's lifetime."""

    graphs: int = 0
    batches: int = 0
    seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def graphs_per_sec(self) -> float:
        return self.graphs / self.seconds if self.seconds > 0 else 0.0

    def summary(self) -> str:
        return (
            f"{self.graphs} graphs in {self.batches} batches, "
            f"{self.seconds:.3f}s ({self.graphs_per_sec:.1f} graphs/sec), "
            f"feature cache {self.cache_hits} hits / "
            f"{self.cache_misses} misses"
        )


class Engine:
    """Batched MV-GNN inference over many loop sub-PEGs.

    Parameters
    ----------
    model:
        A (typically trained) :class:`~repro.models.mvgnn.MVGNN`.
    inst2vec, walk_space:
        Feature extractors, required only when ``predict_many`` receives raw
        sub-PEGs rather than LoopSamples.
    cache:
        Feature cache for sub-PEG inputs; a fresh :class:`FeatureCache` over
        the default DiskCache when omitted.
    batch_size:
        Default number of graphs packed per forward pass.
    gamma, walk_seed:
        Anonymous-walk sampling configuration for sub-PEG inputs (must match
        the training-time extraction for meaningful predictions).
    """

    def __init__(
        self,
        model: MVGNN,
        inst2vec: Optional[Inst2Vec] = None,
        walk_space: Optional[AnonymousWalkSpace] = None,
        cache: Optional[FeatureCache] = None,
        batch_size: int = 32,
        gamma: int = 30,
        walk_seed: int = 0,
    ) -> None:
        if batch_size <= 0:
            raise EngineError(f"batch_size must be positive, got {batch_size}")
        self.model = model
        self.inst2vec = inst2vec
        self.walk_space = walk_space
        self.cache = cache if cache is not None else FeatureCache()
        self.batch_size = batch_size
        self.gamma = gamma
        self.walk_seed = walk_seed
        self.stats = EngineStats()
        # Serializes stats mutation and the model's eval/train mode flips so
        # predict_many is safe to call from several threads at once (the
        # serving layer's inference executor does exactly that).  The
        # forward pass itself runs outside the lock — it only reads model
        # weights — so concurrent batches still overlap inside BLAS.
        self._state_lock = threading.Lock()
        self._active_calls = 0
        self._restore_training = False

    # -- input adaptation ----------------------------------------------------

    def _arrays_for(
        self, loop: LoopInput, pos: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, str]:
        if isinstance(loop, LoopSample):
            return loop.x_semantic, loop.x_structural, loop.adjacency, loop.sample_id
        if isinstance(loop, GraphInput):
            return (
                loop.x_semantic, loop.x_structural, loop.adjacency,
                loop.graph_id or f"graph-{pos}",
            )
        if isinstance(loop, PEG):
            if self.inst2vec is None or self.walk_space is None:
                raise EngineError(
                    "Engine needs inst2vec and walk_space to classify raw "
                    "sub-PEGs; construct it with both, or pass LoopSamples"
                )
            semantic = self.cache.semantic_features(loop, self.inst2vec)
            structural = self.cache.structural_features(
                loop, self.walk_space, gamma=self.gamma, seed=self.walk_seed
            )
            return semantic, structural, subpeg_adjacency(loop), loop.name
        raise EngineError(
            f"unsupported loop input #{pos}: {type(loop).__name__} "
            "(expected LoopSample, PEG, or GraphInput)"
        )

    def _batch_for(self, loops: Sequence[LoopInput], start: int) -> GraphBatch:
        semantic, structural, adjacencies, ids = [], [], [], []
        for pos, loop in enumerate(loops, start=start):
            sem, struct, adj, loop_id = self._arrays_for(loop, pos)
            semantic.append(sem)
            structural.append(struct)
            adjacencies.append(adj)
            ids.append(loop_id)
        return GraphBatch.from_arrays(semantic, structural, adjacencies, ids)

    # -- prediction ----------------------------------------------------------

    def logits_many(
        self, loops: Sequence[LoopInput], batch_size: Optional[int] = None
    ) -> np.ndarray:
        """``(len(loops), num_classes)`` logits, batched forward passes.

        Output row ``i`` corresponds to ``loops[i]`` regardless of batch
        boundaries, and equals the per-graph ``model.forward`` logits to
        floating-point tolerance.
        """
        loops = list(loops)
        if not loops:
            return np.zeros((0, self.model.config.num_classes))
        size = batch_size if batch_size is not None else self.batch_size
        if size <= 0:
            raise EngineError(f"batch_size must be positive, got {size}")
        started = time.perf_counter()

        self._enter_eval()
        try:
            rows: List[np.ndarray] = []
            batches = 0
            with no_grad():
                start = 0
                for chunk in iter_chunks(loops, size):
                    batch = self._batch_for(chunk, start)
                    logits = self.model.forward_batch(
                        batch.x_semantic,
                        batch.x_structural,
                        batch.adj_norm,
                        batch.sizes,
                    )
                    rows.append(logits.data)
                    batches += 1
                    start += len(chunk)
        finally:
            self._exit_eval()

        elapsed = time.perf_counter() - started
        with self._state_lock:
            self.stats.batches += batches
            self.stats.graphs += len(loops)
            self.stats.seconds += elapsed
            # Concurrent callers' cache hits/misses cannot be attributed
            # per-call, so the engine mirrors the cache's own cumulative
            # counters rather than diffing snapshots around the call.
            self.stats.cache_hits, self.stats.cache_misses = (
                self.cache.snapshot()
            )
        return np.concatenate(rows, axis=0)

    def _enter_eval(self) -> None:
        """First concurrent call flips the model to eval; the rest ride it."""
        with self._state_lock:
            if self._active_calls == 0:
                self._restore_training = self.model.training
                if self._restore_training:
                    self.model.eval()
            self._active_calls += 1

    def _exit_eval(self) -> None:
        with self._state_lock:
            self._active_calls -= 1
            if self._active_calls == 0 and self._restore_training:
                self.model.train()
                self._restore_training = False

    def predict_many(
        self, loops: Sequence[LoopInput], batch_size: Optional[int] = None
    ) -> np.ndarray:
        """Predicted labels for many loops: ``(len(loops),)`` int64.

        Accepts :class:`LoopSample` objects (precomputed features) and/or
        raw loop sub-PEGs (features extracted through the cache); the two
        kinds may be mixed in one call.  Identical to running
        ``argmax(model.forward(...))`` per loop, but packs ``batch_size``
        graphs per numpy-level pass.
        """
        logits = self.logits_many(loops, batch_size=batch_size)
        return np.argmax(logits, axis=1).astype(np.int64)

    def predict(self, loop: LoopInput) -> int:
        """Single-loop convenience wrapper over :meth:`predict_many`."""
        return int(self.predict_many([loop])[0])
