"""The batched loop-classification engine.

:class:`Engine` is the throughput-oriented front door to the MV-GNN: callers
hand it many loops at once — precomputed :class:`~repro.dataset.types.LoopSample`
feature sets or raw sub-PEGs — and it answers with one label per loop,
amortizing the forward pass across :class:`~repro.runtime.batch.GraphBatch`
packs and memoizing feature extraction in a
:class:`~repro.runtime.features.FeatureCache`.

Inference runs under ``no_grad`` with the model in eval mode (dropout off),
and the model's train/eval state is restored afterwards, so an Engine can
safely share a model with a training loop.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dataset.types import LoopSample
from repro.embeddings.anonwalk import AnonymousWalkSpace
from repro.embeddings.inst2vec import Inst2Vec
from repro.errors import EngineError
from repro.models.mvgnn import MVGNN
from repro.nn.quantize import PRECISIONS, Calibration, symmetric_scale
from repro.nn.tensor import no_grad
from repro.peg.graph import PEG
from repro.runtime.batch import GraphBatch, iter_chunks
from repro.runtime.features import FeatureCache, subpeg_adjacency
from repro.runtime.qtape import (
    calibration_from_maxima,
    quantize_tape,
    record_activation_maxima,
)
from repro.runtime.tape import TapeExecutor, trace_mvgnn_forward

@dataclass(frozen=True)
class GraphInput:
    """Pre-extracted model inputs for one loop sub-PEG.

    The wire-level input kind: callers (the serving layer, remote clients)
    that already hold the three feature arrays hand them over directly,
    with no dataset metadata and no extractor round-trip.  Shapes follow
    :class:`~repro.dataset.types.LoopSample`: ``adjacency`` is ``(n, n)``,
    the two feature matrices have ``n`` rows.
    """

    x_semantic: np.ndarray
    x_structural: np.ndarray
    adjacency: np.ndarray
    graph_id: str = ""


LoopInput = Union[LoopSample, PEG, GraphInput]


@dataclass
class EngineStats:
    """Cumulative counters across an Engine's lifetime."""

    graphs: int = 0
    batches: int = 0
    seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    compiled_batches: int = 0
    fast_batches: int = 0

    @property
    def graphs_per_sec(self) -> float:
        return self.graphs / self.seconds if self.seconds > 0 else 0.0

    def summary(self) -> str:
        return (
            f"{self.graphs} graphs in {self.batches} batches "
            f"({self.compiled_batches} tape-compiled), "
            f"{self.seconds:.3f}s ({self.graphs_per_sec:.1f} graphs/sec), "
            f"feature cache {self.cache_hits} hits / "
            f"{self.cache_misses} misses"
        )


class Engine:
    """Batched MV-GNN inference over many loop sub-PEGs.

    Parameters
    ----------
    model:
        A (typically trained) :class:`~repro.models.mvgnn.MVGNN`.
    inst2vec, walk_space:
        Feature extractors, required only when ``predict_many`` receives raw
        sub-PEGs rather than LoopSamples.
    cache:
        Feature cache for sub-PEG inputs; a fresh :class:`FeatureCache` over
        the default DiskCache when omitted.
    batch_size:
        Default number of graphs packed per forward pass.
    gamma, walk_seed:
        Anonymous-walk sampling configuration for sub-PEG inputs (must match
        the training-time extraction for meaningful predictions).
    compile:
        When True (the default), the batched forward is trace-compiled into
        a :class:`~repro.runtime.tape.Tape` per batch-shape class and
        executed by the fusing, buffer-reusing interpreter — byte-identical
        to the interpreted path (differentially tested), just faster.
        ``compile=False`` is the escape hatch that keeps the layer-by-layer
        reference path.
    precision:
        Default execution tier: ``"exact"`` (the default) replays the
        float64 tape byte-identically to the interpreted path; ``"fast"``
        replays an int8-grid float32 rewrite of the same tape
        (:mod:`repro.runtime.qtape`) — verdict-preserving within the
        tolerances the differential wall pins, at higher throughput.
        Either tier can also be selected per call on
        :meth:`logits_many` / :meth:`predict_many`.  ``"fast"`` without
        ``compile`` falls back to the exact interpreted forward (the tier
        is a tape rewrite; there is no tape to rewrite).
    calibration:
        Optional :class:`~repro.nn.quantize.Calibration` with per-layer
        int8 scales for the fast tier (from :meth:`calibrate` or
        :func:`repro.nn.serialize.load_calibration`).  Without one, fast
        tapes use dynamic per-call activation scales.
    """

    def __init__(
        self,
        model: MVGNN,
        inst2vec: Optional[Inst2Vec] = None,
        walk_space: Optional[AnonymousWalkSpace] = None,
        cache: Optional[FeatureCache] = None,
        batch_size: int = 32,
        gamma: int = 30,
        walk_seed: int = 0,
        compile: bool = True,
        precision: str = "exact",
        calibration: Optional[Calibration] = None,
    ) -> None:
        if batch_size <= 0:
            raise EngineError(f"batch_size must be positive, got {batch_size}")
        if precision not in PRECISIONS:
            raise EngineError(
                f"precision must be one of {PRECISIONS}, got {precision!r}"
            )
        self.model = model
        self.inst2vec = inst2vec
        self.walk_space = walk_space
        self.cache = cache if cache is not None else FeatureCache()
        self.batch_size = batch_size
        self.gamma = gamma
        self.walk_seed = walk_seed
        self.compile = bool(compile)
        self.precision = precision
        self.calibration = calibration
        self.stats = EngineStats()
        # One recorded tape per batch-shape class (keyed by graph count);
        # the fast tier keeps its quantized rewrites in a sibling cache
        # (together: one tape per (batch-shape, precision)).  Output
        # buffers are per-thread so concurrent predict_many calls never
        # share scratch memory.
        self._tapes: dict = {}
        self._fast_tapes: dict = {}
        self._tape_lock = threading.Lock()
        self._tls = threading.local()
        # Serializes stats mutation and the model's eval/train mode flips so
        # predict_many is safe to call from several threads at once (the
        # serving layer's inference executor does exactly that).  The
        # forward pass itself runs outside the lock — it only reads model
        # weights — so concurrent batches still overlap inside BLAS.
        self._state_lock = threading.Lock()
        self._active_calls = 0
        self._restore_training = False

    # -- input adaptation ----------------------------------------------------

    def _arrays_for(
        self, loop: LoopInput, pos: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, str]:
        if isinstance(loop, LoopSample):
            return loop.x_semantic, loop.x_structural, loop.adjacency, loop.sample_id
        if isinstance(loop, GraphInput):
            return (
                loop.x_semantic, loop.x_structural, loop.adjacency,
                loop.graph_id or f"graph-{pos}",
            )
        if isinstance(loop, PEG):
            if self.inst2vec is None or self.walk_space is None:
                raise EngineError(
                    "Engine needs inst2vec and walk_space to classify raw "
                    "sub-PEGs; construct it with both, or pass LoopSamples"
                )
            semantic = self.cache.semantic_features(loop, self.inst2vec)
            structural = self.cache.structural_features(
                loop, self.walk_space, gamma=self.gamma, seed=self.walk_seed
            )
            return semantic, structural, subpeg_adjacency(loop), loop.name
        raise EngineError(
            f"unsupported loop input #{pos}: {type(loop).__name__} "
            "(expected LoopSample, PEG, or GraphInput)"
        )

    def _batch_for(self, loops: Sequence[LoopInput], start: int) -> GraphBatch:
        semantic, structural, adjacencies, ids = [], [], [], []
        for pos, loop in enumerate(loops, start=start):
            sem, struct, adj, loop_id = self._arrays_for(loop, pos)
            semantic.append(sem)
            structural.append(struct)
            adjacencies.append(adj)
            ids.append(loop_id)
        # graph-structure hoisting: the normalized D̃⁻¹Ã block lives in the
        # feature cache, keyed by adjacency content, so re-classifying a
        # known loop skips the per-batch normalization entirely
        blocks = [self.cache.normalized_block(adj) for adj in adjacencies]
        return GraphBatch.from_arrays(
            semantic, structural, blocks, ids, pre_normalized=True
        )

    # -- prediction ----------------------------------------------------------

    def logits_many(
        self,
        loops: Sequence[LoopInput],
        batch_size: Optional[int] = None,
        precision: Optional[str] = None,
    ) -> np.ndarray:
        """``(len(loops), num_classes)`` logits, batched forward passes.

        Output row ``i`` corresponds to ``loops[i]`` regardless of batch
        boundaries, and equals the per-graph ``model.forward`` logits to
        floating-point tolerance (exactly, at ``precision="exact"``).
        ``precision`` overrides the engine default for this call.
        """
        loops = list(loops)
        if not loops:
            return np.zeros((0, self.model.config.num_classes))
        size = batch_size if batch_size is not None else self.batch_size
        if size <= 0:
            raise EngineError(f"batch_size must be positive, got {size}")
        tier = self.precision if precision is None else precision
        if tier not in PRECISIONS:
            raise EngineError(
                f"precision must be one of {PRECISIONS}, got {tier!r}"
            )
        fast = tier == "fast" and self.compile
        started = time.perf_counter()

        self._enter_eval()
        try:
            rows: List[np.ndarray] = []
            batches = 0
            compiled = 0
            with no_grad():
                start = 0
                for chunk in iter_chunks(loops, size):
                    batch = self._batch_for(chunk, start)
                    if fast:
                        rows.append(self._forward_compiled(batch, "fast"))
                        compiled += 1
                    elif self.compile:
                        # exact keeps the 1-arg call shape: test harnesses
                        # wrap _forward_compiled(self, batch) to inject skew
                        rows.append(self._forward_compiled(batch))
                        compiled += 1
                    else:
                        logits = self.model.forward_batch(
                            batch.x_semantic,
                            batch.x_structural,
                            batch.adj_norm,
                            batch.sizes,
                        )
                        rows.append(logits.data)
                    batches += 1
                    start += len(chunk)
        finally:
            self._exit_eval()

        elapsed = time.perf_counter() - started
        with self._state_lock:
            self.stats.batches += batches
            self.stats.compiled_batches += compiled
            if fast:
                self.stats.fast_batches += compiled
            self.stats.graphs += len(loops)
            self.stats.seconds += elapsed
            # Concurrent callers' cache hits/misses cannot be attributed
            # per-call, so the engine mirrors the cache's own cumulative
            # counters rather than diffing snapshots around the call.
            self.stats.cache_hits, self.stats.cache_misses = (
                self.cache.snapshot()
            )
        return np.concatenate(rows, axis=0)

    # -- tape compilation ----------------------------------------------------

    def _executor_for(self, batch: GraphBatch) -> TapeExecutor:
        key = batch.num_graphs
        executor = self._tapes.get(key)
        if executor is None:
            with self._tape_lock:
                executor = self._tapes.get(key)
                if executor is None:
                    tape = trace_mvgnn_forward(
                        self.model,
                        batch.x_semantic,
                        batch.x_structural,
                        batch.adj_norm,
                        batch.sizes,
                    )
                    executor = TapeExecutor(tape)
                    self._tapes[key] = executor
        return executor

    def _fast_executor_for(self, batch: GraphBatch) -> TapeExecutor:
        """Quantized rewrite of the batch-shape class's exact tape."""
        key = batch.num_graphs
        executor = self._fast_tapes.get(key)
        if executor is None:
            exact = self._executor_for(batch)  # trace (or reuse) the source
            with self._tape_lock:
                executor = self._fast_tapes.get(key)
                if executor is None:
                    executor = TapeExecutor(
                        quantize_tape(exact.tape, self.calibration)
                    )
                    self._fast_tapes[key] = executor
        return executor

    def reset_fast_tapes(self) -> None:
        """Drop quantized tapes (and their baked weights).

        Fast tapes bake int8-round-tripped copies of the weights, so they
        go stale when weights change in place — the fleet worker calls
        this after a hot reload; :meth:`calibrate` calls it after
        recording new scales.  Exact tapes read parameters live and are
        unaffected.
        """
        with self._tape_lock:
            self._fast_tapes.clear()

    def _forward_compiled(
        self, batch: GraphBatch, precision: str = "exact"
    ) -> np.ndarray:
        if precision == "fast":
            executor = self._fast_executor_for(batch)
        else:
            executor = self._executor_for(batch)
        pools = getattr(self._tls, "buffers", None)
        if pools is None:
            pools = self._tls.buffers = {}
        key = (precision, batch.num_graphs)
        buffers = pools.get(key)
        if buffers is None:
            buffers = pools[key] = executor.new_buffers()
        return executor.run(
            {
                "x_semantic": batch.x_semantic,
                "x_structural": batch.x_structural,
                "adj_norm": batch.adj_norm,
                "sizes": batch.sizes,
            },
            buffers,
        )

    def warm_up(self, batch_sizes: Optional[Sequence[int]] = None) -> int:
        """Pre-record forward tapes so first requests skip tracing.

        Traces (and buffer-allocates) the shape classes an engine serves
        most — a full ``batch_size`` pack and a single-graph pack — by
        classifying a synthetic two-node graph; the serving fleet calls
        this from worker startup.  Returns the number of batch-shape
        classes warmed (fast-default engines warm both tiers per class).
        """
        if not self.compile:
            return 0
        config = self.model.config
        graph = GraphInput(
            x_semantic=np.zeros((2, config.semantic_features)),
            x_structural=np.zeros((2, config.walk_types)),
            adjacency=np.array([[0.0, 1.0], [1.0, 0.0]]),
            graph_id="tape-warmup",
        )
        sizes = sorted(set(batch_sizes or ()) | {1, self.batch_size})
        # a fast-default engine warms both tiers (its fast tapes rewrite
        # the exact ones, and explicit ?precision=exact requests still
        # land on the float tape); an exact-default engine warms exact only
        tiers = ("exact",) if self.precision == "exact" else ("exact", "fast")
        graphs = 0
        fast_batches = 0
        for tier in tiers:
            for size in sizes:
                self.predict_many([graph] * size, batch_size=size,
                                  precision=tier)
                graphs += size
                fast_batches += tier == "fast"
        # synthetic warm-up packs are not served inputs: back their
        # accounting out so the ledger stays exact (graphs counts every
        # real input once).  Each warm size runs as one compiled batch.
        with self._state_lock:
            self.stats.graphs -= graphs
            self.stats.batches -= len(sizes) * len(tiers)
            self.stats.compiled_batches -= len(sizes) * len(tiers)
            self.stats.fast_batches -= fast_batches
        return len(sizes)

    def calibrate(
        self,
        loops: Sequence[LoopInput],
        batch_size: Optional[int] = None,
    ) -> Calibration:
        """Record per-layer int8 scales from a held-out shard of loops.

        Runs the exact tape over ``loops`` tracking the absolute maximum
        of every quantizable activation (keyed by op position — the op
        sequence is batch-size-invariant, so the scales serve every
        batch-shape class), derives weight scales from the live
        parameters, installs the result as this engine's calibration
        (dropping any cached fast tapes), and returns it.  Persist it next
        to a checkpoint with
        ``repro.nn.serialize.save_params(model, path, calibration=cal)``.
        """
        loops = list(loops)
        if not loops:
            raise EngineError("calibration needs at least one loop")
        if not self.compile:
            raise EngineError(
                "calibration requires a compiled engine (compile=True)"
            )
        size = batch_size if batch_size is not None else self.batch_size
        if size <= 0:
            raise EngineError(f"batch_size must be positive, got {size}")
        maxima: dict = {}
        prim_names = None
        tape = None
        self._enter_eval()
        try:
            with no_grad():
                start = 0
                for chunk in iter_chunks(loops, size):
                    batch = self._batch_for(chunk, start)
                    tape = self._executor_for(batch).tape
                    names = tuple(op.prim for op in tape.ops)
                    if prim_names is None:
                        prim_names = names
                    elif names != prim_names:
                        raise EngineError(
                            "calibration batches traced different op "
                            "sequences; cannot key scales by position"
                        )
                    record_activation_maxima(
                        tape,
                        {
                            "x_semantic": batch.x_semantic,
                            "x_structural": batch.x_structural,
                            "adj_norm": batch.adj_norm,
                            "sizes": batch.sizes,
                        },
                        maxima,
                    )
                    start += len(chunk)
        finally:
            self._exit_eval()
        param_scales = {
            tape.param_slots[op.inputs[1]]: symmetric_scale(
                tape.params[op.inputs[1]].data
            )
            for op in tape.ops
            if op.prim == "matmul" and op.inputs[1] in tape.params
        }
        calibration = calibration_from_maxima(
            prim_names, maxima, param_scales
        )
        self.calibration = calibration
        self.reset_fast_tapes()
        return calibration

    def _enter_eval(self) -> None:
        """First concurrent call flips the model to eval; the rest ride it."""
        with self._state_lock:
            if self._active_calls == 0:
                self._restore_training = self.model.training
                if self._restore_training:
                    self.model.eval()
            self._active_calls += 1

    def _exit_eval(self) -> None:
        with self._state_lock:
            self._active_calls -= 1
            if self._active_calls == 0 and self._restore_training:
                self.model.train()
                self._restore_training = False

    def predict_many(
        self,
        loops: Sequence[LoopInput],
        batch_size: Optional[int] = None,
        precision: Optional[str] = None,
    ) -> np.ndarray:
        """Predicted labels for many loops: ``(len(loops),)`` int64.

        Accepts :class:`LoopSample` objects (precomputed features) and/or
        raw loop sub-PEGs (features extracted through the cache); the two
        kinds may be mixed in one call.  Identical to running
        ``argmax(model.forward(...))`` per loop, but packs ``batch_size``
        graphs per numpy-level pass.  ``precision`` overrides the engine's
        default execution tier for this call.
        """
        logits = self.logits_many(
            loops, batch_size=batch_size, precision=precision
        )
        return np.argmax(logits, axis=1).astype(np.int64)

    def predict(self, loop: LoopInput) -> int:
        """Single-loop convenience wrapper over :meth:`predict_many`."""
        return int(self.predict_many([loop])[0])
