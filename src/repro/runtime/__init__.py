"""Batched sub-PEG inference runtime.

Serving-oriented layer over the paper's models: pack many loop sub-PEGs
into one block-diagonal forward pass (:class:`GraphBatch` + the models'
``forward_batch`` paths), memoize expensive feature extraction by content
hash (:class:`FeatureCache`), and expose both through
:meth:`Engine.predict_many`.  The forward itself is trace-compiled by
default (:mod:`repro.runtime.tape`): one recorded :class:`Tape` of
primitive ops per batch-shape class, executed by a fusing, buffer-reusing
interpreter that is byte-identical to the interpreted path.  See
``docs/RUNTIME.md`` for the API guide and measured throughput.
"""

from repro.runtime.batch import GraphBatch, iter_chunks
from repro.runtime.engine import Engine, EngineStats, GraphInput
from repro.runtime.features import (
    FeatureCache,
    embedder_fingerprint,
    subpeg_adjacency,
)
from repro.runtime.qtape import (
    QuantizedTape,
    quantize_tape,
    record_activation_maxima,
)
from repro.runtime.tape import (
    Tape,
    TapeExecutor,
    TapeOp,
    format_tape,
    record_tape,
    trace_dgcnn_forward,
    trace_mvgnn_forward,
)

__all__ = [
    "Engine",
    "EngineStats",
    "FeatureCache",
    "GraphBatch",
    "GraphInput",
    "QuantizedTape",
    "Tape",
    "TapeExecutor",
    "TapeOp",
    "embedder_fingerprint",
    "format_tape",
    "iter_chunks",
    "quantize_tape",
    "record_activation_maxima",
    "record_tape",
    "subpeg_adjacency",
    "trace_dgcnn_forward",
    "trace_mvgnn_forward",
]
