"""Batched sub-PEG inference runtime.

Serving-oriented layer over the paper's models: pack many loop sub-PEGs
into one block-diagonal forward pass (:class:`GraphBatch` + the models'
``forward_batch`` paths), memoize expensive feature extraction by content
hash (:class:`FeatureCache`), and expose both through
:meth:`Engine.predict_many`.  See ``docs/RUNTIME.md`` for the API guide and
measured throughput.
"""

from repro.runtime.batch import GraphBatch, iter_chunks
from repro.runtime.engine import Engine, EngineStats, GraphInput
from repro.runtime.features import (
    FeatureCache,
    embedder_fingerprint,
    subpeg_adjacency,
)

__all__ = [
    "Engine",
    "EngineStats",
    "FeatureCache",
    "GraphBatch",
    "GraphInput",
    "embedder_fingerprint",
    "iter_chunks",
    "subpeg_adjacency",
]
