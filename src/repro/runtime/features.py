"""Content-hash-keyed feature cache for the inference runtime.

Turning a sub-PEG into model inputs is the expensive half of classification:
inst2vec lookups per node plus ``gamma`` random walks per node for the
anonymous-walk distribution.  Both depend only on the loop's *content* — its
node statements/features, topology, and the extraction configuration — so
the runtime memoizes them in the existing :class:`repro.utils.cache.DiskCache`
keyed by a :func:`repro.utils.cache.stable_hash` of exactly that content.
Re-classifying an unchanged loop (across processes, thanks to the disk
backing) skips extraction entirely; any edit to the loop changes the key and
transparently recomputes.

Walk randomness is derived from a fixed per-call seed rather than a shared
advancing generator, so a loop's structural features are a pure function of
``(topology, walk length, gamma, seed)`` — the property that makes them
cacheable at all.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.features import FEATURE_NAMES
from repro.embeddings.anonwalk import AnonymousWalkSpace, structural_node_features
from repro.embeddings.inst2vec import Inst2Vec
from repro.nn.layers import normalized_adjacency
from repro.peg.graph import PEG
from repro.utils.cache import DiskCache, stable_hash
from repro.utils.rng import ensure_rng


def subpeg_adjacency(subpeg: PEG) -> np.ndarray:
    """Undirected ``(n, n)`` 0/1 adjacency in ``subpeg.nodes`` order.

    Mirrors dataset extraction: self-loops dropped, every remaining edge
    (hierarchy or dependence) symmetrized.
    """
    node_ids = list(subpeg.nodes)
    index = {nid: pos for pos, nid in enumerate(node_ids)}
    adjacency = np.zeros((len(node_ids), len(node_ids)))
    for edge in subpeg.edges:
        a, b = index[edge.src], index[edge.dst]
        if a != b:
            adjacency[a, b] = 1.0
            adjacency[b, a] = 1.0
    return adjacency


def embedder_fingerprint(inst2vec: Inst2Vec) -> str:
    """Digest identifying a trained inst2vec (vocabulary + weights).

    Two embedders with the same fingerprint produce identical node features,
    so cached semantic features keyed on it survive process restarts but
    never leak across retrained models.
    """
    if inst2vec.vocab is None or inst2vec.w_in is None:
        return f"untrained-{inst2vec.dim}"
    digest = hashlib.sha256()
    digest.update(str(inst2vec.dim).encode())
    for token in inst2vec.vocab.tokens:
        digest.update(token.encode("utf-8", "replace"))
        digest.update(b"\x00")
    digest.update(np.ascontiguousarray(inst2vec.w_in).tobytes())
    return digest.hexdigest()[:20]


def _topology_payload(subpeg: PEG) -> Dict[str, object]:
    node_ids = list(subpeg.nodes)
    edges = sorted(
        {
            tuple(sorted((edge.src, edge.dst)))
            for edge in subpeg.edges
            if edge.src != edge.dst
        }
    )
    return {"nodes": node_ids, "edges": edges}


class FeatureCache:
    """Memoized sub-PEG → feature-matrix extraction over a DiskCache.

    ``hits`` / ``misses`` count cache outcomes across both feature kinds;
    :meth:`snapshot` returns them for engine statistics.
    """

    #: in-memory entries kept by the normalized-adjacency memo (LRU)
    ADJ_MEMO_MAX = 4096

    def __init__(self, disk: Optional[DiskCache] = None) -> None:
        self.disk = disk if disk is not None else DiskCache()
        self.hits = 0
        self.misses = 0
        # Guards counter mutation only: the serving layer calls
        # predict_many from a thread pool, so hits/misses increments must
        # not race.  Disk I/O stays outside the lock — DiskCache writes are
        # atomic renames, and a double-compute race between two missing
        # threads is benign because extraction is deterministic.
        self._lock = threading.Lock()
        # Structure-only computations hoisted out of the per-batch forward
        # by the tape runtime: the normalized D̃⁻¹Ã block of a graph depends
        # only on its adjacency bytes, so repeat classifications of the
        # same loop skip the normalization entirely.  Separate counters —
        # these are in-memory, per-process, and much cheaper than the disk
        # feature entries tracked by ``hits``/``misses``.
        self._adj_memo: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._adj_lock = threading.Lock()
        self.adj_hits = 0
        self.adj_misses = 0

    # -- semantic view -------------------------------------------------------

    def semantic_features(
        self,
        subpeg: PEG,
        inst2vec: Inst2Vec,
        static_only: bool = False,
    ) -> np.ndarray:
        """``(n, inst2vec.dim + len(FEATURE_NAMES))`` node-view features.

        Row order follows ``subpeg.nodes``; columns are the inst2vec mean of
        each node's statements followed by the Table I dynamic feature
        columns (zeroed when ``static_only``).
        """
        payload = {
            "kind": "semantic",
            "nodes": [
                {
                    "id": nid,
                    "statements": node.statements,
                    "features": sorted(node.features.items()),
                }
                for nid, node in subpeg.nodes.items()
            ],
            "embedder": embedder_fingerprint(inst2vec),
            "static_only": bool(static_only),
        }
        key = f"rtfeat-sem-{stable_hash(payload)}"
        return self._get_or_compute(
            key, lambda: self._compute_semantic(subpeg, inst2vec, static_only)
        )

    @staticmethod
    def _compute_semantic(
        subpeg: PEG, inst2vec: Inst2Vec, static_only: bool
    ) -> np.ndarray:
        n_dyn = len(FEATURE_NAMES)
        out = np.zeros((len(subpeg.nodes), inst2vec.dim + n_dyn))
        for pos, node in enumerate(subpeg.nodes.values()):
            out[pos, : inst2vec.dim] = inst2vec.embed_sequence(node.statements)
            if not static_only:
                out[pos, inst2vec.dim :] = [
                    node.features.get(name, 0.0) for name in FEATURE_NAMES
                ]
        return out

    # -- structural view -----------------------------------------------------

    def structural_features(
        self,
        subpeg: PEG,
        walk_space: AnonymousWalkSpace,
        gamma: int = 30,
        seed: int = 0,
    ) -> np.ndarray:
        """``(n, walk_space.num_types)`` anonymous-walk distributions.

        Row order follows ``subpeg.nodes``.  Deterministic in
        ``(topology, walk length, gamma, seed)``: the generator is freshly
        seeded per call, so cached and recomputed values are identical.
        """
        payload = {
            "kind": "structural",
            **_topology_payload(subpeg),
            "length": walk_space.length,
            "gamma": int(gamma),
            "seed": int(seed),
        }
        key = f"rtfeat-walk-{stable_hash(payload)}"

        def compute() -> np.ndarray:
            _ids, features = structural_node_features(
                subpeg, walk_space, gamma=gamma, rng=ensure_rng(seed)
            )
            return features

        return self._get_or_compute(key, compute)

    # -- graph structure (tape-runtime hoisting) -----------------------------

    def normalized_block(self, adjacency: np.ndarray) -> np.ndarray:
        """Memoized row-normalized ``D̃⁻¹Ã`` block for one graph.

        Keyed by the adjacency's content bytes; callers must treat the
        returned array as read-only (``GraphBatch`` block-stacks it without
        writing).  This is the shape/structure computation the tape runtime
        hoists out of every forward pass into the cache entry.
        """
        arr = np.ascontiguousarray(adjacency, dtype=np.float64)
        key = f"{arr.shape[0]}-{hashlib.sha256(arr.tobytes()).hexdigest()}"
        with self._adj_lock:
            cached = self._adj_memo.get(key)
            if cached is not None:
                self.adj_hits += 1
                self._adj_memo.move_to_end(key)
                return cached
            self.adj_misses += 1
        block = normalized_adjacency(arr)
        with self._adj_lock:
            self._adj_memo[key] = block
            while len(self._adj_memo) > self.ADJ_MEMO_MAX:
                self._adj_memo.popitem(last=False)
        return block

    # -- bookkeeping --------------------------------------------------------

    def _get_or_compute(self, key: str, fn) -> np.ndarray:
        cached = self.disk.get(key)
        if cached is not None:
            with self._lock:
                self.hits += 1
            return cached
        with self._lock:
            self.misses += 1
        value = fn()
        self.disk.put(key, value)
        return value

    def snapshot(self) -> Tuple[int, int]:
        """Current ``(hits, misses)`` counters."""
        with self._lock:
            return self.hits, self.misses
