"""GraphBatch: pack N loop sub-PEGs into one block-diagonal model input.

The per-graph model path (:meth:`repro.models.mvgnn.MVGNN.forward`) pays
Python-level overhead — dozens of small Tensor ops — for every loop it
classifies.  A :class:`GraphBatch` stacks the node-feature matrices of many
graphs contiguously ("packed" layout) and joins their adjacencies into one
normalized block-diagonal sparse matrix, so the batched model paths
(``forward_batch``) replace N Python-level passes with one numpy-level pass.

Layout: graph ``g`` with ``sizes[g]`` nodes owns rows
``[offsets[g], offsets[g] + sizes[g])`` of every stacked matrix; blocks never
interact through the adjacency, so batched outputs equal per-graph outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, TypeVar

import numpy as np

from repro.dataset.types import LoopSample
from repro.errors import EngineError
from repro.nn.batching import block_diagonal_adjacency, segment_offsets

T = TypeVar("T")


@dataclass
class GraphBatch:
    """N sub-PEGs packed for one batched forward pass.

    ``x_semantic`` is ``(N_nodes, d_sem)`` and ``x_structural`` is
    ``(N_nodes, walk_types)``, both stacking per-graph node rows in batch
    order; ``adj_norm`` is the ``(N_nodes, N_nodes)`` row-normalized
    block-diagonal adjacency (scipy CSR when available); ``sizes[g]`` is
    graph ``g``'s node count; ``ids`` carries caller identifiers through to
    prediction output.
    """

    x_semantic: np.ndarray
    x_structural: np.ndarray
    adj_norm: object
    sizes: np.ndarray
    ids: List[str] = field(default_factory=list)

    @property
    def num_graphs(self) -> int:
        return int(self.sizes.shape[0])

    @property
    def num_nodes(self) -> int:
        return int(self.sizes.sum())

    @property
    def offsets(self) -> np.ndarray:
        """``(B + 1,)`` row offsets of each graph in the packed matrices."""
        return segment_offsets(self.sizes)

    @classmethod
    def from_arrays(
        cls,
        semantic: Sequence[np.ndarray],
        structural: Sequence[np.ndarray],
        adjacencies: Sequence[np.ndarray],
        ids: Optional[Sequence[str]] = None,
        pre_normalized: bool = False,
    ) -> "GraphBatch":
        """Pack per-graph ``(n_g, ·)`` feature matrices and adjacencies.

        With ``pre_normalized=True`` each adjacency is taken to be already
        row-normalized (``D̃⁻¹Ã``) and is block-stacked as-is — the training
        path normalizes each sample's adjacency once and reuses it across
        every epoch instead of renormalizing per minibatch.
        """
        if not (len(semantic) == len(structural) == len(adjacencies)):
            raise EngineError(
                f"mismatched batch inputs: {len(semantic)} semantic, "
                f"{len(structural)} structural, {len(adjacencies)} adjacency"
            )
        if not semantic:
            raise EngineError("cannot build an empty GraphBatch")
        sizes = []
        for pos, (sem, struct, adj) in enumerate(
            zip(semantic, structural, adjacencies)
        ):
            n = adj.shape[0]
            if sem.shape[0] != n or struct.shape[0] != n:
                raise EngineError(
                    f"graph {pos}: {sem.shape[0]} semantic / "
                    f"{struct.shape[0]} structural rows vs {n} adjacency rows"
                )
            sizes.append(n)
        return cls(
            x_semantic=np.concatenate(semantic, axis=0),
            x_structural=np.concatenate(structural, axis=0),
            adj_norm=block_diagonal_adjacency(
                adjacencies, normalize=not pre_normalized
            ),
            sizes=np.asarray(sizes, dtype=np.int64),
            ids=list(ids) if ids is not None else [str(i) for i in range(len(sizes))],
        )

    @classmethod
    def from_samples(cls, samples: Sequence[LoopSample]) -> "GraphBatch":
        """Pack :class:`~repro.dataset.types.LoopSample` feature matrices."""
        return cls.from_arrays(
            [s.x_semantic for s in samples],
            [s.x_structural for s in samples],
            [s.adjacency for s in samples],
            ids=[s.sample_id for s in samples],
        )


def iter_chunks(items: Sequence[T], size: int) -> Iterator[Sequence[T]]:
    """Yield contiguous chunks of at most ``size`` items."""
    if size <= 0:
        raise EngineError(f"batch size must be positive, got {size}")
    for start in range(0, len(items), size):
        yield items[start : start + size]
