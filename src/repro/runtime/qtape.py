"""Quantized tape rewriting: the ``precision="fast"`` execution tier.

:func:`quantize_tape` takes an exact float tape recorded by
:mod:`repro.runtime.tape` and rewrites the hot contractions onto the
symmetric int8 grid (:mod:`repro.nn.quantize`):

* ``matmul`` against a parameter (every Dense layer) becomes ``qmatmul``
  with the weight *baked* — round-tripped through int8 and cached as
  float32 — and the activation snapped to the grid at a calibrated scale;
* ``adj_matmul`` becomes ``qadj_matmul`` (node features snapped before the
  neighborhood aggregation);
* ``segment_sort_pool`` becomes ``qsegment_sort_pool`` (pooled activations
  snapped on the way out).

Everything else replays unchanged, but the whole tape executes in float32
(:class:`QuantizedTape` carries ``dtype = float32``; the
:class:`~repro.runtime.tape.TapeExecutor` allocates its scratch buffers in
the tape's dtype).  The rewrite never touches the source tape, so an
Engine can hold both tiers side by side and the ``exact`` tier stays
byte-identical to PR 7's compiled path.

Activation scales come from a :class:`~repro.nn.quantize.Calibration`
recorded by :func:`record_activation_maxima` /
:meth:`repro.runtime.engine.Engine.calibrate` over a held-out shard and
are keyed by *op position*: the traced op sequence depends only on the
model architecture (PR 7's cross-node-count tape-reuse tests pin this),
so one calibration serves every batch-shape class.  Ops without a
recorded scale fall back to a dynamic per-call abs-max scale.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.errors import EngineError
from repro.nn.primitives import get_primitive
from repro.nn.quantize import (
    Calibration,
    fake_quantize,
    scale_from_max,
    symmetric_scale,
)
from repro.runtime.tape import Tape, TapeOp

__all__ = [
    "QuantizedTape",
    "quantize_tape",
    "record_activation_maxima",
    "quantizable_positions",
]

#: float prim -> quantized replacement
_Q_PRIMS = {
    "matmul": "qmatmul",
    "adj_matmul": "qadj_matmul",
    "segment_sort_pool": "qsegment_sort_pool",
}


def _watched_input(tape: Tape, op: TapeOp) -> Optional[int]:
    """Slot whose value sets the op's activation scale (None = not
    quantizable, or scale is taken from the op's *output*)."""
    if op.prim == "matmul":
        # only weight matmuls quantize: the rhs must be a live parameter
        if op.inputs[1] in tape.params:
            return op.inputs[0]
        return None
    if op.prim == "adj_matmul":
        return op.inputs[1]
    return None


def quantizable_positions(tape: Tape) -> List[int]:
    """Op positions :func:`quantize_tape` would rewrite, in tape order."""
    positions = []
    for pos, op in enumerate(tape.ops):
        if op.prim == "segment_sort_pool":
            positions.append(pos)
        elif _watched_input(tape, op) is not None:
            positions.append(pos)
    return positions


def record_activation_maxima(
    tape: Tape,
    bindings: Dict[str, object],
    maxima: Optional[Dict[int, float]] = None,
) -> Dict[int, float]:
    """One calibration pass: abs-max of each quantizable op's activation.

    Executes the float tape unfused and folds per-position maxima into
    ``maxima`` (keyed by op position), so repeated calls over the batches
    of a held-out shard aggregate into one running maximum per site.
    """
    if maxima is None:
        maxima = {}
    values = tape.seed_values(bindings)
    for pos, op in enumerate(tape.ops):
        prim = get_primitive(op.prim)
        ins = tuple(values[s] for s in op.inputs)
        values[op.out] = prim.forward(ins, op.attrs)
        if op.prim == "segment_sort_pool":
            watched = np.asarray(values[op.out])
        else:
            slot = _watched_input(tape, op)
            if slot is None:
                continue
            watched = np.asarray(values[slot])
        peak = float(np.max(np.abs(watched))) if watched.size else 0.0
        if np.isfinite(peak):
            maxima[pos] = max(peak, maxima.get(pos, 0.0))
    return maxima


class QuantizedTape(Tape):
    """A float tape rewritten for int8-grid float32 execution.

    Structure (slots, inputs, output) mirrors the source tape one-to-one;
    only the hot ops are substituted.  ``seed_values`` feeds the executor
    float32 throughout: consts are pre-cast, weight params are served from
    a per-slot cache of int8-round-tripped float32 arrays (recomputed from
    the live parameter after :meth:`refresh_params`, e.g. on hot weight
    reload), and runtime inputs are cast on the way in.
    """

    dtype = np.float32

    def __init__(
        self, source: Tape, calibration: Optional[Calibration] = None
    ) -> None:
        super().__init__()
        names = tuple(op.prim for op in source.ops)
        if calibration is not None and calibration.prim_names:
            if tuple(calibration.prim_names) != names:
                raise EngineError(
                    "calibration does not match this tape: recorded against "
                    f"{len(calibration.prim_names)} op(s), tape has "
                    f"{len(names)} — recalibrate with `repro calibrate`"
                )
        self.calibration = calibration
        self.input_slots = dict(source.input_slots)
        self.array_inputs = set(source.array_inputs)
        self.param_slots = dict(source.param_slots)
        self.params = dict(source.params)
        self.consts = {
            slot: np.asarray(data, dtype=np.float32)
            for slot, data in source.consts.items()
        }
        self.output = source.output
        self.num_slots = source.num_slots
        act_scales = calibration.act_scales if calibration is not None else {}
        param_scales = (
            calibration.param_scales if calibration is not None else {}
        )
        # slots whose params are weight-quantized (rhs of a qmatmul);
        # _weight_fold carries a calibrated activation scale folded into
        # the baked weight (only when the slot feeds exactly one qmatmul,
        # so the fold is unambiguous) — the qmatmul then skips its
        # activation rescale pass (see primitives._qmatmul_fwd)
        self._weight_slots: set = set()
        self._weight_scales: Dict[int, float] = {}
        self._weight_fold: Dict[int, float] = {}
        self._param_cache: Dict[int, np.ndarray] = {}
        weight_uses: Dict[int, int] = {}
        for op in source.ops:
            if op.prim == "matmul" and op.inputs[1] in source.params:
                slot = op.inputs[1]
                weight_uses[slot] = weight_uses.get(slot, 0) + 1
        for pos, op in enumerate(source.ops):
            replacement = _Q_PRIMS.get(op.prim)
            watched = _watched_input(source, op)
            if replacement is None or (
                op.prim != "segment_sort_pool" and watched is None
            ):
                self.ops.append(op)  # replayed as-is (executor casts inputs)
                continue
            attrs = dict(op.attrs)
            act_scale = act_scales.get(pos)
            attrs["act_scale"] = act_scale  # None -> dynamic per-call
            if op.prim == "matmul":
                w_slot = op.inputs[1]
                self._weight_slots.add(w_slot)
                name = source.param_slots[w_slot]
                scale = param_scales.get(name)
                self._weight_scales[w_slot] = (
                    float(scale) if scale is not None
                    else symmetric_scale(self.params[w_slot].data)
                )
                if act_scale is not None and weight_uses[w_slot] == 1:
                    attrs["folded"] = True
                    self._weight_fold[w_slot] = float(act_scale)
            self.ops.append(TapeOp(
                prim=replacement,
                inputs=op.inputs,
                out=op.out,
                attrs=attrs,
                shape=op.shape,
            ))

    def refresh_params(self) -> None:
        """Drop baked float32 params so the next run re-reads live weights."""
        self._param_cache.clear()

    def _param_value(self, slot: int) -> np.ndarray:
        cached = self._param_cache.get(slot)
        if cached is None:
            data = np.asarray(self.params[slot].data, dtype=np.float32)
            if slot in self._weight_slots:
                data = fake_quantize(data, self._weight_scales[slot])
                fold = self._weight_fold.get(slot)
                if fold is not None:
                    data = data * np.float32(fold)
            cached = self._param_cache[slot] = data
        return cached

    def seed_values(self, bindings: Dict[str, object]) -> List[object]:
        values: List[object] = [None] * self.num_slots
        for slot, data in self.consts.items():
            values[slot] = data
        for slot in self.params:
            values[slot] = self._param_value(slot)
        for name, slot in self.input_slots.items():
            if name not in bindings:
                raise EngineError(f"tape execution missing input {name!r}")
            value = bindings[name]
            if name in self.array_inputs:
                value = np.asarray(value, dtype=np.float32)
            elif hasattr(value, "astype"):
                # object inputs with a dtype (the adjacency block) ride the
                # float32 pipeline too; plain sequences (sizes) pass through
                value = value.astype(np.float32)
            values[slot] = value
        return values


def quantize_tape(
    tape: Tape, calibration: Optional[Calibration] = None
) -> QuantizedTape:
    """Rewrite an exact tape for the ``fast`` tier (source is untouched)."""
    return QuantizedTape(tape, calibration)


def calibration_from_maxima(
    prim_names, maxima: Dict[int, float], param_scales: Dict[str, float]
) -> Calibration:
    """Package recorded maxima into a :class:`Calibration`."""
    return Calibration(
        prim_names=tuple(prim_names),
        act_scales={
            pos: scale_from_max(peak) for pos, peak in sorted(maxima.items())
        },
        param_scales=dict(param_scales),
    )
