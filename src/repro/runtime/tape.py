"""Trace-compile the batched MV-GNN forward into a linear tape of primitives.

``record_tape`` runs a model's ``forward_batch`` once with the inputs
wrapped in :class:`TraceTensor` — a :class:`~repro.nn.tensor.Tensor`
subclass whose operations append :class:`TapeOp` records (primitive name,
input slots, output slot, attrs) instead of autograd closures.  The result
is a :class:`Tape`: a flat program over numbered slots whose structure
depends only on the model architecture, the number of graphs ``B`` in the
pack, and the train/eval mode — node counts, adjacency matrices, and
feature values all flow in as inputs at execution time, so one tape per
``(architecture, B, mode)`` serves every batch of that shape class.

Three ways to run a tape:

* :meth:`Tape.execute` — the unfused reference interpreter (one primitive
  per step), used by the differential tests as the ground truth.
* :class:`TapeExecutor` — the optimized inference interpreter: adjacent
  elementwise ops are fused into in-place chains on top of their producer
  (``build_plan``/:func:`unfuse_plan` round-trip exactly), and every
  fresh-output step owns a cached buffer reused across ``predict_many``
  calls (callers receive copies, so reuse never aliases a live result).
* :meth:`Tape.forward_values` + :meth:`Tape.backward` — forward with
  residuals, then a mechanical reverse sweep through the primitive VJP
  table that accumulates straight into ``Parameter.grad`` — the
  tape-derived replacement for the hand-written autograd backward.

Parameter slots read ``Parameter.data`` live at execution time, so
optimizer steps and the serving fleet's in-place hot weight reload take
effect without re-tracing.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EngineError, ModelError
from repro.nn.layers import Parameter
from repro.nn.primitives import PRIMITIVES, Primitive, get_primitive
from repro.nn.tensor import Tensor, no_grad

__all__ = [
    "Tape",
    "TapeOp",
    "TraceTensor",
    "record_tape",
    "trace_mvgnn_forward",
    "trace_dgcnn_forward",
    "build_plan",
    "unfuse_plan",
    "TapeExecutor",
    "format_tape",
]


@dataclass(eq=False)
class TapeOp:
    """One recorded primitive application (identity semantics: attrs may
    hold ndarrays, so field-wise equality would be ill-defined)."""

    prim: str
    inputs: Tuple[int, ...]
    out: int
    attrs: Dict[str, object] = field(default_factory=dict)
    shape: Tuple[int, ...] = ()     # trace-time output shape (fusion hint)


class Tape:
    """A recorded linear program over numbered value slots."""

    def __init__(self) -> None:
        self.ops: List[TapeOp] = []
        self.input_slots: Dict[str, int] = {}
        self.array_inputs: set = set()
        self.param_slots: Dict[int, str] = {}
        self.params: Dict[int, Parameter] = {}
        self.consts: Dict[int, np.ndarray] = {}
        self.output: int = -1
        self.num_slots: int = 0
        self._needs: Optional[set] = None

    # -- construction (used by the tracer) ----------------------------------

    def new_slot(self) -> int:
        slot = self.num_slots
        self.num_slots += 1
        return slot

    def add_input(self, name: str, array: bool) -> int:
        if name in self.input_slots:
            raise EngineError(f"duplicate tape input {name!r}")
        slot = self.new_slot()
        self.input_slots[name] = slot
        if array:
            self.array_inputs.add(name)
        return slot

    def add_param(self, name: str, param: Parameter) -> int:
        slot = self.new_slot()
        self.param_slots[slot] = name
        self.params[slot] = param
        return slot

    def add_const(self, data: np.ndarray) -> int:
        slot = self.new_slot()
        self.consts[slot] = np.array(data, dtype=np.float64, copy=True)
        return slot

    # -- execution ----------------------------------------------------------

    def seed_values(self, bindings: Dict[str, object]) -> List[object]:
        """Slot table with inputs/params/consts filled in."""
        values: List[object] = [None] * self.num_slots
        for slot, data in self.consts.items():
            values[slot] = data
        for slot, param in self.params.items():
            values[slot] = param.data      # live read: survives hot reload
        for name, slot in self.input_slots.items():
            if name not in bindings:
                raise EngineError(f"tape execution missing input {name!r}")
            value = bindings[name]
            if name in self.array_inputs:
                value = np.asarray(value, dtype=np.float64)
            values[slot] = value
        return values

    def execute(self, bindings: Dict[str, object]) -> np.ndarray:
        """Unfused reference interpretation; returns a fresh output array."""
        values = self.seed_values(bindings)
        for op in self.ops:
            prim = get_primitive(op.prim)
            ins = tuple(values[s] for s in op.inputs)
            values[op.out] = prim.forward(ins, op.attrs)
        return np.array(values[self.output], copy=True)

    def forward_values(self, bindings: Dict[str, object]):
        """Forward keeping every slot value + per-op residuals (training)."""
        values = self.seed_values(bindings)
        residuals: List[object] = [None] * len(self.ops)
        for pos, op in enumerate(self.ops):
            prim = get_primitive(op.prim)
            ins = tuple(values[s] for s in op.inputs)
            values[op.out], residuals[pos] = prim.forward_res(ins, op.attrs)
        return values, residuals

    # -- mechanical backward ------------------------------------------------

    def needs_grad(self) -> set:
        """Slots whose gradient is required (params + their descendants)."""
        if self._needs is None:
            needs = set(self.param_slots)
            for op in self.ops:
                if any(s in needs for s in op.inputs):
                    needs.add(op.out)
            self._needs = needs
        return self._needs

    def backward(
        self,
        grad: np.ndarray,
        values: Sequence[object],
        residuals: Sequence[object],
    ) -> None:
        """Reverse sweep through the VJP table; accumulates into
        ``Parameter.grad`` exactly like the hand-written autograd path."""
        needs = self.needs_grad()
        if self.output not in needs:
            return
        grads: Dict[int, np.ndarray] = {
            self.output: np.asarray(grad, dtype=np.float64)
        }
        for pos in range(len(self.ops) - 1, -1, -1):
            op = self.ops[pos]
            g = grads.pop(op.out, None)
            if g is None or op.out not in needs:
                continue
            prim = get_primitive(op.prim)
            needed = tuple(s in needs for s in op.inputs)
            if not any(needed):
                continue
            ins = tuple(values[s] for s in op.inputs)
            partials = prim.vjp(
                g, ins, values[op.out], residuals[pos], op.attrs, needed
            )
            for slot, partial in zip(op.inputs, partials):
                if partial is None:
                    continue
                if slot in grads:
                    # non-inplace: partials may be views of upstream grads
                    grads[slot] = grads[slot] + partial
                else:
                    grads[slot] = partial
        for slot, param in self.params.items():
            partial = grads.get(slot)
            if partial is not None:
                param._accumulate(np.asarray(partial, dtype=np.float64))

    def signature(self) -> str:
        """Stable digest of the recorded structure (golden regression)."""
        return hashlib.sha256(format_tape(self).encode()).hexdigest()[:16]


# -- tracing -----------------------------------------------------------------


class TraceState:
    """Mutable recording context shared by all TraceTensors of one trace."""

    def __init__(self, tape: Tape, param_names: Dict[int, str]) -> None:
        self.tape = tape
        self.param_names = param_names       # id(param) -> dotted name
        self.objects: Dict[int, int] = {}    # id(obj) -> slot (adj, sizes)
        self._tensor_slots: Dict[int, int] = {}
        # keep every cached tensor alive for the trace: the id() keys above
        # are only unique while the object exists, and transient scalar
        # promotions (e.g. ``t + 0.5``) die right after their op is emitted,
        # letting a later, different constant inherit the recycled id and
        # silently alias the stale slot
        self._tensor_refs: List[Tensor] = []

    # -- slot resolution ----------------------------------------------------

    def slot_for_tensor(self, t: Tensor) -> int:
        if isinstance(t, TraceTensor):
            if t._trace is not self:
                raise EngineError("mixed tensors from two different traces")
            return t._slot
        key = id(t)
        slot = self._tensor_slots.get(key)
        if slot is None:
            if isinstance(t, Parameter):
                name = self.param_names.get(key)
                if name is None:
                    name = f"param{len(self.tape.params)}"
                slot = self.tape.add_param(name, t)
            else:
                slot = self.tape.add_const(t.data)
            self._tensor_slots[key] = slot
            self._tensor_refs.append(t)
        return slot

    def slot_for_object(self, obj) -> int:
        slot = self.objects.get(id(obj))
        if slot is None:
            raise EngineError(
                "tracing reached a graph-structure object (adjacency/sizes) "
                "that was not registered as a tape input"
            )
        return slot

    def emit(
        self,
        prim: str,
        inputs: Tuple[int, ...],
        attrs: Dict[str, object],
        data: np.ndarray,
    ) -> "TraceTensor":
        slot = self.tape.new_slot()
        self.tape.ops.append(
            TapeOp(prim, inputs, slot, attrs, tuple(np.shape(data)))
        )
        return TraceTensor(data, self, slot)

    # -- hooks reached from repro.nn via duck typing ------------------------

    def concat(self, tensors: Sequence[Tensor], axis: int) -> "TraceTensor":
        slots = tuple(self.slot_for_tensor(t) for t in tensors)
        data = np.concatenate([t.data for t in tensors], axis=axis)
        return self.emit("concat", slots, {"axis": axis}, data)

    def adj_matmul(self, matrix, h: Tensor) -> "TraceTensor":
        m_slot = self.slot_for_object(matrix)
        h_slot = self.slot_for_tensor(h)
        data = np.asarray(matrix @ h.data)
        return self.emit("adj_matmul", (m_slot, h_slot), {}, data)

    def segment_sort_pool(self, h: Tensor, sizes, k: int) -> "TraceTensor":
        h_slot = self.slot_for_tensor(h)
        s_slot = self.slot_for_object(sizes)
        attrs = {"k": int(k)}
        data = get_primitive("segment_sort_pool").forward(
            (h.data, np.asarray(sizes, dtype=np.int64)), attrs
        )
        return self.emit("segment_sort_pool", (h_slot, s_slot), attrs, data)

    def dropout(self, x: Tensor, rate: float, rng) -> "TraceTensor":
        x_slot = self.slot_for_tensor(x)
        # trace-time values use a throwaway generator so the layer's own rng
        # is not consumed by recording (execution draws the real masks)
        from repro.nn.functional import dropout_mask
        from repro.utils.rng import ensure_rng

        preview = dropout_mask(x.shape, rate, ensure_rng(0))
        return self.emit(
            "dropout", (x_slot,), {"rate": float(rate), "rng": rng},
            x.data * preview,
        )


class TraceTensor(Tensor):
    """A Tensor whose operations are recorded onto a :class:`Tape`.

    Every operation also computes real values (through the same primitive
    forwards the interpreter uses), so shape checks and data-dependent
    control flow in the model see concrete arrays while tracing.
    """

    __slots__ = ("_trace", "_slot")

    def __init__(self, data, trace: TraceState, slot: int) -> None:
        super().__init__(data)
        self._trace = trace
        self._slot = slot

    # -- helpers ------------------------------------------------------------

    def _emit_binary(self, prim: str, other, reflected: bool = False):
        state = self._trace
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        other_slot = state.slot_for_tensor(other_t)
        if reflected:
            ins_slots = (other_slot, self._slot)
            ins = (other_t.data, self.data)
        else:
            ins_slots = (self._slot, other_slot)
            ins = (self.data, other_t.data)
        data = get_primitive(prim).forward(ins, {})
        return state.emit(prim, ins_slots, {}, data)

    def _emit_unary(self, prim: str, attrs: Optional[Dict[str, object]] = None):
        attrs = attrs or {}
        data = get_primitive(prim).forward((self.data,), attrs)
        return self._trace.emit(prim, (self._slot,), attrs, data)

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other):
        return self._emit_binary("add", other)

    def __radd__(self, other):
        return self._emit_binary("add", other, reflected=True)

    def __mul__(self, other):
        return self._emit_binary("mul", other)

    def __rmul__(self, other):
        return self._emit_binary("mul", other, reflected=True)

    def __sub__(self, other):
        return self._emit_binary("sub", other)

    def __rsub__(self, other):
        return self._emit_binary("sub", other, reflected=True)

    def __truediv__(self, other):
        return self._emit_binary("div", other)

    def __rtruediv__(self, other):
        return self._emit_binary("div", other, reflected=True)

    def __matmul__(self, other):
        return self._emit_binary("matmul", other)

    def __rmatmul__(self, other):
        return self._emit_binary("matmul", other, reflected=True)

    def __neg__(self):
        return self._emit_unary("neg")

    def __pow__(self, exponent):
        if not isinstance(exponent, (int, float)):
            raise ModelError("Tensor ** only supports scalar exponents")
        return self._emit_unary("pow", {"exponent": float(exponent)})

    # -- nonlinearities -----------------------------------------------------

    def exp(self):
        return self._emit_unary("exp")

    def log(self):
        return self._emit_unary("log")

    def tanh(self):
        return self._emit_unary("tanh")

    def sigmoid(self):
        return self._emit_unary("sigmoid")

    def relu(self):
        return self._emit_unary("relu")

    # -- reductions ---------------------------------------------------------

    def sum(self, axis=None, keepdims=False):
        return self._emit_unary("sum", {"axis": axis, "keepdims": keepdims})

    def max(self, axis, keepdims=False):
        return self._emit_unary("max", {"axis": axis, "keepdims": keepdims})

    # mean() is inherited: sum()/count routes through the overrides above

    # -- shape / gather -----------------------------------------------------

    def reshape(self, *shape):
        return self._emit_unary("reshape", {"shape": tuple(shape)})

    def transpose(self):
        return self._emit_unary("transpose")

    def __getitem__(self, key):
        return self._emit_unary("index", {"key": key})

    def take_rows(self, indices):
        indices = np.asarray(indices, dtype=np.int64)
        return self._emit_unary("gather", {"indices": indices})

    def pad_rows(self, total_rows):
        rows, cols = self.data.shape
        if rows > total_rows:
            raise ModelError(f"cannot pad {rows} rows down to {total_rows}")
        if rows == total_rows:
            return self
        # concat a constant zero block: same numbers as Tensor.pad_rows
        state = self._trace
        zeros = Tensor(np.zeros((total_rows - rows, cols)))
        return state.concat([self, zeros], axis=0)

    def detach(self):
        return Tensor(self.data)

    def backward(self, grad=None):
        raise ModelError(
            "backward() during tracing — use Tape.backward on the recording"
        )


def record_tape(
    fn,
    arrays: Dict[str, np.ndarray],
    objects: Dict[str, object],
    params: Dict[str, Parameter],
) -> Tape:
    """Trace ``fn(**inputs)`` into a :class:`Tape`.

    ``arrays`` are float inputs wrapped as :class:`TraceTensor`; ``objects``
    are opaque structure inputs (sparse adjacency, sizes vector) registered
    by identity so layer hooks can map them back to slots; ``params`` names
    the model's live parameters (``model.named_parameters()``).
    """
    tape = Tape()
    state = TraceState(tape, {id(p): name for name, p in params.items()})
    bound: Dict[str, object] = {}
    for name, arr in arrays.items():
        slot = tape.add_input(name, array=True)
        bound[name] = TraceTensor(
            np.asarray(arr, dtype=np.float64), state, slot
        )
    for name, obj in objects.items():
        slot = tape.add_input(name, array=False)
        state.objects[id(obj)] = slot
        bound[name] = obj
    with no_grad():
        out = fn(**bound)
    if not isinstance(out, TraceTensor) or out._trace is not state:
        raise EngineError(
            "tracing escaped the tape: the forward returned a tensor that "
            "was not recorded (an op bypassed the TraceTensor overrides)"
        )
    tape.output = out._slot
    return tape


def trace_mvgnn_forward(model, x_semantic, x_structural, adj_norm, sizes) -> Tape:
    """Record ``MVGNN.forward_batch`` for this pack's shape class."""
    def fn(x_semantic, x_structural, adj_norm, sizes):
        return model.forward_batch(x_semantic, x_structural, adj_norm, sizes)

    return record_tape(
        fn,
        arrays={"x_semantic": x_semantic, "x_structural": x_structural},
        objects={"adj_norm": adj_norm, "sizes": sizes},
        params=model.named_parameters(),
    )


def trace_dgcnn_forward(model, x, adj_norm, sizes) -> Tape:
    """Record ``DGCNN.forward_batch`` for this pack's shape class."""
    def fn(x, adj_norm, sizes):
        return model.forward_batch(x, adj_norm, sizes)

    return record_tape(
        fn,
        arrays={"x": x},
        objects={"adj_norm": adj_norm, "sizes": sizes},
        params=model.named_parameters(),
    )


# -- fusion plan -------------------------------------------------------------


@dataclass
class PlanStep:
    """One interpreter step: a base op plus an in-place elementwise chain.

    ``chain`` entries are ``(op, other_slot, base_on_left)``: unary links
    have ``other_slot is None``; binary links apply the op between the
    running value and ``values[other_slot]`` in the recorded operand order.
    """

    base: TapeOp
    chain: List[Tuple[TapeOp, Optional[int], bool]] = field(default_factory=list)

    @property
    def out(self) -> int:
        return self.chain[-1][0].out if self.chain else self.base.out


def _chain_link(op: TapeOp, producer_out: int, tape: Tape, use_count):
    """Classify ``op`` as a fusable chain link on top of ``producer_out``,
    or return None.  Fusable links consume the producer exactly once and —
    for binaries — pair it with a fixed-shape const/param operand that
    broadcasts without growing the producer's shape (bias adds, scalings),
    so executing in place on the producer's buffer is value-preserving."""
    prim = PRIMITIVES.get(op.prim)
    if prim is None or not prim.elementwise:
        return None
    if use_count.get(producer_out, 0) != 1 or producer_out == tape.output:
        return None
    if prim.kind == "unary_ew":
        return (op, None, True) if op.inputs == (producer_out,) else None
    a, b = op.inputs
    if a == producer_out and b != producer_out:
        other, left = b, True
    elif b == producer_out and a != producer_out:
        other, left = a, False
    else:
        return None
    if other not in tape.consts and other not in tape.params:
        return None
    other_shape = (
        tape.consts[other].shape
        if other in tape.consts else tape.params[other].shape
    )
    # in-place on the producer's buffer must preserve its shape for every
    # batch of this shape class: allow scalar/all-ones operands or strictly
    # lower-rank broadcasts (bias rows) — never rank-matching blocks whose
    # leading dim could differ at another node count
    if len(other_shape) >= len(op.shape) and not all(d == 1 for d in other_shape):
        return None
    if tuple(np.broadcast_shapes(op.shape, other_shape)) != tuple(op.shape):
        return None
    return op, other, left


def build_plan(tape: Tape) -> List[PlanStep]:
    """Fuse adjacent elementwise ops onto their producer."""
    use_count: Dict[int, int] = {tape.output: 1}
    for op in tape.ops:
        for slot in op.inputs:
            use_count[slot] = use_count.get(slot, 0) + 1
    steps: List[PlanStep] = []
    pos = 0
    ops = tape.ops
    while pos < len(ops):
        base = ops[pos]
        step = PlanStep(base)
        pos += 1
        if get_primitive(base.prim).fresh:
            current = base
            while pos < len(ops):
                link = _chain_link(ops[pos], current.out, tape, use_count)
                if link is None:
                    break
                step.chain.append(link)
                current = ops[pos]
                pos += 1
        steps.append(step)
    return steps


def unfuse_plan(steps: Sequence[PlanStep]) -> List[TapeOp]:
    """Flatten a plan back to the canonical op list (exact round-trip)."""
    ops: List[TapeOp] = []
    for step in steps:
        ops.append(step.base)
        ops.extend(op for op, _other, _left in step.chain)
    return ops


class TapeExecutor:
    """Fused, buffer-reusing tape interpreter for inference.

    One executor per recorded tape; ``new_buffers()`` hands out a per-thread
    buffer table (the serving layer calls ``run`` from several threads), and
    ``run`` returns a fresh copy of the output so later calls can never
    overwrite a result the caller still holds.
    """

    def __init__(self, tape: Tape) -> None:
        self.tape = tape
        # scratch buffers take the tape's execution dtype: float64 for the
        # exact tier, float32 for quantized tapes (see repro.runtime.qtape)
        self.dtype = np.dtype(getattr(tape, "dtype", np.float64))
        self.plan = build_plan(tape)
        flat = unfuse_plan(self.plan)
        if len(flat) != len(tape.ops) or any(
            a is not b for a, b in zip(flat, tape.ops)
        ):
            raise EngineError("fusion plan does not round-trip the tape")

    def new_buffers(self) -> List[Optional[np.ndarray]]:
        return [None] * len(self.plan)

    def run(
        self,
        bindings: Dict[str, object],
        buffers: Optional[List[Optional[np.ndarray]]] = None,
    ) -> np.ndarray:
        tape = self.tape
        values = tape.seed_values(bindings)
        for pos, step in enumerate(self.plan):
            op = step.base
            prim = get_primitive(op.prim)
            ins = tuple(values[s] for s in op.inputs)
            out = None
            if buffers is not None and prim.fresh and prim.out_shape is not None:
                shape = prim.out_shape(ins, op.attrs)
                buf = buffers[pos]
                if buf is None or buf.shape != tuple(shape):
                    buf = np.empty(shape, dtype=self.dtype)
                    buffers[pos] = buf
                out = buf
            value = prim.forward(ins, op.attrs, out=out)
            for chain_op, other, left in step.chain:
                chain_prim = get_primitive(chain_op.prim)
                # chains only start on fresh outputs, so in-place is safe
                if other is None:
                    value = chain_prim.forward((value,), chain_op.attrs, out=value)
                else:
                    pair = (value, values[other]) if left else (values[other], value)
                    value = chain_prim.forward(pair, chain_op.attrs, out=value)
            values[step.out] = value
        return np.array(values[tape.output], copy=True)


# -- human-readable serialization (golden-tape regression) -------------------


def _format_attr(value) -> str:
    if isinstance(value, np.ndarray):
        digest = hashlib.sha256(np.ascontiguousarray(value).tobytes())
        return f"{value.dtype}[{'x'.join(map(str, value.shape))}]#{digest.hexdigest()[:10]}"
    if hasattr(value, "random"):          # numpy Generator (dropout)
        return "<rng>"
    if isinstance(value, tuple):
        return "(" + ", ".join(_format_attr(v) for v in value) + ")"
    if isinstance(value, slice):
        fmt = lambda x: "" if x is None else str(x)  # noqa: E731
        return f"{fmt(value.start)}:{fmt(value.stop)}" + (
            f":{value.step}" if value.step is not None else ""
        )
    return repr(value)


def format_tape(tape: Tape, title: str = "tape") -> str:
    """Deterministic human-readable rendering of a recorded tape."""
    lines = [f"# {title}"]
    for name, slot in tape.input_slots.items():
        kind = "array" if name in tape.array_inputs else "object"
        lines.append(f"%{slot:03d} = input {name} [{kind}]")
    for slot, name in tape.param_slots.items():
        shape = "x".join(map(str, tape.params[slot].shape))
        lines.append(f"%{slot:03d} = param {name} ({shape})")
    for slot, data in tape.consts.items():
        lines.append(f"%{slot:03d} = const {_format_attr(data)}")
    for op in tape.ops:
        args = ", ".join(f"%{s:03d}" for s in op.inputs)
        attrs = ""
        if op.attrs:
            rendered = ", ".join(
                f"{k}={_format_attr(v)}" for k, v in sorted(op.attrs.items())
            )
            attrs = f" {{{rendered}}}"
        shape = "x".join(map(str, op.shape))
        lines.append(
            f"%{op.out:03d} = {op.prim}({args}){attrs} -> ({shape})"
        )
    lines.append(f"# output %{tape.output:03d}")
    return "\n".join(lines) + "\n"
