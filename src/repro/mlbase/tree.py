"""CART decision tree (Gini impurity, binary splits on numeric features)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ModelError


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    prediction: int = 0
    probability: float = 0.5    # P(class 1) at this node

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    probs = counts / total
    return float(1.0 - (probs**2).sum())


class DecisionTree:
    """Binary classification tree with depth / leaf-size regularization."""

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_leaf: int = 2,
        min_impurity_decrease: float = 1e-7,
    ) -> None:
        if max_depth < 1:
            raise ModelError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self._root: Optional[_Node] = None

    def fit(
        self, x: np.ndarray, y: np.ndarray, weights: Optional[np.ndarray] = None
    ) -> "DecisionTree":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if x.ndim != 2 or y.shape != (x.shape[0],):
            raise ModelError("DecisionTree.fit expects (n, d) features, (n,) labels")
        if weights is None:
            weights = np.ones(y.shape[0])
        weights = np.asarray(weights, dtype=np.float64)
        self._root = self._build(x, y, weights, depth=0)
        return self

    def _build(
        self, x: np.ndarray, y: np.ndarray, w: np.ndarray, depth: int
    ) -> _Node:
        counts = np.array(
            [w[y == 0].sum(), w[y == 1].sum()], dtype=np.float64
        )
        prob1 = counts[1] / counts.sum() if counts.sum() > 0 else 0.5
        node = _Node(prediction=int(prob1 >= 0.5), probability=float(prob1))
        if (
            depth >= self.max_depth
            or y.size < 2 * self.min_samples_leaf
            or counts.min() == 0.0
        ):
            return node

        best = self._best_split(x, y, w, _gini(counts))
        if best is None:
            return node
        feature, threshold = best
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(x[mask], y[mask], w[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], w[~mask], depth + 1)
        return node

    def _best_split(self, x, y, w, parent_gini):
        n, d = x.shape
        total_w = w.sum()
        best_gain = self.min_impurity_decrease
        best = None
        for feature in range(d):
            order = np.argsort(x[:, feature], kind="stable")
            values = x[order, feature]
            labels = y[order]
            weights = w[order]
            # cumulative weighted class counts left of each split point
            w1 = np.cumsum(weights * (labels == 1))
            w_all = np.cumsum(weights)
            total_1 = w1[-1]
            # candidate split between distinct consecutive values
            distinct = np.nonzero(values[1:] > values[:-1])[0]
            for idx in distinct:
                left_n = idx + 1
                right_n = n - left_n
                if left_n < self.min_samples_leaf or right_n < self.min_samples_leaf:
                    continue
                lw = w_all[idx]
                rw = total_w - lw
                if lw <= 0 or rw <= 0:
                    continue
                l1 = w1[idx]
                r1 = total_1 - l1
                gini_left = 1.0 - ((l1 / lw) ** 2 + ((lw - l1) / lw) ** 2)
                gini_right = 1.0 - ((r1 / rw) ** 2 + ((rw - r1) / rw) ** 2)
                gain = parent_gini - (lw / total_w) * gini_left - (
                    rw / total_w
                ) * gini_right
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, float((values[idx] + values[idx + 1]) / 2.0))
        return best

    def predict(self, x: np.ndarray) -> np.ndarray:
        return (self.predict_proba(x) >= 0.5).astype(np.int64)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """P(class 1) per row."""
        if self._root is None:
            raise ModelError("DecisionTree used before fit()")
        x = np.asarray(x, dtype=np.float64)
        out = np.empty(x.shape[0])
        for pos, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[pos] = node.probability
        return out

    def depth(self) -> int:
        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)
