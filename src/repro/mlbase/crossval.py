"""K-fold cross-validation for the classical baselines.

Fried et al. (the paper's hand-crafted-classifier baseline) evaluate SVM /
decision tree / AdaBoost with cross-validation; this utility reproduces that
protocol on the Table I feature matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.errors import DatasetError
from repro.mlbase.metrics import accuracy
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class CrossValResult:
    """Per-fold accuracies plus aggregates."""

    fold_accuracies: List[float]

    @property
    def mean(self) -> float:
        return float(np.mean(self.fold_accuracies))

    @property
    def std(self) -> float:
        return float(np.std(self.fold_accuracies))

    def summary(self) -> str:
        return (
            f"{self.mean:.3f} ± {self.std:.3f} over "
            f"{len(self.fold_accuracies)} folds"
        )


def kfold_indices(
    n: int, k: int, rng: RngLike = 0
) -> List[np.ndarray]:
    """Shuffled fold index arrays covering 0..n-1 exactly once."""
    if k < 2:
        raise DatasetError("k must be >= 2")
    if n < k:
        raise DatasetError(f"cannot make {k} folds from {n} samples")
    order = ensure_rng(rng).permutation(n)
    return [fold for fold in np.array_split(order, k)]


def cross_validate(
    model_factory: Callable[[], object],
    x: np.ndarray,
    y: np.ndarray,
    k: int = 5,
    rng: RngLike = 0,
) -> CrossValResult:
    """K-fold cross-validation of a fit/predict model on (x, y)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.int64)
    if x.ndim != 2 or y.shape != (x.shape[0],):
        raise DatasetError("cross_validate expects (n, d) features, (n,) labels")
    folds = kfold_indices(y.shape[0], k, rng)
    accuracies: List[float] = []
    for held_out in range(k):
        test_idx = folds[held_out]
        train_idx = np.concatenate(
            [folds[i] for i in range(k) if i != held_out]
        )
        model = model_factory()
        model.fit(x[train_idx], y[train_idx])
        accuracies.append(accuracy(y[test_idx], model.predict(x[test_idx])))
    return CrossValResult(accuracies)
