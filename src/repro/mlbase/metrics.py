"""Classification metrics."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import DatasetError


def _validate(y_true, y_pred) -> Tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_true.shape != y_pred.shape:
        raise DatasetError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise DatasetError("empty label arrays")
    return y_true, y_pred


def accuracy(y_true, y_pred) -> float:
    y_true, y_pred = _validate(y_true, y_pred)
    return float((y_true == y_pred).mean())


def confusion_matrix(y_true, y_pred, num_classes: int = 2) -> np.ndarray:
    y_true, y_pred = _validate(y_true, y_pred)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def precision_recall_f1(y_true, y_pred, positive: int = 1) -> Dict[str, float]:
    y_true, y_pred = _validate(y_true, y_pred)
    tp = int(((y_pred == positive) & (y_true == positive)).sum())
    fp = int(((y_pred == positive) & (y_true != positive)).sum())
    fn = int(((y_pred != positive) & (y_true == positive)).sum())
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return {"precision": precision, "recall": recall, "f1": f1}
