"""Support vector machines.

:class:`LinearSVM` trains with the Pegasos primal sub-gradient method;
:class:`KernelSVM` adds an RBF kernel through random Fourier features
(Rahimi & Recht 2007) feeding the same Pegasos solver — a standard scalable
stand-in for exact kernel SVMs that preserves the decision surface on the
7-dimensional Table I feature space used by Fried et al.'s SVM baseline.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ModelError
from repro.utils.rng import RngLike, ensure_rng


class LinearSVM:
    """Binary linear SVM (labels 0/1) trained with Pegasos."""

    def __init__(
        self,
        reg: float = 1e-3,
        epochs: int = 60,
        batch_size: int = 32,
        rng: RngLike = 0,
    ) -> None:
        if reg <= 0:
            raise ModelError("regularization must be positive")
        self.reg = reg
        self.epochs = epochs
        self.batch_size = batch_size
        self._rng = ensure_rng(rng)
        self.weights: Optional[np.ndarray] = None
        self.bias: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearSVM":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if x.ndim != 2 or y.shape != (x.shape[0],):
            raise ModelError("LinearSVM.fit expects (n, d) features, (n,) labels")
        signs = np.where(y == 1, 1.0, -1.0)
        n, d = x.shape
        w = np.zeros(d)
        b = 0.0
        t = 0
        for _epoch in range(self.epochs):
            order = self._rng.permutation(n)
            for start in range(0, n, self.batch_size):
                t += 1
                batch = order[start : start + self.batch_size]
                eta = 1.0 / (self.reg * t)
                margins = signs[batch] * (x[batch] @ w + b)
                violating = margins < 1.0
                w *= 1.0 - eta * self.reg
                if violating.any():
                    xb = x[batch][violating]
                    sb = signs[batch][violating]
                    w += (eta / batch.size) * (sb[:, None] * xb).sum(axis=0)
                    b += (eta / batch.size) * sb.sum()
        self.weights = w
        self.bias = b
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise ModelError("LinearSVM used before fit()")
        return np.asarray(x, dtype=np.float64) @ self.weights + self.bias

    def predict(self, x: np.ndarray) -> np.ndarray:
        return (self.decision_function(x) >= 0.0).astype(np.int64)


class KernelSVM:
    """RBF-kernel SVM via random Fourier features + Pegasos."""

    def __init__(
        self,
        gamma: float = 0.5,
        n_components: int = 200,
        reg: float = 1e-3,
        epochs: int = 60,
        rng: RngLike = 0,
    ) -> None:
        if gamma <= 0 or n_components <= 0:
            raise ModelError("gamma and n_components must be positive")
        self.gamma = gamma
        self.n_components = n_components
        self._rng = ensure_rng(rng)
        self._linear = LinearSVM(reg=reg, epochs=epochs, rng=self._rng)
        self._proj: Optional[np.ndarray] = None
        self._offset: Optional[np.ndarray] = None

    def _features(self, x: np.ndarray) -> np.ndarray:
        if self._proj is None:
            raise ModelError("KernelSVM used before fit()")
        z = np.asarray(x, dtype=np.float64) @ self._proj + self._offset
        return np.sqrt(2.0 / self.n_components) * np.cos(z)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KernelSVM":
        x = np.asarray(x, dtype=np.float64)
        d = x.shape[1]
        self._proj = self._rng.normal(
            scale=np.sqrt(2.0 * self.gamma), size=(d, self.n_components)
        )
        self._offset = self._rng.uniform(0.0, 2.0 * np.pi, size=self.n_components)
        self._linear.fit(self._features(x), y)
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        return self._linear.decision_function(self._features(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        return (self.decision_function(x) >= 0.0).astype(np.int64)
