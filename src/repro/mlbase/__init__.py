"""Classical ML baselines (Fried et al. 2013): SVM, decision tree, AdaBoost,
plus metrics and feature preprocessing — all from scratch on numpy."""

from repro.mlbase.metrics import accuracy, confusion_matrix, precision_recall_f1
from repro.mlbase.preprocess import StandardScaler
from repro.mlbase.svm import LinearSVM, KernelSVM
from repro.mlbase.tree import DecisionTree
from repro.mlbase.adaboost import AdaBoost
from repro.mlbase.crossval import CrossValResult, cross_validate, kfold_indices

__all__ = [
    "accuracy", "confusion_matrix", "precision_recall_f1",
    "StandardScaler",
    "LinearSVM", "KernelSVM",
    "DecisionTree",
    "AdaBoost",
    "CrossValResult", "cross_validate", "kfold_indices",
]
