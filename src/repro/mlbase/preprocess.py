"""Feature preprocessing for the classical baselines."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import DatasetError


class StandardScaler:
    """Zero-mean / unit-variance scaling fitted on the training split."""

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise DatasetError("StandardScaler expects a 2-D feature matrix")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise DatasetError("StandardScaler used before fit()")
        return (np.asarray(x, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)
