"""AdaBoost (discrete SAMME) over shallow decision trees.

Fried et al. report AdaBoost as the strongest hand-crafted classifier on the
Table I features (92% on NPB); this matches the classic formulation: each
round fits a depth-limited tree on reweighted data, and the ensemble votes
with log-odds weights.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ModelError
from repro.mlbase.tree import DecisionTree


class AdaBoost:
    """Binary AdaBoost with decision-tree weak learners (labels 0/1)."""

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int = 2,
        learning_rate: float = 1.0,
    ) -> None:
        if n_estimators < 1:
            raise ModelError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.estimators_: List[DecisionTree] = []
        self.alphas_: List[float] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "AdaBoost":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if x.ndim != 2 or y.shape != (x.shape[0],):
            raise ModelError("AdaBoost.fit expects (n, d) features, (n,) labels")
        n = y.shape[0]
        signs = np.where(y == 1, 1.0, -1.0)
        weights = np.full(n, 1.0 / n)
        self.estimators_ = []
        self.alphas_ = []

        for _round in range(self.n_estimators):
            tree = DecisionTree(max_depth=self.max_depth, min_samples_leaf=1)
            tree.fit(x, y, weights)
            pred = tree.predict(x)
            miss = pred != y
            err = float(weights[miss].sum())
            if err >= 0.5:
                if not self.estimators_:
                    # degenerate data: keep one stump anyway
                    self.estimators_.append(tree)
                    self.alphas_.append(1.0)
                break
            err = max(err, 1e-12)
            alpha = self.learning_rate * 0.5 * np.log((1.0 - err) / err)
            self.estimators_.append(tree)
            self.alphas_.append(float(alpha))
            pred_signs = np.where(pred == 1, 1.0, -1.0)
            weights *= np.exp(-alpha * signs * pred_signs)
            weights /= weights.sum()
            if err < 1e-10:
                break
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if not self.estimators_:
            raise ModelError("AdaBoost used before fit()")
        x = np.asarray(x, dtype=np.float64)
        score = np.zeros(x.shape[0])
        for alpha, tree in zip(self.alphas_, self.estimators_):
            score += alpha * np.where(tree.predict(x) == 1, 1.0, -1.0)
        return score

    def predict(self, x: np.ndarray) -> np.ndarray:
        return (self.decision_function(x) >= 0.0).astype(np.int64)
