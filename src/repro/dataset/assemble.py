"""Dataset assembly: benchmark + transformed pools, balancing, splitting.

Reproduces Section IV-A/IV-B: the 840 benchmark loops (authored labels) are
augmented with source transforms and six compiler-pipeline IR variants
(oracle labels), balanced to ``n_per_class`` parallel and non-parallel
examples, and split 75:25 with *no common objects* across the split — all
variants of one source program land on the same side.

Assembly is expensive (thousands of profiled interpretations); results are
cached on disk keyed by the configuration hash.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.features import FEATURE_NAMES
from repro.benchsuite.base import AppSpec
from repro.benchsuite.registry import build_all_apps
from repro.dataset.extraction import extract_loop_samples
from repro.dataset.transforms import apply_transform
from repro.dataset.types import LoopDataset, LoopSample
from repro.embeddings.anonwalk import AnonymousWalkSpace
from repro.embeddings.inst2vec import Inst2Vec
from repro.errors import DatasetError, InterpreterError
from repro.ir.lowering import lower_program
from repro.ir.passes import apply_pipeline
from repro.ir.verify import verify_program
from repro.utils.cache import DiskCache, stable_hash
from repro.utils.rng import ensure_rng, spawn_rngs

#: bump when extraction/assembly semantics change; invalidates disk caches
_PIPELINE_VERSION = 2


@dataclass
class DatasetConfig:
    """Dataset pipeline configuration (paper defaults)."""

    seed: int = 7
    semantic_dim: int = 200            # inst2vec + 7 dynamic features
    walk_length: int = 4
    gamma: int = 30
    n_per_class: int = 3100
    pipelines: Tuple[str, ...] = (
        "O0", "O1-fold", "O1-dce", "O2-cse", "O2-licm", "O2-unroll",
    )
    transforms: Tuple[str, ...] = ("ops", "order", "dep", "dep")
    train_fraction: float = 0.75
    inst2vec_epochs: int = 3
    use_cache: bool = True

    @classmethod
    def fast(cls, seed: int = 7) -> "DatasetConfig":
        """CPU-friendly configuration for tests and default benchmark runs."""
        return cls(
            seed=seed,
            gamma=12,
            n_per_class=400,
            pipelines=("O0", "O2-licm"),
            transforms=("ops", "dep"),
            inst2vec_epochs=2,
        )

    @property
    def inst2vec_dim(self) -> int:
        return self.semantic_dim - len(FEATURE_NAMES)

    def cache_key(self) -> str:
        payload = asdict(self)
        payload.pop("use_cache")
        payload["pipeline_version"] = _PIPELINE_VERSION
        return "dataset-" + stable_hash(payload)


@dataclass
class AssembledData:
    """Everything the training and evaluation harnesses consume."""

    config: DatasetConfig
    benchmark: LoopDataset          # the 840 Table II loops (authored labels)
    generated: LoopDataset          # transformed pool (oracle labels)
    train: LoopDataset              # balanced 75% split
    test: LoopDataset               # balanced 25% split
    inst2vec: Inst2Vec
    walk_space: AnonymousWalkSpace

    def train_groups(self) -> set:
        """Base-program groups present in the training split."""
        return {_base_program_key(s) for s in self.train}

    def test_suite(self, suite: str) -> LoopDataset:
        """Test-split samples of one evaluation suite (Table III rows)."""
        return LoopDataset(
            [s for s in self.test if s.suite == suite], name=f"test/{suite}"
        )

    def benchmark_eval(self, suite: str) -> LoopDataset:
        """Held-out benchmark loops of one suite (Table III evaluation set):
        all Table II samples of the suite whose source program contributed
        nothing to training."""
        held = self.train_groups()
        return LoopDataset(
            [
                s
                for s in self.benchmark
                if s.suite == suite and _base_program_key(s) not in held
            ],
            name=f"eval/{suite}",
        )


def assemble_dataset(config: Optional[DatasetConfig] = None) -> AssembledData:
    """Build (or load from cache) the full classification dataset."""
    config = config or DatasetConfig()
    cache = DiskCache() if config.use_cache else None
    if cache is not None:
        cached = cache.get(config.cache_key())
        if cached is not None:
            return cached
    data = _assemble(config)
    if cache is not None:
        cache.put(config.cache_key(), data)
    return data


def _assemble(config: DatasetConfig) -> AssembledData:
    rng = ensure_rng(config.seed)
    extract_rng, balance_rng, split_rng, transform_rng, i2v_rng = spawn_rngs(
        rng, 5
    )

    apps = build_all_apps()

    # -- inst2vec trained on the base-program IR corpus --------------------
    base_irs = []
    for app in apps:
        for program in app.programs:
            ir = lower_program(program)
            verify_program(ir)
            base_irs.append(ir)
    inst2vec = Inst2Vec(dim=config.inst2vec_dim).train(
        base_irs, epochs=config.inst2vec_epochs, rng=i2v_rng
    )
    walk_space = AnonymousWalkSpace(config.walk_length)

    # -- benchmark pool: authored labels, O0 variant -----------------------------
    benchmark_samples: List[LoopSample] = []
    for app in apps:
        for program in app.programs:
            labels = {
                loop_id: loop.label
                for loop_id, loop in app.loops.items()
                if loop.program_name == program.name
            }
            benchmark_samples.extend(
                extract_loop_samples(
                    program,
                    labels,
                    inst2vec,
                    walk_space,
                    suite=app.suite,
                    app=app.name,
                    gamma=config.gamma,
                    variant="O0",
                    rng=extract_rng,
                )
            )

    # -- generated pool: pipeline variants + source transforms, oracle labels --
    generated_samples: List[LoopSample] = []
    for app in apps:
        for program in app.programs:
            base_ir = lower_program(program)
            for pipeline_name in config.pipelines:
                if pipeline_name == "O0":
                    continue  # the O0 view of the source is the benchmark pool
                variant_ir = apply_pipeline(base_ir, pipeline_name)
                generated_samples.extend(
                    _safe_extract(
                        program, variant_ir, pipeline_name, app, inst2vec,
                        walk_space, config, extract_rng,
                    )
                )
            for t_pos, transform_name in enumerate(config.transforms):
                transformed = apply_transform(
                    program, transform_name, rng=transform_rng
                )
                transformed.name = f"{program.name}+{transform_name}{t_pos}"
                try:
                    t_ir = lower_program(transformed)
                    verify_program(t_ir)
                except Exception:
                    continue
                # transformed sources also go through the compiler pipelines
                # ("six different LLVM-IR intermediary representations of
                # each source code", Section IV-A)
                for pipeline_name in config.pipelines:
                    variant_ir = (
                        t_ir
                        if pipeline_name == "O0"
                        else apply_pipeline(t_ir, pipeline_name)
                    )
                    generated_samples.extend(
                        _safe_extract(
                            transformed, variant_ir, pipeline_name, app,
                            inst2vec, walk_space, config, extract_rng,
                        )
                    )

    benchmark = LoopDataset(benchmark_samples, name="benchmark")
    generated = LoopDataset(generated_samples, name="generated")

    train, test = _balance_and_split(
        benchmark, generated, config, balance_rng, split_rng
    )
    return AssembledData(
        config=config,
        benchmark=benchmark,
        generated=generated,
        train=train,
        test=test,
        inst2vec=inst2vec,
        walk_space=walk_space,
    )


def _safe_extract(
    program, ir_program, variant, app, inst2vec, walk_space, config, rng
) -> List[LoopSample]:
    """Extract with oracle labels; a variant that fails to run is skipped
    (e.g. an interchanged nest that walks out of bounds)."""
    try:
        return extract_loop_samples(
            program,
            None,
            inst2vec,
            walk_space,
            suite="Generated",
            app=app.name,
            gamma=config.gamma,
            variant=variant,
            ir_program=ir_program,
            rng=rng,
        )
    except InterpreterError:
        return []


def _base_program_key(sample: LoopSample) -> str:
    """Group key: all variants of one source program share it."""
    return sample.program_name.split("+")[0]


def _balance_and_split(
    benchmark: LoopDataset,
    generated: LoopDataset,
    config: DatasetConfig,
    balance_rng: np.random.Generator,
    split_rng: np.random.Generator,
) -> Tuple[LoopDataset, LoopDataset]:
    pool = list(benchmark) + list(generated)
    positives = [s for s in pool if s.label == 1]
    negatives = [s for s in pool if s.label == 0]
    n = min(config.n_per_class, len(positives), len(negatives))
    if n == 0:
        raise DatasetError("dataset pool has an empty class")

    chosen = balanced_subset(positives, negatives, n, balance_rng)
    return train_test_split(
        chosen, config.train_fraction, split_rng, group_key=_base_program_key
    )


def balanced_subset(
    positives: Sequence[LoopSample],
    negatives: Sequence[LoopSample],
    n_per_class: int,
    rng: np.random.Generator,
) -> List[LoopSample]:
    """Deterministically sample n examples of each class."""
    if n_per_class > len(positives) or n_per_class > len(negatives):
        raise DatasetError(
            f"requested {n_per_class} per class but pools are "
            f"{len(positives)}/{len(negatives)}"
        )
    pos_idx = rng.choice(len(positives), size=n_per_class, replace=False)
    neg_idx = rng.choice(len(negatives), size=n_per_class, replace=False)
    return [positives[int(i)] for i in pos_idx] + [
        negatives[int(i)] for i in neg_idx
    ]


def train_test_split(
    samples: Sequence[LoopSample],
    train_fraction: float,
    rng: np.random.Generator,
    group_key=_base_program_key,
) -> Tuple[LoopDataset, LoopDataset]:
    """Grouped, app-stratified split.

    Every group (a source program and all its variants) lands entirely in
    train or test ("no common objects", Section IV-B), and the split is
    stratified per application so every Table III evaluation suite retains
    held-out loops.  Within each app, at least one group goes to test; apps
    with a single source program (the small BOTS codes) go entirely to test
    — their handful of loops contributes evaluation signal, not training
    signal, exactly as a held-out suite should.
    """
    if not 0.0 < train_fraction < 1.0:
        raise DatasetError("train_fraction must be in (0, 1)")
    # app -> group name -> samples
    by_app: Dict[str, Dict[str, List[LoopSample]]] = {}
    for sample in samples:
        by_app.setdefault(sample.app, {}).setdefault(
            group_key(sample), []
        ).append(sample)

    train: List[LoopSample] = []
    test: List[LoopSample] = []
    for app in sorted(by_app):
        groups = by_app[app]
        names = sorted(groups)
        if len(names) == 1:
            test.extend(groups[names[0]])
            continue
        order = rng.permutation(len(names))
        app_total = sum(len(groups[n]) for n in names)
        target = train_fraction * app_total
        filled = 0
        sent_to_test = 0
        for rank, pos in enumerate(order):
            group = groups[names[int(pos)]]
            remaining = len(order) - rank
            # leave at least one group for the test side
            if filled < target and remaining > max(1 - sent_to_test, 0):
                train.extend(group)
                filled += len(group)
            else:
                test.extend(group)
                sent_to_test += 1
    if not train or not test:
        raise DatasetError("degenerate split: one side is empty")
    return (
        LoopDataset(train, name="train"),
        LoopDataset(test, name="test"),
    )
