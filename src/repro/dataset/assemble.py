"""Dataset assembly: benchmark + transformed pools, balancing, splitting.

Reproduces Section IV-A/IV-B: the 840 benchmark loops (authored labels) are
augmented with source transforms and six compiler-pipeline IR variants
(oracle labels), balanced to ``n_per_class`` parallel and non-parallel
examples, and split 75:25 with *no common objects* across the split — all
variants of one source program land on the same side.

Assembly is expensive (thousands of profiled interpretations).  The work is
expressed as a flat list of :class:`~repro.dataset.parallel.ExtractionTask`
— one per (program variant, compiler pipeline) — executed by
:func:`repro.dataset.parallel.run_extraction_tasks` either serially
(``n_workers=1``, the reference path) or across a process pool.  Every task
carries a pre-spawned RNG seed, so the assembled dataset is byte-identical
for any worker count and the :class:`~repro.utils.cache.DiskCache` key is
executor-independent.  Results are cached on disk at two granularities:
one entry per application shard (so a crashed or interrupted build resumes
where it stopped) and one entry for the finished dataset.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field, asdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.features import FEATURE_NAMES
from repro.benchsuite.base import AppSpec
from repro.benchsuite.registry import build_all_apps, build_app
from repro.dataset.parallel import (
    GENERATED_SUITE,
    AssemblyStats,
    DropRecord,
    ExtractionTask,
    WorkerContext,
    run_extraction_tasks,
)
from repro.dataset.transforms import apply_transform
from repro.dataset.types import LoopDataset, LoopSample
from repro.embeddings.anonwalk import AnonymousWalkSpace
from repro.embeddings.inst2vec import Inst2Vec
from repro.errors import DatasetError
from repro.ir.lowering import lower_program
from repro.ir.verify import verify_program
from repro.utils.cache import DiskCache, stable_hash
from repro.utils.rng import ensure_rng, spawn_rngs, spawn_seeds

#: bump when extraction/assembly semantics change; invalidates disk caches
#: (v6: range-sharpened static prover + IR004–IR006 range quarantine)
_PIPELINE_VERSION = 6

#: DatasetConfig knobs that tune the executor, not the dataset content —
#: excluded from the cache key so serial and parallel builds share entries.
#: (``task_timeout_s`` is a fault-tolerance backstop: keep it generous, a
#: timeout small enough to fire on healthy tasks would change content.)
_EXECUTOR_KNOBS = ("use_cache", "n_workers", "task_timeout_s", "max_retries")


@dataclass
class DatasetConfig:
    """Dataset pipeline configuration (paper defaults)."""

    seed: int = 7
    semantic_dim: int = 200            # inst2vec + 7 dynamic features
    walk_length: int = 4
    gamma: int = 30
    n_per_class: int = 3100
    pipelines: Tuple[str, ...] = (
        "O0", "O1-fold", "O1-dce", "O2-cse", "O2-licm", "O2-unroll",
    )
    transforms: Tuple[str, ...] = ("ops", "order", "dep", "dep")
    train_fraction: float = 0.75
    inst2vec_epochs: int = 3
    apps: Optional[Tuple[str, ...]] = None   # None = full Table II roster
    use_cache: bool = True
    # run repro.lint during assembly: quarantine structurally invalid
    # samples (ERROR findings become DropRecords) and cross-validate
    # oracle labels against the static dependence prover (DS005).
    # Content-affecting, so part of the cache key.
    lint: bool = True
    # executor knobs (content-neutral; see _EXECUTOR_KNOBS)
    n_workers: int = 1
    task_timeout_s: Optional[float] = 300.0
    max_retries: int = 1

    @classmethod
    def fast(cls, seed: int = 7, n_workers: int = 1) -> "DatasetConfig":
        """CPU-friendly configuration for tests and default benchmark runs."""
        return cls(
            seed=seed,
            gamma=12,
            n_per_class=400,
            pipelines=("O0", "O2-licm"),
            transforms=("ops", "dep"),
            inst2vec_epochs=2,
            n_workers=n_workers,
        )

    @classmethod
    def tiny(cls, seed: int = 7, n_workers: int = 1) -> "DatasetConfig":
        """Four small applications; seconds to assemble.  Differential and
        metamorphic tests and the CI smoke benchmark run on this."""
        return cls(
            seed=seed,
            semantic_dim=32,
            gamma=6,
            n_per_class=40,
            pipelines=("O0", "O1-dce"),
            transforms=("ops", "dep"),
            inst2vec_epochs=1,
            apps=("EP", "IS", "fib", "nqueens"),
            n_workers=n_workers,
        )

    @property
    def inst2vec_dim(self) -> int:
        return self.semantic_dim - len(FEATURE_NAMES)

    def cache_key(self) -> str:
        from repro.analysis.ranges import RANGE_ANALYSIS_VERSION

        payload = asdict(self)
        for knob in _EXECUTOR_KNOBS:
            payload.pop(knob)
        payload["pipeline_version"] = _PIPELINE_VERSION
        # range-backed DS005 verdicts and IR004–IR006 quarantine decisions
        # are baked into shards: an engine change must invalidate them
        payload["range_analysis_version"] = RANGE_ANALYSIS_VERSION
        return "dataset-" + stable_hash(payload)

    def shard_key(self, app_name: str) -> str:
        """Cache key of one application's extracted sample shard."""
        return f"{self.cache_key()}-shard-{app_name}"


@dataclass
class AssembledData:
    """Everything the training and evaluation harnesses consume."""

    config: DatasetConfig
    benchmark: LoopDataset          # the 840 Table II loops (authored labels)
    generated: LoopDataset          # transformed pool (oracle labels)
    train: LoopDataset              # balanced 75% split
    test: LoopDataset               # balanced 25% split
    inst2vec: Inst2Vec
    walk_space: AnonymousWalkSpace
    stats: Optional[AssemblyStats] = None

    def train_groups(self) -> set:
        """Base-program groups present in the training split."""
        return {_base_program_key(s) for s in self.train}

    def test_suite(self, suite: str) -> LoopDataset:
        """Test-split samples of one evaluation suite (Table III rows)."""
        return LoopDataset(
            [s for s in self.test if s.suite == suite], name=f"test/{suite}"
        )

    def benchmark_eval(self, suite: str) -> LoopDataset:
        """Held-out benchmark loops of one suite (Table III evaluation set):
        all Table II samples of the suite whose source program contributed
        nothing to training."""
        held = self.train_groups()
        return LoopDataset(
            [
                s
                for s in self.benchmark
                if s.suite == suite and _base_program_key(s) not in held
            ],
            name=f"eval/{suite}",
        )


def assemble_dataset(config: Optional[DatasetConfig] = None) -> AssembledData:
    """Build (or load from cache) the full classification dataset."""
    config = config or DatasetConfig()
    cache = DiskCache() if config.use_cache else None
    if cache is not None:
        cached = cache.get(config.cache_key())
        if cached is not None:
            if cached.stats is not None:
                cached.stats.cache_hit = True
            return cached
    data = _assemble(config)
    if cache is not None:
        cache.put(config.cache_key(), data)
    return data


def _selected_apps(config: DatasetConfig) -> List[AppSpec]:
    if config.apps is None:
        return build_all_apps()
    return [build_app(name) for name in config.apps]


def build_extraction_tasks(
    apps: Sequence[AppSpec],
    config: DatasetConfig,
    transform_rng,
) -> List[ExtractionTask]:
    """The deterministic task list: pure AST work, no profiling.

    Section one mirrors the benchmark pool (authored labels, O0 view of
    every source program); section two the generated pool (oracle labels:
    optimized pipeline variants of each source, then each source transform
    pushed through every pipeline).  Transform randomness comes from seeds
    pre-spawned in slot order, so the list — and therefore every task's
    extraction seed — is independent of which shards are later cached.
    """
    tasks: List[ExtractionTask] = []

    def add(program, labels, suite, app_name, variant, required, quirks=()):
        tasks.append(
            ExtractionTask(
                index=len(tasks),
                program=program,
                labels=labels,
                suite=suite,
                app=app_name,
                variant=variant,
                required=required,
                quirk_loops=tuple(quirks),
            )
        )

    # -- benchmark pool: authored labels, O0 variant -----------------------
    for app in apps:
        for program in app.programs:
            labels = {
                loop_id: loop.label
                for loop_id, loop in app.loops.items()
                if loop.program_name == program.name
            }
            quirks = sorted(
                loop_id
                for loop_id, loop in app.loops.items()
                if loop.program_name == program.name and loop.annotation_quirk
            )
            add(
                program, labels, app.suite, app.name, "O0",
                required=True, quirks=quirks,
            )

    # -- generated pool: pipeline variants + source transforms -------------
    n_slots = sum(
        len(app.programs) * len(config.transforms) for app in apps
    )
    transform_seeds = iter(spawn_seeds(transform_rng, n_slots))
    for app in apps:
        for program in app.programs:
            for pipeline_name in config.pipelines:
                if pipeline_name == "O0":
                    continue  # the O0 view of the source is the benchmark pool
                add(
                    program, None, GENERATED_SUITE, app.name, pipeline_name,
                    required=False,
                )
            for t_pos, transform_name in enumerate(config.transforms):
                t_rng = np.random.default_rng(next(transform_seeds))
                transformed = apply_transform(
                    program, transform_name, rng=t_rng
                )
                transformed.name = f"{program.name}+{transform_name}{t_pos}"
                # transformed sources also go through the compiler pipelines
                # ("six different LLVM-IR intermediary representations of
                # each source code", Section IV-A); a transform that fails
                # to lower is dropped per pipeline by the task runner
                for pipeline_name in config.pipelines:
                    add(
                        transformed, None, GENERATED_SUITE, app.name,
                        pipeline_name, required=False,
                    )
    return tasks


def _assemble(config: DatasetConfig) -> AssembledData:
    t_start = time.perf_counter()
    rng = ensure_rng(config.seed)
    extract_rng, balance_rng, split_rng, transform_rng, i2v_rng = spawn_rngs(
        rng, 5
    )

    apps = _selected_apps(config)

    # -- inst2vec trained on the base-program IR corpus --------------------
    base_irs = []
    for app in apps:
        for program in app.programs:
            ir = lower_program(program)
            verify_program(ir)
            base_irs.append(ir)
    inst2vec = Inst2Vec(dim=config.inst2vec_dim).train(
        base_irs, epochs=config.inst2vec_epochs, rng=i2v_rng
    )
    walk_space = AnonymousWalkSpace(config.walk_length)

    # -- the deterministic task list, one pre-spawned seed per task --------
    tasks = build_extraction_tasks(apps, config, transform_rng)
    for task, seed in zip(tasks, spawn_seeds(extract_rng, len(tasks))):
        task.seed = seed

    stats = AssemblyStats(
        n_tasks=len(tasks),
        n_workers=max(1, config.n_workers),
        task_timeout_s=config.task_timeout_s,
        max_retries=config.max_retries,
    )
    t_setup = time.perf_counter()
    stats.setup_seconds = t_setup - t_start

    # -- execute missing shards, serially or across the pool ---------------
    ctx = WorkerContext(
        inst2vec=inst2vec,
        walk_space=walk_space,
        gamma=config.gamma,
        task_timeout_s=config.task_timeout_s,
    )
    shard_cache = DiskCache() if config.use_cache else None
    tasks_by_app: Dict[str, List[ExtractionTask]] = {
        app.name: [] for app in apps
    }
    for task in tasks:
        tasks_by_app[task.app].append(task)

    shards: Dict[str, Dict[str, object]] = {}
    missing: List[AppSpec] = []
    for app in apps:
        payload = (
            shard_cache.get(config.shard_key(app.name))
            if shard_cache is not None
            else None
        )
        if _shard_valid(payload):
            shards[app.name] = payload
            stats.shard_hits += 1
        else:
            missing.append(app)
            stats.shard_misses += 1

    if missing:
        live_tasks = [
            task for app in missing for task in tasks_by_app[app.name]
        ]
        run = run_extraction_tasks(
            live_tasks,
            ctx,
            n_workers=config.n_workers,
            max_retries=config.max_retries,
        )
        stats.n_retries = run.n_retries
        per_task = {
            task.index: samples
            for task, samples in zip(live_tasks, run.samples)
        }
        drops_by_app: Dict[str, List[DropRecord]] = {}
        for drop in run.drops:
            drops_by_app.setdefault(drop.app, []).append(drop)
        range_memo: Dict[str, Dict[str, str]] = {}
        for app in missing:
            app_tasks = tasks_by_app[app.name]
            app_drops = drops_by_app.get(app.name, [])
            benchmark_clean: List[LoopSample] = []
            generated_clean: List[LoopSample] = []
            for task in app_tasks:
                samples = per_task[task.index]
                if config.lint:
                    samples = _quarantine(
                        samples, task, stats, app_drops, range_memo
                    )
                (benchmark_clean if task.labels is not None
                 else generated_clean).extend(samples)
            payload = {
                "benchmark": benchmark_clean,
                "generated": generated_clean,
                "drops": app_drops,
                "range_analysis_version": _range_version(),
            }
            shards[app.name] = payload
            if shard_cache is not None:
                shard_cache.put(config.shard_key(app.name), payload)
    stats.extraction_seconds = time.perf_counter() - t_setup

    # -- reassemble pools in application order -----------------------------
    benchmark_samples: List[LoopSample] = []
    generated_samples: List[LoopSample] = []
    for app in apps:
        payload = shards[app.name]
        benchmark_samples.extend(payload["benchmark"])
        generated_samples.extend(payload["generated"])
        stats.drops.extend(payload["drops"])

    if config.lint:
        # DS005: cross-validate every label against the static dependence
        # prover; a contradicted label is a corrupted sample, not noise.
        from repro.lint.core import LintReport
        from repro.lint.dataset_rules import cross_validate_labels

        programs = {task.program.name: task.program for task in tasks}
        report = LintReport()
        stats.crossval = cross_validate_labels(
            report, benchmark_samples + generated_samples, programs
        )
        if report.errors:
            stats.lint_findings.extend(f.to_dict() for f in report.errors)
            bad_ids = {f.details.get("sample_id") for f in report.errors}
            for pool_list in (benchmark_samples, generated_samples):
                kept: List[LoopSample] = []
                for s in pool_list:
                    if s.sample_id in bad_ids:
                        stats.lint_quarantined += 1
                        stats.drops.append(DropRecord(
                            program_name=s.program_name,
                            app=s.app,
                            variant=str(s.meta.get("variant", "?")),
                            reason="lint:DS005",
                            attempts=0,
                            detail=f"label contradicts static verdict "
                                   f"(sample {s.sample_id})",
                        ))
                    else:
                        kept.append(s)
                pool_list[:] = kept

    benchmark = LoopDataset(benchmark_samples, name="benchmark")
    generated = LoopDataset(generated_samples, name="generated")

    pool = benchmark_samples + generated_samples
    stats.suite_counts = dict(Counter(s.suite for s in pool))
    stats.app_counts = dict(Counter(s.app for s in pool))

    train, test = _balance_and_split(
        benchmark, generated, config, balance_rng, split_rng
    )
    stats.wall_seconds = time.perf_counter() - t_start
    return AssembledData(
        config=config,
        benchmark=benchmark,
        generated=generated,
        train=train,
        test=test,
        inst2vec=inst2vec,
        walk_space=walk_space,
        stats=stats,
    )


def _range_error_loops(program, memo: Dict[str, Dict[str, str]]) -> Dict[str, str]:
    """Loop ids condemned by the value-range rules (IR004–IR006 ERRORs)
    for ``program``, mapped to the firing rule id.  Memoized per program
    name: every pipeline/transform variant of a source program shares the
    same loop ids, so one fixpoint run covers them all."""
    key = program.name
    if key not in memo:
        condemned: Dict[str, str] = {}
        try:
            from repro.lint.core import LintReport
            from repro.lint.ir_rules import check_ir_ranges

            report = LintReport()
            check_ir_ranges(report, lower_program(program))
            for f in report.errors:
                loop = f.details.get("loop")
                if loop:
                    condemned.setdefault(loop, f.rule_id)
        except Exception:
            condemned = {}  # unanalyzable program: extraction's problem
        memo[key] = condemned
    return memo[key]


def _quarantine(
    samples: List[LoopSample],
    task: ExtractionTask,
    stats: AssemblyStats,
    drops: List[DropRecord],
    range_memo: Optional[Dict[str, Dict[str, str]]] = None,
) -> List[LoopSample]:
    """Drop samples with ERROR-level structural lint findings, plus
    samples from loops the value-range rules condemn (a provably
    out-of-bounds access or zero divisor means the loop's dynamic
    profile — and therefore its oracle label — is garbage).

    Each quarantined sample becomes a ``DropRecord`` with reason
    ``lint:<RULEID>`` so broken extractions surface in
    :meth:`AssemblyStats.summary` exactly like crashed or timed-out
    variants do.
    """
    from repro.lint.runner import lint_samples

    condemned = (
        _range_error_loops(task.program, range_memo)
        if range_memo is not None
        else {}
    )
    clean: List[LoopSample] = []
    for sample in samples:
        if sample.loop_id in condemned:
            rule_id = condemned[sample.loop_id]
            stats.lint_quarantined += 1
            drops.append(DropRecord(
                program_name=task.program.name,
                app=task.app,
                variant=task.variant,
                reason=f"lint:{rule_id}",
                attempts=0,
                detail=f"loop {sample.loop_id} condemned by range rule "
                       f"{rule_id}",
            ))
            continue
        report = lint_samples([sample])
        if not report.errors:
            clean.append(sample)
            continue
        stats.lint_quarantined += 1
        stats.lint_findings.extend(f.to_dict() for f in report.errors)
        rule_ids = sorted({f.rule_id for f in report.errors})
        drops.append(DropRecord(
            program_name=task.program.name,
            app=task.app,
            variant=task.variant,
            reason=f"lint:{rule_ids[0]}",
            attempts=0,
            detail="; ".join(f.message for f in report.errors[:3]),
        ))
    return clean


def _range_version() -> int:
    from repro.analysis.ranges import RANGE_ANALYSIS_VERSION

    return RANGE_ANALYSIS_VERSION


def _shard_valid(payload) -> bool:
    """A usable shard entry: well-shaped, current, *and* structurally clean.

    Cached shards are revalidated with the cheap structural lint rules
    before reuse — a shard written by an older/buggier extractor (or
    corrupted in a way that still unpickles) is treated as a miss and
    recomputed rather than poisoning the dataset.  Shards also record the
    range-analysis version they were quarantined under; a stale version
    means the IR004–IR006 decisions baked into the shard may no longer
    hold, so the shard is rebuilt.
    """
    if not (
        isinstance(payload, dict)
        and {"benchmark", "generated", "drops"} <= set(payload)
    ):
        return False
    if payload.get("range_analysis_version") != _range_version():
        return False
    try:
        from repro.lint.runner import lint_samples

        samples = list(payload["benchmark"]) + list(payload["generated"])
        report = lint_samples(samples)
    except Exception:
        return False  # entries that are not LoopSamples at all
    return not report.errors


def programs_for_config(config: DatasetConfig) -> Dict[str, object]:
    """Program name -> source AST for every task a config would build.

    Mirrors ``_assemble``'s RNG spawn order exactly, so transformed
    programs are byte-identical to the ones the assembly used — the map a
    caller needs to run DS005 label cross-validation against an already
    assembled dataset (the ``repro lint`` CLI path).
    """
    rng = ensure_rng(config.seed)
    _, _, _, transform_rng, _ = spawn_rngs(rng, 5)
    apps = _selected_apps(config)
    tasks = build_extraction_tasks(apps, config, transform_rng)
    return {task.program.name: task.program for task in tasks}


def _base_program_key(sample: LoopSample) -> str:
    """Group key: all variants of one source program share it."""
    return sample.program_name.split("+")[0]


def _balance_and_split(
    benchmark: LoopDataset,
    generated: LoopDataset,
    config: DatasetConfig,
    balance_rng: np.random.Generator,
    split_rng: np.random.Generator,
) -> Tuple[LoopDataset, LoopDataset]:
    pool = list(benchmark) + list(generated)
    positives = [s for s in pool if s.label == 1]
    negatives = [s for s in pool if s.label == 0]
    n = min(config.n_per_class, len(positives), len(negatives))
    if n == 0:
        raise DatasetError(
            f"dataset pool has an empty class "
            f"({len(positives)} parallel / {len(negatives)} non-parallel); "
            f"widen apps/transforms or lower n_per_class"
        )

    chosen = balanced_subset(positives, negatives, n, balance_rng)
    return train_test_split(
        chosen, config.train_fraction, split_rng, group_key=_base_program_key
    )


def balanced_subset(
    positives: Sequence[LoopSample],
    negatives: Sequence[LoopSample],
    n_per_class: int,
    rng: np.random.Generator,
) -> List[LoopSample]:
    """Deterministically sample n examples of each class."""
    if n_per_class > len(positives) or n_per_class > len(negatives):
        raise DatasetError(
            f"requested {n_per_class} per class but pools are "
            f"{len(positives)}/{len(negatives)}"
        )
    pos_idx = rng.choice(len(positives), size=n_per_class, replace=False)
    neg_idx = rng.choice(len(negatives), size=n_per_class, replace=False)
    return [positives[int(i)] for i in pos_idx] + [
        negatives[int(i)] for i in neg_idx
    ]


def train_test_split(
    samples: Sequence[LoopSample],
    train_fraction: float,
    rng: np.random.Generator,
    group_key=_base_program_key,
) -> Tuple[LoopDataset, LoopDataset]:
    """Grouped, app-stratified split.

    Every group (a source program and all its variants) lands entirely in
    train or test ("no common objects", Section IV-B), and the split is
    stratified per application so every Table III evaluation suite retains
    held-out loops.  Within each app, at least one group goes to test; apps
    with a single source program (the small BOTS codes) go entirely to test
    — their handful of loops contributes evaluation signal, not training
    signal, exactly as a held-out suite should.
    """
    if not 0.0 < train_fraction < 1.0:
        raise DatasetError("train_fraction must be in (0, 1)")
    # app -> group name -> samples
    by_app: Dict[str, Dict[str, List[LoopSample]]] = {}
    for sample in samples:
        by_app.setdefault(sample.app, {}).setdefault(
            group_key(sample), []
        ).append(sample)

    train: List[LoopSample] = []
    test: List[LoopSample] = []
    for app in sorted(by_app):
        groups = by_app[app]
        names = sorted(groups)
        if len(names) == 1:
            test.extend(groups[names[0]])
            continue
        order = rng.permutation(len(names))
        app_total = sum(len(groups[n]) for n in names)
        target = train_fraction * app_total
        filled = 0
        sent_to_test = 0
        for rank, pos in enumerate(order):
            group = groups[names[int(pos)]]
            remaining = len(order) - rank
            # leave at least one group for the test side
            if filled < target and remaining > max(1 - sent_to_test, 0):
                train.extend(group)
                filled += len(group)
            else:
                test.extend(group)
                sent_to_test += 1
    if not train or not test:
        raise DatasetError(
            f"degenerate split: train={len(train)} test={len(test)} samples "
            f"across {sum(len(g) for g in by_app.values())} group(s); "
            f"need at least two groups with samples on both sides"
        )
    return (
        LoopDataset(train, name="train"),
        LoopDataset(test, name="test"),
    )
