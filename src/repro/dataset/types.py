"""Dataset item types.

A :class:`LoopSample` is one classification example: everything every model
family needs, precomputed once —

* the sub-PEG's undirected adjacency (GNN views),
* semantic node features (inst2vec mean + dynamic features, 200-d),
* structural node features (anonymous-walk distributions),
* the flat statement sequence (NCC's LSTM input),
* the Table I loop feature vector (classical ML baselines and tools),
* the oracle/annotation label and provenance metadata.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DatasetError


@dataclass
class LoopSample:
    """One labeled loop example."""

    sample_id: str                  # unique: program/pipeline/loop
    loop_id: str
    program_name: str               # source program (augmentation-invariant)
    app: str                        # benchmark application (e.g. "BT")
    suite: str                      # "NPB" | "PolyBench" | "BOTS" | "Generated"
    label: int                      # 1 = parallelizable
    adjacency: np.ndarray           # (n, n) undirected {0,1}
    x_semantic: np.ndarray          # (n, d_sem)
    x_structural: np.ndarray        # (n, n_walk_types)
    statements: List[str]           # flat statement token sequence
    loop_features: np.ndarray       # Table I vector (7,)
    tool_votes: Dict[str, int] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        return int(self.adjacency.shape[0])

    def validate(self) -> None:
        n = self.adjacency.shape[0]
        if self.adjacency.shape != (n, n):
            raise DatasetError(f"{self.sample_id}: adjacency not square")
        if self.x_semantic.shape[0] != n or self.x_structural.shape[0] != n:
            raise DatasetError(
                f"{self.sample_id}: node feature row counts do not match "
                f"adjacency ({self.x_semantic.shape[0]}, "
                f"{self.x_structural.shape[0]} vs {n})"
            )
        if self.label not in (0, 1):
            raise DatasetError(f"{self.sample_id}: label must be 0/1")

    def fingerprint(self) -> str:
        """Stable digest of the full sample content (arrays included).

        Two samples fingerprint equally iff every field that reaches a
        model or a split decision is byte-identical — the equality the
        parallel-assembly differential tests assert.
        """
        digest = hashlib.sha256()
        for part in (
            self.sample_id, self.loop_id, self.program_name,
            self.app, self.suite, str(self.label),
        ):
            digest.update(part.encode("utf-8"))
            digest.update(b"\x00")
        for array in (
            self.adjacency, self.x_semantic,
            self.x_structural, self.loop_features,
        ):
            arr = np.ascontiguousarray(np.asarray(array, dtype=np.float64))
            digest.update(repr(arr.shape).encode("utf-8"))
            digest.update(arr.tobytes())
        digest.update("\x1f".join(self.statements).encode("utf-8"))
        digest.update(repr(sorted(self.tool_votes.items())).encode("utf-8"))
        return digest.hexdigest()


@dataclass
class LoopDataset:
    """A list of samples with split bookkeeping."""

    samples: List[LoopSample]
    name: str = "dataset"

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    def __getitem__(self, index: int) -> LoopSample:
        return self.samples[index]

    def labels(self) -> np.ndarray:
        return np.array([s.label for s in self.samples], dtype=np.int64)

    def by_suite(self, suite: str) -> "LoopDataset":
        return LoopDataset(
            [s for s in self.samples if s.suite == suite],
            name=f"{self.name}/{suite}",
        )

    def by_app(self, app: str) -> "LoopDataset":
        return LoopDataset(
            [s for s in self.samples if s.app == app], name=f"{self.name}/{app}"
        )

    def class_counts(self) -> Tuple[int, int]:
        labels = self.labels()
        return int((labels == 0).sum()), int((labels == 1).sum())

    def feature_matrix(self) -> np.ndarray:
        """(n_samples, 7) Table I feature matrix for classical baselines."""
        return np.stack([s.loop_features for s in self.samples])

    def summary(self) -> str:
        neg, pos = self.class_counts()
        suites = sorted({s.suite for s in self.samples})
        return (
            f"LoopDataset({self.name}: {len(self)} samples, "
            f"{pos} parallel / {neg} non-parallel, suites={suites})"
        )

    def fingerprint(self) -> str:
        """Order-sensitive digest over all sample fingerprints.

        Two datasets fingerprint equally iff they hold byte-identical
        samples in the same order (the dataset ``name`` is bookkeeping and
        deliberately excluded).
        """
        digest = hashlib.sha256()
        for sample in self.samples:
            digest.update(sample.fingerprint().encode("ascii"))
        return digest.hexdigest()
