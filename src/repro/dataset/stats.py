"""Dataset statistics and diagnostics.

Reporting helpers used by documentation, the benchmark harness, and anyone
auditing what the dataset pipeline produced: per-template label breakdowns,
label-source agreement (authored vs oracle vs tools), and sub-PEG size
distributions.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.benchsuite.base import AppSpec
from repro.dataset.types import LoopDataset


@dataclass
class DatasetStats:
    """Aggregate statistics of one LoopDataset."""

    n_samples: int
    class_counts: Tuple[int, int]
    suites: Dict[str, int]
    apps: Dict[str, int]
    node_count_quantiles: Tuple[float, float, float]  # p10, p50, p90
    statement_length_quantiles: Tuple[float, float, float]
    tool_agreement: Dict[str, float]   # tool -> fraction matching labels

    def format(self) -> str:
        neg, pos = self.class_counts
        lines = [
            f"samples: {self.n_samples}  ({pos} parallel / {neg} not)",
            f"suites:  {dict(sorted(self.suites.items()))}",
            f"sub-PEG nodes (p10/p50/p90): "
            f"{self.node_count_quantiles[0]:.0f} / "
            f"{self.node_count_quantiles[1]:.0f} / "
            f"{self.node_count_quantiles[2]:.0f}",
            f"statement sequence length (p10/p50/p90): "
            f"{self.statement_length_quantiles[0]:.0f} / "
            f"{self.statement_length_quantiles[1]:.0f} / "
            f"{self.statement_length_quantiles[2]:.0f}",
        ]
        for tool, agreement in sorted(self.tool_agreement.items()):
            lines.append(f"{tool} agreement with labels: {agreement:.3f}")
        return "\n".join(lines)


def dataset_stats(data: LoopDataset) -> DatasetStats:
    """Compute aggregate statistics of ``data``."""
    if not len(data):
        return DatasetStats(0, (0, 0), {}, {}, (0, 0, 0), (0, 0, 0), {})
    suites = Counter(s.suite for s in data)
    apps = Counter(s.app for s in data)
    nodes = np.array([s.num_nodes for s in data], dtype=np.float64)
    lengths = np.array([len(s.statements) for s in data], dtype=np.float64)
    labels = data.labels()

    agreement: Dict[str, float] = {}
    tool_names = set()
    for sample in data:
        tool_names.update(sample.tool_votes)
    for tool in tool_names:
        votes = np.array(
            [s.tool_votes.get(tool, 0) for s in data], dtype=np.int64
        )
        agreement[tool] = float((votes == labels).mean())

    def quantiles(values: np.ndarray) -> Tuple[float, float, float]:
        return tuple(np.percentile(values, (10, 50, 90)))

    return DatasetStats(
        n_samples=len(data),
        class_counts=data.class_counts(),
        suites=dict(suites),
        apps=dict(apps),
        node_count_quantiles=quantiles(nodes),
        statement_length_quantiles=quantiles(lengths),
        tool_agreement=agreement,
    )


def template_label_breakdown(spec: AppSpec) -> Dict[str, Tuple[int, int]]:
    """Per-template (negative, positive) authored-label counts of one app."""
    out: Dict[str, List[int]] = defaultdict(lambda: [0, 0])
    for loop in spec.loops.values():
        out[loop.template][loop.label] += 1
    return {k: (v[0], v[1]) for k, v in sorted(out.items())}


def quirk_report(spec: AppSpec) -> Tuple[int, List[str]]:
    """(number of annotation quirks, their loop ids) for one application."""
    quirks = [
        loop_id
        for loop_id, loop in spec.loops.items()
        if loop.annotation_quirk
    ]
    return len(quirks), sorted(quirks)
