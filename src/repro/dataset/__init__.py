"""Dataset pipeline: loop extraction, augmentation, balancing, splits."""

from repro.dataset.types import LoopSample, LoopDataset
from repro.dataset.extraction import extract_loop_samples
from repro.dataset.transforms import (
    op_substitution,
    loop_order_modification,
    dependence_injection,
    TRANSFORM_NAMES,
    apply_transform,
)
from repro.dataset.assemble import (
    AssembledData,
    DatasetConfig,
    assemble_dataset,
    balanced_subset,
    build_extraction_tasks,
    train_test_split,
)
from repro.dataset.parallel import (
    AssemblyStats,
    DropRecord,
    ExtractionTask,
    WorkerContext,
    run_extraction_tasks,
)
from repro.dataset.stats import (
    DatasetStats,
    dataset_stats,
    template_label_breakdown,
    quirk_report,
)

__all__ = [
    "LoopSample", "LoopDataset",
    "extract_loop_samples",
    "op_substitution", "loop_order_modification", "dependence_injection",
    "TRANSFORM_NAMES", "apply_transform",
    "AssembledData", "DatasetConfig", "assemble_dataset", "balanced_subset",
    "build_extraction_tasks", "train_test_split",
    "AssemblyStats", "DropRecord", "ExtractionTask", "WorkerContext",
    "run_extraction_tasks",
    "DatasetStats", "dataset_stats", "template_label_breakdown", "quirk_report",
]
