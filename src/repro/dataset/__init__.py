"""Dataset pipeline: loop extraction, augmentation, balancing, splits."""

from repro.dataset.types import LoopSample, LoopDataset
from repro.dataset.extraction import extract_loop_samples
from repro.dataset.transforms import (
    op_substitution,
    loop_order_modification,
    dependence_injection,
    TRANSFORM_NAMES,
    apply_transform,
)
from repro.dataset.assemble import (
    DatasetConfig,
    assemble_dataset,
    balanced_subset,
    train_test_split,
)
from repro.dataset.stats import (
    DatasetStats,
    dataset_stats,
    template_label_breakdown,
    quirk_report,
)

__all__ = [
    "LoopSample", "LoopDataset",
    "extract_loop_samples",
    "op_substitution", "loop_order_modification", "dependence_injection",
    "TRANSFORM_NAMES", "apply_transform",
    "DatasetConfig", "assemble_dataset", "balanced_subset", "train_test_split",
    "DatasetStats", "dataset_stats", "template_label_breakdown", "quirk_report",
]
