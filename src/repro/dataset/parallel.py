"""Parallel, fault-tolerant execution of per-variant extraction tasks.

Dataset assembly (Section IV-A/IV-B) is thousands of independent
profile -> PEG -> feature extractions, one per (program variant, compiler
pipeline).  This module turns each of those into an :class:`ExtractionTask`
and runs the task list either in-process (``n_workers=1``, the serial
reference path) or across a :class:`~concurrent.futures.ProcessPoolExecutor`
with per-task timeouts and bounded retries.

Determinism contract — the property the differential suite enforces:

* every task carries its own integer ``seed`` (spawned up front via
  :func:`repro.utils.rng.spawn_seeds` in task-list order), so walk sampling
  never depends on which worker ran the task, in which order, or on how
  many attempts it took — a retry rebuilds an identical generator;
* results are reassembled in task-list order, so the sample stream is
  byte-identical for any ``n_workers``.

Fault tolerance: a task that raises :class:`~repro.errors.InterpreterError`
(a transformed variant that walks out of bounds), fails IR verification, or
exceeds the timeout is retried up to ``max_retries`` times and then — for
optional (oracle-labeled) tasks — dropped with a structured
:class:`DropRecord` instead of silently vanishing.  Required tasks (the
authored-label benchmark pool) still fail loudly.  A crashed worker process
(``BrokenProcessPool``) restarts the pool and re-queues the affected tasks.
"""

from __future__ import annotations

import signal
import threading
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataset.extraction import extract_loop_samples
from repro.dataset.types import LoopSample
from repro.embeddings.anonwalk import AnonymousWalkSpace
from repro.embeddings.inst2vec import Inst2Vec
from repro.errors import DatasetError, InterpreterError, IRError
from repro.ir.ast_nodes import Program
from repro.ir.lowering import lower_program
from repro.ir.passes import apply_pipeline
from repro.ir.verify import verify_program

#: suite name of oracle-labeled augmentation samples
GENERATED_SUITE = "Generated"


# ---------------------------------------------------------------------------
# task / outcome / accounting types
# ---------------------------------------------------------------------------


@dataclass
class ExtractionTask:
    """One profile->PEG->features unit of work: a (program, pipeline) pair.

    ``labels`` carries authored annotations (the benchmark pool); ``None``
    means every executed loop is labeled by the dynamic oracle (the
    generated pool).  ``quirk_loops`` names the loops whose authored label
    is deliberate annotation noise (cf. IS #452) — their samples get
    ``meta["annotation_quirk"]`` so the DS005 cross-validator knows the
    label is untrusted by design.  ``required`` tasks abort assembly on
    persistent failure instead of being dropped.
    """

    index: int
    program: Program
    labels: Optional[Dict[str, int]]
    suite: str
    app: str
    variant: str
    seed: int = 0
    required: bool = False
    quirk_loops: Tuple[str, ...] = ()

    def describe(self) -> str:
        return f"{self.program.name}/{self.variant}"


@dataclass
class TaskOutcome:
    """What one attempt at a task produced."""

    index: int
    samples: List[LoopSample] = field(default_factory=list)
    reason: Optional[str] = None      # None = success
    detail: str = ""

    @property
    def failed(self) -> bool:
        return self.reason is not None


@dataclass
class DropRecord:
    """A variant that was retried and then excluded from the dataset."""

    program_name: str
    app: str
    variant: str
    reason: str                       # "interpreter" | "timeout" | "lowering" | "worker-crash" | "error:<T>" | "lint:<RULE>"
    attempts: int
    detail: str = ""


@dataclass
class WorkerContext:
    """Per-run state shipped to every worker once (via the initializer)."""

    inst2vec: Inst2Vec
    walk_space: AnonymousWalkSpace
    gamma: int
    task_timeout_s: Optional[float] = None


@dataclass
class AssemblyStats:
    """Structured accounting of one assembly run, surfaced by the CLI."""

    n_tasks: int = 0
    n_workers: int = 1
    task_timeout_s: Optional[float] = None
    max_retries: int = 1
    n_retries: int = 0
    wall_seconds: float = 0.0
    setup_seconds: float = 0.0        # apps + inst2vec + task construction (serial)
    extraction_seconds: float = 0.0   # task execution (the parallelized stage)
    suite_counts: Dict[str, int] = field(default_factory=dict)
    app_counts: Dict[str, int] = field(default_factory=dict)
    drops: List[DropRecord] = field(default_factory=list)
    shard_hits: int = 0
    shard_misses: int = 0
    cache_hit: bool = False           # whole-dataset DiskCache entry
    # lint accounting (repro.lint runs inside assembly when config.lint)
    lint_quarantined: int = 0         # samples dropped by ERROR findings
    lint_findings: List[Dict] = field(default_factory=list)  # Finding.to_dict()s
    crossval: Dict[str, int] = field(default_factory=dict)   # DS005 coverage

    def drop_reasons(self) -> Dict[str, int]:
        reasons: Dict[str, int] = {}
        for drop in self.drops:
            reasons[drop.reason] = reasons.get(drop.reason, 0) + 1
        return dict(sorted(reasons.items()))

    def summary(self) -> str:
        lines = [
            f"assembly: {self.n_tasks} tasks on {self.n_workers} worker(s) "
            f"in {self.wall_seconds:.1f}s "
            f"(setup {self.setup_seconds:.1f}s, "
            f"extraction {self.extraction_seconds:.1f}s)",
            f"loops per suite: {dict(sorted(self.suite_counts.items()))}",
        ]
        if self.app_counts:
            lines.append(
                f"loops per app: {dict(sorted(self.app_counts.items()))}"
            )
        if self.drops:
            lines.append(
                f"dropped variants: {len(self.drops)} ({self.drop_reasons()})"
            )
        else:
            lines.append("dropped variants: 0")
        if self.n_retries:
            lines.append(f"task retries: {self.n_retries}")
        if self.lint_findings or self.lint_quarantined:
            lines.append(
                f"lint: {len(self.lint_findings)} finding(s), "
                f"{self.lint_quarantined} sample(s) quarantined"
            )
        if self.crossval:
            lines.append(
                "label crossval: "
                f"{self.crossval.get('judged', 0)} judged, "
                f"{self.crossval.get('provably_parallel', 0)} provably "
                "parallel, "
                f"{self.crossval.get('provably_serial', 0)} provably serial, "
                f"{self.crossval.get('contradictions', 0)} contradiction(s)"
            )
        lines.append(
            f"cache: dataset {'hit' if self.cache_hit else 'miss'}, "
            f"shards {self.shard_hits} hit / {self.shard_misses} miss"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# per-task timeout
# ---------------------------------------------------------------------------


class TaskTimeout(Exception):
    """Raised inside a worker when a task exceeds its wall-clock budget."""


def _can_use_alarm() -> bool:
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def time_limit(seconds: Optional[float]):
    """Bound the wrapped block to ``seconds`` of wall clock where possible.

    Uses ``SIGALRM`` (worker processes run tasks on their main thread), so
    it is a no-op on platforms without it or off the main thread — the
    bounded-retry layer above still contains such tasks, they just cannot
    be interrupted mid-flight.
    """
    if not seconds or seconds <= 0 or not _can_use_alarm():
        yield
        return

    def _raise_timeout(signum, frame):
        raise TaskTimeout(f"task exceeded {seconds:g}s")

    previous = signal.signal(signal.SIGALRM, _raise_timeout)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# ---------------------------------------------------------------------------
# task execution
# ---------------------------------------------------------------------------


def execute_task(task: ExtractionTask, ctx: WorkerContext) -> List[LoopSample]:
    """Run one task: lower, verify, apply the pipeline, extract samples.

    Pure function of (task, ctx): the walk generator is rebuilt from
    ``task.seed`` on every call, so repeated executions — retries, serial
    vs pooled, any worker — produce identical samples.
    """
    rng = np.random.default_rng(task.seed)
    ir = lower_program(task.program)
    verify_program(ir)
    if task.variant != "O0":
        ir = apply_pipeline(ir, task.variant)
    samples = extract_loop_samples(
        task.program,
        task.labels,
        ctx.inst2vec,
        ctx.walk_space,
        suite=task.suite,
        app=task.app,
        gamma=ctx.gamma,
        variant=task.variant,
        ir_program=ir,
        rng=rng,
    )
    for sample in samples:
        if sample.loop_id in task.quirk_loops:
            sample.meta["annotation_quirk"] = True
    return samples


ExecuteFn = Callable[[ExtractionTask, WorkerContext], List[LoopSample]]


def _guarded_attempt(
    execute: ExecuteFn, task: ExtractionTask, ctx: WorkerContext
) -> TaskOutcome:
    """One attempt, with the timeout applied and failures mapped to reasons."""
    try:
        with time_limit(ctx.task_timeout_s):
            return TaskOutcome(task.index, samples=execute(task, ctx))
    except TaskTimeout as exc:
        return TaskOutcome(task.index, reason="timeout", detail=str(exc))
    except InterpreterError as exc:
        return TaskOutcome(task.index, reason="interpreter", detail=str(exc))
    except IRError as exc:
        return TaskOutcome(task.index, reason="lowering", detail=str(exc))
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        return TaskOutcome(
            task.index,
            reason=f"error:{type(exc).__name__}",
            detail=str(exc),
        )


# Worker-process globals, populated once per worker by the pool initializer
# so the (sizeable) inst2vec model is pickled per worker, not per task.
_WORKER_CTX: Optional[WorkerContext] = None
_WORKER_EXECUTE: Optional[ExecuteFn] = None


def _init_worker(ctx: WorkerContext, execute: ExecuteFn) -> None:
    global _WORKER_CTX, _WORKER_EXECUTE
    _WORKER_CTX = ctx
    _WORKER_EXECUTE = execute


def _pool_attempt(task: ExtractionTask) -> TaskOutcome:
    assert _WORKER_CTX is not None and _WORKER_EXECUTE is not None
    return _guarded_attempt(_WORKER_EXECUTE, task, _WORKER_CTX)


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------


@dataclass
class RunResult:
    """Per-task sample lists (task order) plus failure accounting."""

    samples: List[List[LoopSample]]
    drops: List[DropRecord]
    n_retries: int = 0


def run_extraction_tasks(
    tasks: Sequence[ExtractionTask],
    ctx: WorkerContext,
    n_workers: int = 1,
    max_retries: int = 1,
    execute: ExecuteFn = execute_task,
) -> RunResult:
    """Execute ``tasks``, serially or across a process pool.

    Returns one sample list per task, in task order, regardless of worker
    count or completion order.  Failed optional tasks contribute an empty
    list and a :class:`DropRecord`; failed required tasks raise
    :class:`~repro.errors.DatasetError` after their retries are exhausted.
    """
    if n_workers <= 1:
        return _run_serial(tasks, ctx, max_retries, execute)
    return _run_pool(tasks, ctx, n_workers, max_retries, execute)


def _finalize_failure(
    task: ExtractionTask,
    outcome: TaskOutcome,
    attempts: int,
    drops: List[DropRecord],
) -> List[LoopSample]:
    if task.required:
        raise DatasetError(
            f"extraction of required variant {task.describe()} failed after "
            f"{attempts} attempt(s): {outcome.reason} ({outcome.detail})"
        )
    drops.append(
        DropRecord(
            program_name=task.program.name,
            app=task.app,
            variant=task.variant,
            reason=outcome.reason or "unknown",
            attempts=attempts,
            detail=outcome.detail,
        )
    )
    return []


def _run_serial(
    tasks: Sequence[ExtractionTask],
    ctx: WorkerContext,
    max_retries: int,
    execute: ExecuteFn,
) -> RunResult:
    results: List[List[LoopSample]] = []
    drops: List[DropRecord] = []
    n_retries = 0
    for task in tasks:
        attempts = 0
        while True:
            attempts += 1
            outcome = _guarded_attempt(execute, task, ctx)
            if not outcome.failed:
                results.append(outcome.samples)
                break
            if attempts <= max_retries:
                n_retries += 1
                continue
            results.append(_finalize_failure(task, outcome, attempts, drops))
            break
    return RunResult(samples=results, drops=drops, n_retries=n_retries)


def _make_pool(n_workers: int, ctx: WorkerContext, execute: ExecuteFn):
    import multiprocessing as mp

    # fork is markedly cheaper than spawn and the workers hold no locks of
    # ours; fall back to the platform default elsewhere
    mp_context = (
        mp.get_context("fork")
        if "fork" in mp.get_all_start_methods()
        else None
    )
    return ProcessPoolExecutor(
        max_workers=n_workers,
        mp_context=mp_context,
        initializer=_init_worker,
        initargs=(ctx, execute),
    )


def _run_pool(
    tasks: Sequence[ExtractionTask],
    ctx: WorkerContext,
    n_workers: int,
    max_retries: int,
    execute: ExecuteFn,
) -> RunResult:
    results: Dict[int, List[LoopSample]] = {}
    drops_by_index: Dict[int, DropRecord] = {}
    attempts: Dict[int, int] = {task.index: 0 for task in tasks}
    n_retries = 0

    executor = _make_pool(n_workers, ctx, execute)
    try:
        futures = {
            executor.submit(_pool_attempt, task): task for task in tasks
        }
        while futures:
            done, _ = wait(futures, return_when=FIRST_COMPLETED)
            crashed: List[ExtractionTask] = []
            for future in done:
                task = futures.pop(future)
                try:
                    outcome = future.result()
                except BrokenProcessPool:
                    # the pool is gone: every in-flight task must be
                    # re-queued on a fresh pool; the culprit is unknowable,
                    # so each affected task burns one attempt
                    crashed = [task] + list(futures.values())
                    futures = {}
                    break
                attempts[task.index] += 1
                if not outcome.failed:
                    results[task.index] = outcome.samples
                elif attempts[task.index] <= max_retries:
                    n_retries += 1
                    futures[executor.submit(_pool_attempt, task)] = task
                else:
                    drops: List[DropRecord] = []
                    results[task.index] = _finalize_failure(
                        task, outcome, attempts[task.index], drops
                    )
                    if drops:
                        drops_by_index[task.index] = drops[0]
            if crashed:
                executor.shutdown(wait=False, cancel_futures=True)
                executor = _make_pool(n_workers, ctx, execute)
                for task in crashed:
                    attempts[task.index] += 1
                    if attempts[task.index] <= max_retries:
                        n_retries += 1
                        futures[executor.submit(_pool_attempt, task)] = task
                    else:
                        outcome = TaskOutcome(
                            task.index,
                            reason="worker-crash",
                            detail="worker process died (BrokenProcessPool)",
                        )
                        drops = []
                        results[task.index] = _finalize_failure(
                            task, outcome, attempts[task.index], drops
                        )
                        if drops:
                            drops_by_index[task.index] = drops[0]
    finally:
        executor.shutdown(wait=False, cancel_futures=True)

    # serial-identical ordering: samples by task order, drops by task order
    ordered_drops = [
        drops_by_index[task.index]
        for task in tasks
        if task.index in drops_by_index
    ]
    return RunResult(
        samples=[results[task.index] for task in tasks],
        drops=ordered_drops,
        n_retries=n_retries,
    )
