"""Source-level augmentation transforms (Section IV-A, "Transformed dataset").

"We use transformations such as modifying the operation type and loop order
to generate more data."  Three transforms are provided; all operate on a
deep-copied AST, and the pipeline *re-labels every transformed loop with the
dynamic oracle* (the paper relabels with DiscoPoP/Pluto when annotations do
not carry over):

* :func:`op_substitution` — swaps arithmetic operator types in value
  expressions (never in subscripts), usually label-preserving;
* :func:`loop_order_modification` — interchanges perfectly nested loops
  with constant bounds;
* :func:`dependence_injection` — threads a serializing accumulator through
  a loop body and stores it to a fresh array (the accumulator escapes, so
  this is a scan, not a reduction), reliably flipping DoALL loops to
  non-parallelizable — the main source of negative examples for class
  balancing.
"""

from __future__ import annotations

import copy
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.ir import ast_nodes as ast
from repro.ir.ast_nodes import (
    Assign,
    BinOp,
    Const,
    For,
    Load,
    Program,
    Store,
    Var,
)
from repro.utils.rng import RngLike, ensure_rng


def clone_program_ast(program: Program) -> Program:
    """Deep copy of a MiniC program (statements are mutable)."""
    return copy.deepcopy(program)


# ---------------------------------------------------------------------------
# operation-type substitution
# ---------------------------------------------------------------------------

_OP_SWAPS = {"+": "-", "-": "+", "*": "+", "min": "max", "max": "min"}


def op_substitution(
    program: Program, rng: RngLike = 0, rate: float = 0.4
) -> Program:
    """Swap operator types in value expressions with probability ``rate``.

    Subscript expressions are left untouched (changing them would change the
    access pattern, which is the other transforms' job); division is never
    introduced (fault safety).
    """
    rng = ensure_rng(rng)
    out = clone_program_ast(program)

    def rewrite(expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, BinOp):
            lhs = rewrite(expr.lhs)
            rhs = rewrite(expr.rhs)
            op = expr.op
            if op in _OP_SWAPS and rng.random() < rate:
                op = _OP_SWAPS[op]
            return BinOp(op, lhs, rhs)
        if isinstance(expr, Load):
            return Load(expr.array, expr.index)  # subscript untouched
        if isinstance(expr, ast.UnOp):
            return ast.UnOp(expr.op, rewrite(expr.operand))
        if isinstance(expr, ast.CallExpr):
            return ast.CallExpr(expr.fn, tuple(rewrite(a) for a in expr.args))
        return expr

    for fn in out.functions.values():
        for stmt in ast.walk_stmts(fn.body):
            if isinstance(stmt, Assign):
                stmt.expr = rewrite(stmt.expr)
            elif isinstance(stmt, Store):
                stmt.expr = rewrite(stmt.expr)
    out.name = f"{out.name}+ops"
    return out


# ---------------------------------------------------------------------------
# loop interchange
# ---------------------------------------------------------------------------


def _is_perfect_nest(stmt: For) -> bool:
    return (
        len(stmt.body) == 1
        and isinstance(stmt.body[0], For)
        and isinstance(stmt.lo, Const)
        and isinstance(stmt.hi, Const)
        and isinstance(stmt.body[0].lo, Const)
        and isinstance(stmt.body[0].hi, Const)
        and isinstance(stmt.step, Const)
        and isinstance(stmt.body[0].step, Const)
    )


def loop_order_modification(program: Program, rng: RngLike = 0) -> Program:
    """Interchange every perfectly nested constant-bound 2-nest."""
    out = clone_program_ast(program)
    changed = 0
    for fn in out.functions.values():
        for stmt in ast.walk_stmts(fn.body):
            if isinstance(stmt, For) and _is_perfect_nest(stmt):
                inner = stmt.body[0]
                stmt.var, inner.var = inner.var, stmt.var
                stmt.lo, inner.lo = inner.lo, stmt.lo
                stmt.hi, inner.hi = inner.hi, stmt.hi
                stmt.step, inner.step = inner.step, stmt.step
                changed += 1
    out.name = f"{out.name}+order"
    return out


# ---------------------------------------------------------------------------
# dependence injection
# ---------------------------------------------------------------------------


def dependence_injection(
    program: Program, rng: RngLike = 0, fraction: float = 0.6
) -> Program:
    """Serialize a fraction of top-level loops with an escaping accumulator.

    For a chosen loop over ``v``, appends ``carry = carry*0.5 + <first array
    read or v>; sink[v] = carry`` to the body and initializes ``carry``
    before the loop.  The carry chain is a genuine cross-iteration flow
    dependence whose value escapes through ``sink``, so the loop becomes
    non-parallelizable.
    """
    rng = ensure_rng(rng)
    out = clone_program_ast(program)
    serial = 0
    for fn in out.functions.values():
        serial += _inject_in_body(out, fn.body, rng, fraction, serial)
    out.name = f"{out.name}+dep"
    return out


def _inject_in_body(
    program: Program,
    body: List[ast.Stmt],
    rng: np.random.Generator,
    fraction: float,
    serial: int,
) -> int:
    injected = 0
    insertions: List[Tuple[int, For]] = []
    for pos, stmt in enumerate(body):
        if isinstance(stmt, For) and rng.random() < fraction:
            insertions.append((pos, stmt))
    for offset, (pos, loop) in enumerate(insertions):
        tag = serial + injected
        carry = f"carry_{tag}"
        sink = f"sink_{tag}"
        size = max(64, _loop_bound_hint(loop))
        program.arrays[sink] = size
        value: ast.Expr = Var(loop.var)
        for inner in ast.walk_stmts(loop.body):
            for expr in _stmt_value_exprs(inner):
                load = next(
                    (e for e in ast.walk_exprs(expr) if isinstance(e, Load)),
                    None,
                )
                if load is not None:
                    value = load
                    break
            if isinstance(value, Load):
                break
        update = Assign(
            carry,
            BinOp("+", BinOp("*", Var(carry), Const(0.5)), value),
        )
        update.line = loop.line
        guard_idx = BinOp(
            "%", Var(loop.var), Const(float(max(1, min(program.arrays[sink], 64))))
        )
        escape = Store(sink, guard_idx, Var(carry))
        escape.line = loop.line
        loop.body.append(update)
        loop.body.append(escape)
        init = Assign(carry, Const(0.0))
        init.line = loop.line
        body.insert(pos + offset, init)
        injected += 1
    return injected


def _loop_bound_hint(loop: For) -> int:
    if isinstance(loop.hi, Const):
        return int(abs(loop.hi.value)) + 2
    return 64


def _stmt_value_exprs(stmt: ast.Stmt) -> List[ast.Expr]:
    if isinstance(stmt, Assign):
        return [stmt.expr]
    if isinstance(stmt, Store):
        return [stmt.expr]
    return []


TRANSFORM_NAMES = ("ops", "order", "dep")


def apply_transform(program: Program, name: str, rng: RngLike = 0) -> Program:
    """Apply a named transform to a fresh copy of ``program``."""
    if name == "ops":
        return op_substitution(program, rng)
    if name == "order":
        return loop_order_modification(program, rng)
    if name == "dep":
        return dependence_injection(program, rng)
    raise DatasetError(f"unknown transform {name!r}; known: {TRANSFORM_NAMES}")
