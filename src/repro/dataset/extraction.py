"""Loop-sample extraction: program -> profiled PEG -> per-loop LoopSamples.

One extraction pass per program variant runs the full Fig. 2 pipeline:
lower, verify, profile, build the PEG, attach dynamic features, embed nodes
(inst2vec + Table I features; anonymous-walk distributions), and emit one
:class:`LoopSample` per labeled For loop.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.analysis.features import FEATURE_NAMES, attach_node_features, loop_features
from repro.dataset.types import LoopSample
from repro.embeddings.anonwalk import AnonymousWalkSpace, structural_node_features
from repro.embeddings.inst2vec import Inst2Vec
from repro.errors import DatasetError
from repro.ir.ast_nodes import Program
from repro.ir.linear import IRProgram
from repro.ir.lowering import lower_program
from repro.ir.verify import verify_program
from repro.peg.builder import build_peg, loop_node_id
from repro.peg.graph import PEG, EdgeKind
from repro.peg.subgraph import all_loop_subpegs
from repro.profiler.interpreter import profile_program
from repro.profiler.report import ProfileReport
from repro.utils.rng import RngLike, ensure_rng


def extract_loop_samples(
    program: Program,
    labels: Optional[Mapping[str, int]],
    inst2vec: Inst2Vec,
    walk_space: AnonymousWalkSpace,
    suite: str,
    app: str,
    gamma: int = 30,
    variant: str = "O0",
    ir_program: Optional[IRProgram] = None,
    static_only: bool = False,
    rng: RngLike = 0,
    meta: Optional[Dict[str, object]] = None,
) -> List[LoopSample]:
    """Extract one sample per labeled loop of ``program``.

    ``labels`` maps loop_id -> 0/1; loops missing from it are skipped.  When
    ``labels`` is None, every executed For loop is labeled by the dynamic
    oracle (the transformed-dataset path: "we classify it using tools like
    DiscoPoP and Pluto", Section IV-A).
    ``ir_program`` lets callers supply a pre-transformed IR variant (the six
    pipelines); by default the program is lowered fresh.
    ``static_only`` zeroes the dynamic feature columns (the Static-GNN
    baseline's world view).
    """
    rng = ensure_rng(rng)
    if ir_program is None:
        ir_program = lower_program(program)
        verify_program(ir_program)
    report = profile_program(ir_program)
    peg = build_peg(ir_program, report)
    attach_node_features(peg, ir_program, report)

    if labels is None:
        from repro.analysis.oracle import classify_all_loops

        labels = {
            loop_id: int(result.parallel)
            for loop_id, result in classify_all_loops(ir_program, report).items()
            if result.executed and ir_program.all_loops()[loop_id].var
        }

    # tool baselines vote once per program; votes ride along on each sample
    tool_votes = _tool_votes(program, ir_program, report)

    subpegs = all_loop_subpegs(peg)
    samples: List[LoopSample] = []
    for loop_id, label in labels.items():
        if loop_id not in subpegs:
            raise DatasetError(
                f"labeled loop {loop_id!r} not found in program "
                f"{program.name!r} (variant {variant})"
            )
        sample = _sample_from_subpeg(
            subpegs[loop_id],
            loop_id=loop_id,
            label=int(label),
            program=program,
            ir_program=ir_program,
            report=report,
            inst2vec=inst2vec,
            walk_space=walk_space,
            suite=suite,
            app=app,
            gamma=gamma,
            variant=variant,
            static_only=static_only,
            rng=rng,
        )
        sample.tool_votes = {
            tool: votes.get(loop_id, 0) for tool, votes in tool_votes.items()
        }
        if meta:
            sample.meta.update(meta)
        samples.append(sample)
    return samples


def _tool_votes(
    program: Program, ir_program: IRProgram, report: ProfileReport
) -> Dict[str, Dict[str, int]]:
    """Run the three tool baselines once over the program."""
    from repro.tools import AutoParLite, DiscoPoPClassifier, PlutoLite

    votes: Dict[str, Dict[str, int]] = {}
    for tool in (PlutoLite(), AutoParLite(), DiscoPoPClassifier()):
        predictions = tool.predict(program, ir_program, report)
        votes[tool.name] = {k: int(v) for k, v in predictions.items()}
    return votes


def _sample_from_subpeg(
    subpeg: PEG,
    loop_id: str,
    label: int,
    program: Program,
    ir_program: IRProgram,
    report: ProfileReport,
    inst2vec: Inst2Vec,
    walk_space: AnonymousWalkSpace,
    suite: str,
    app: str,
    gamma: int,
    variant: str,
    static_only: bool,
    rng: np.random.Generator,
) -> LoopSample:
    node_ids = list(subpeg.nodes)
    index = {nid: pos for pos, nid in enumerate(node_ids)}
    n = len(node_ids)

    adjacency = np.zeros((n, n))
    for edge in subpeg.edges:
        a, b = index[edge.src], index[edge.dst]
        if a != b:
            adjacency[a, b] = 1.0
            adjacency[b, a] = 1.0

    # semantic features: inst2vec mean + dynamic feature columns
    n_dyn = len(FEATURE_NAMES)
    x_semantic = np.zeros((n, inst2vec.dim + n_dyn))
    for pos, nid in enumerate(node_ids):
        node = subpeg.nodes[nid]
        x_semantic[pos, : inst2vec.dim] = inst2vec.embed_sequence(node.statements)
        if not static_only:
            x_semantic[pos, inst2vec.dim :] = [
                node.features.get(name, 0.0) for name in FEATURE_NAMES
            ]

    walk_ids, x_structural = structural_node_features(
        subpeg, walk_space, gamma=gamma, rng=rng
    )
    if walk_ids != node_ids:  # structural features are ordered by peg.nodes
        remap = [walk_ids.index(nid) for nid in node_ids]
        x_structural = x_structural[remap]

    # flat statement sequence in source-line order (NCC input)
    ordered = sorted(
        (subpeg.nodes[nid] for nid in node_ids),
        key=lambda node: (node.start_line, node.node_id),
    )
    statements: List[str] = []
    for node in ordered:
        statements.extend(node.statements)

    feats = loop_features(ir_program, report, loop_id)

    sample = LoopSample(
        sample_id=f"{program.name}/{variant}/{loop_id}",
        loop_id=loop_id,
        program_name=program.name,
        app=app,
        suite=suite,
        label=label,
        adjacency=adjacency,
        x_semantic=x_semantic,
        x_structural=x_structural,
        statements=statements,
        loop_features=feats.as_array(),
        meta={"variant": variant},
    )
    sample.validate()
    return sample
