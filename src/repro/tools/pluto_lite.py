"""Pluto-like static polyhedral parallelism detector.

Models the decision surface of Pluto (Bondhugula et al.) as used in the
paper's Table III: exact and aggressive on *affine* loop nests (GCD /
Banerjee-style dependence tests, so it proves strided accesses like
``a[2i]`` vs ``a[2i+1]`` independent), but blind outside the polyhedral
model —

* any non-affine subscript (indirect ``a[idx[i]]``, modulo wrap-around)
  makes the loop non-parallelizable;
* function calls are opaque: non-parallelizable;
* scalar writes are only tolerated when provably dead or privatizable by a
  trivial first-access-is-write scan; reductions are *not* recognized
  (classic Pluto has no reduction support), which is exactly why the paper
  measures it at 60.5% on reduction-heavy suites.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir import ast_nodes as ast
from repro.ir.ast_nodes import Program
from repro.ir.linear import IRProgram
from repro.profiler.report import ProfileReport
from repro.tools.affine import AffineForm, gcd_test, normalize_affine
from repro.tools.base import ParallelismTool, ToolPrediction


def _collect_accesses(
    body: List[ast.Stmt],
) -> Tuple[List[Tuple[str, ast.Expr, bool]], List[str], List[str], bool]:
    """(array accesses as (array, index, is_write), scalar writes in order,
    scalar reads in order as flattened pre-order, has_call)."""
    accesses: List[Tuple[str, ast.Expr, bool]] = []
    scalar_events: List[Tuple[str, str]] = []  # ("w"/"r", name) in order
    has_call = False

    def scan_expr(expr: ast.Expr) -> None:
        nonlocal has_call
        for node in ast.walk_exprs(expr):
            if isinstance(node, ast.Load):
                accesses.append((node.array, node.index, False))
            elif isinstance(node, ast.Var):
                scalar_events.append(("r", node.name))
            elif isinstance(node, ast.CallExpr) and not node.is_intrinsic:
                has_call = True

    def scan(stmts: List[ast.Stmt]) -> None:
        nonlocal has_call
        for stmt in stmts:
            if isinstance(stmt, ast.Assign):
                scan_expr(stmt.expr)
                scalar_events.append(("w", stmt.name))
            elif isinstance(stmt, ast.Store):
                scan_expr(stmt.index)
                scan_expr(stmt.expr)
                accesses.append((stmt.array, stmt.index, True))
            elif isinstance(stmt, ast.For):
                scan_expr(stmt.lo)
                scan_expr(stmt.hi)
                scan_expr(stmt.step)
                scalar_events.append(("w", stmt.var))
                scan(stmt.body)
            elif isinstance(stmt, ast.While):
                scan_expr(stmt.cond)
                scan(stmt.body)
            elif isinstance(stmt, ast.If):
                scan_expr(stmt.cond)
                scan(stmt.then_body)
                scan(stmt.else_body)
            elif isinstance(stmt, ast.CallStmt):
                for arg in stmt.args:
                    scan_expr(arg)
                if stmt.fn not in ast.INTRINSICS:
                    has_call = True
            elif isinstance(stmt, ast.Return):
                if stmt.expr is not None:
                    scan_expr(stmt.expr)

    scan(body)
    writes = [n for k, n in scalar_events if k == "w"]
    reads = [n for k, n in scalar_events if k == "r"]
    return accesses, writes, reads, has_call


def _first_event_is_write(body: List[ast.Stmt], var: str) -> bool:
    """Trivial privatization scan: is the first textual access a write?"""
    events: List[Tuple[str, str]] = []

    def scan_expr(expr: ast.Expr) -> None:
        for node in ast.walk_exprs(expr):
            if isinstance(node, ast.Var) and node.name == var:
                events.append(("r", node.name))

    def scan(stmts: List[ast.Stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Assign):
                scan_expr(stmt.expr)
                if stmt.name == var:
                    events.append(("w", var))
            elif isinstance(stmt, ast.Store):
                scan_expr(stmt.index)
                scan_expr(stmt.expr)
            elif isinstance(stmt, ast.For):
                scan_expr(stmt.lo)
                scan_expr(stmt.hi)
                if stmt.var == var:
                    events.append(("w", var))
                scan(stmt.body)
                scan_expr(stmt.step)
            elif isinstance(stmt, ast.While):
                scan_expr(stmt.cond)
                scan(stmt.body)
            elif isinstance(stmt, ast.If):
                scan_expr(stmt.cond)
                scan(stmt.then_body)
                scan(stmt.else_body)
            elif isinstance(stmt, ast.CallStmt):
                for arg in stmt.args:
                    scan_expr(arg)
            elif isinstance(stmt, ast.Return) and stmt.expr is not None:
                scan_expr(stmt.expr)

    scan(stmts=body)
    return bool(events) and events[0][0] == "w"


def _stmt_exprs_of(stmt: ast.Stmt) -> List[ast.Expr]:
    return list(ast.stmt_exprs(stmt))


class PlutoLite(ParallelismTool):
    """Static affine dependence tester."""

    name = "Pluto"

    def classify_program(
        self,
        ast_program: Program,
        ir_program: IRProgram,
        report: Optional[ProfileReport] = None,
    ) -> Dict[str, ToolPrediction]:
        out: Dict[str, ToolPrediction] = {}
        for fn in ast_program.functions.values():
            self._classify_body(fn.body, [], out)
        return out

    def _classify_body(
        self,
        body: List[ast.Stmt],
        enclosing_vars: List[str],
        out: Dict[str, ToolPrediction],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, ast.For):
                loop_id = stmt.loop_id or f"anon@{stmt.line}"
                out[loop_id] = self._classify_loop(stmt, enclosing_vars)
                self._classify_body(
                    stmt.body, enclosing_vars + [stmt.var], out
                )
            elif isinstance(stmt, ast.While):
                self._classify_body(stmt.body, enclosing_vars, out)
            elif isinstance(stmt, ast.If):
                self._classify_body(stmt.then_body, enclosing_vars, out)
                self._classify_body(stmt.else_body, enclosing_vars, out)

    def _classify_loop(
        self, loop: ast.For, enclosing_vars: List[str]
    ) -> ToolPrediction:
        loop_id = loop.loop_id or f"anon@{loop.line}"
        reasons: List[str] = []
        accesses, scalar_writes, scalar_reads, has_call = _collect_accesses(
            loop.body
        )
        if has_call:
            return ToolPrediction(loop_id, False, ["opaque function call"])
        # the polyhedral model requires static control flow: data-dependent
        # ifs / whiles and non-affine intrinsic statements break the SCoP
        for inner in ast.walk_stmts(loop.body):
            if isinstance(inner, (ast.If, ast.While)):
                return ToolPrediction(
                    loop_id, False, ["data-dependent control flow (no SCoP)"]
                )
        for inner in ast.walk_stmts(loop.body):
            for expr in _stmt_exprs_of(inner):
                for node in ast.walk_exprs(expr):
                    if isinstance(node, ast.CallExpr):
                        return ToolPrediction(
                            loop_id, False,
                            ["intrinsic call breaks the SCoP"],
                        )

        loop_vars: Set[str] = set(enclosing_vars) | {loop.var}
        inner_vars = {
            s.var for s in ast.walk_stmts(loop.body) if isinstance(s, ast.For)
        }
        loop_vars |= inner_vars

        # scalar writes: Pluto has no reduction support; only trivially
        # privatizable scalars (first access is a write) are tolerated
        for name in set(scalar_writes):
            if name in inner_vars:
                continue  # inner loop counters are loop-local by construction
            if not _first_event_is_write(loop.body, name):
                reasons.append(f"unhandled scalar recurrence on {name}")

        # affine array dependence testing
        normalized: List[Tuple[str, Optional[AffineForm], bool]] = []
        for array, index, is_write in accesses:
            form = normalize_affine(index, loop_vars)
            normalized.append((array, form, is_write))
            if form is None and is_write:
                reasons.append(f"non-affine write subscript on {array}")
            elif form is None:
                reasons.append(f"non-affine read subscript on {array}")

        if not reasons:
            for pos, (array_a, form_a, write_a) in enumerate(normalized):
                for array_b, form_b, write_b in normalized[pos:]:
                    if array_a != array_b or not (write_a or write_b):
                        continue
                    if self._may_carry(form_a, form_b, loop.var):
                        reasons.append(
                            f"possible loop-carried dependence on {array_a}"
                        )
                        break
                if reasons:
                    break

        return ToolPrediction(loop_id, not reasons, reasons)

    @staticmethod
    def _may_carry(
        form_a: Optional[AffineForm], form_b: Optional[AffineForm], var: str
    ) -> bool:
        if form_a is None or form_b is None:
            return True
        if form_a.structurally_equal(form_b):
            # identical subscripts collide only at equal iterations of var
            # when var moves the address; a var-invariant address (e.g. a[0])
            # collides at every pair of iterations
            return not form_a.involves(var)
        return gcd_test(form_a, form_b, var)
