"""Affine normalization of MiniC index expressions.

An index expression normalizes to ``const + Σ coeff_t · t`` where each term
``t`` is a loop variable, a symbolic scalar parameter, or a *composite*
product of a loop variable and a parameter (the ``i * N + j`` flattened-2D
pattern; real Pluto sees this as the multi-dimensional access ``A[i][j]``).
Anything else — indirect loads, non-constant coefficients of loop variables,
modulo arithmetic — is non-affine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.ir import ast_nodes as ast

# a term is a var name, or a (var, param) composite product
Term = Tuple[str, ...]


@dataclass
class AffineForm:
    """Normalized affine expression: constant + per-term coefficients."""

    const: float = 0.0
    coeffs: Dict[Term, float] = field(default_factory=dict)

    def term_coeff(self, var: str) -> float:
        """Total coefficient structure involving ``var`` (simple term only)."""
        return self.coeffs.get((var,), 0.0)

    def involves(self, var: str) -> bool:
        return any(var in term for term in self.coeffs)

    def structurally_equal(self, other: "AffineForm") -> bool:
        """Same terms and coefficients, same constant."""
        return self.const == other.const and self.coeffs == other.coeffs

    def same_terms(self, other: "AffineForm") -> bool:
        """Same terms and coefficients, constants may differ."""
        return self.coeffs == other.coeffs

    def __add__(self, other: "AffineForm") -> "AffineForm":
        coeffs = dict(self.coeffs)
        for term, coeff in other.coeffs.items():
            coeffs[term] = coeffs.get(term, 0.0) + coeff
        coeffs = {t: c for t, c in coeffs.items() if c != 0.0}
        return AffineForm(self.const + other.const, coeffs)

    def scaled(self, factor: float) -> "AffineForm":
        if factor == 0.0:
            return AffineForm(0.0, {})
        return AffineForm(
            self.const * factor,
            {t: c * factor for t, c in self.coeffs.items()},
        )


def normalize_affine(
    expr: ast.Expr, loop_vars: Set[str]
) -> Optional[AffineForm]:
    """Normalize ``expr``; returns None when non-affine.

    ``loop_vars`` is the set of enclosing loop variables; other variables
    are treated as symbolic parameters (assumed loop-invariant — the tools'
    static view; the dynamic profiler is the arbiter of truth).
    """
    if isinstance(expr, ast.Const):
        return AffineForm(expr.value, {})
    if isinstance(expr, ast.Var):
        return AffineForm(0.0, {(expr.name,): 1.0})
    if isinstance(expr, ast.UnOp):
        if expr.op == "-":
            inner = normalize_affine(expr.operand, loop_vars)
            return None if inner is None else inner.scaled(-1.0)
        return None
    if isinstance(expr, ast.BinOp):
        if expr.op == "+" or expr.op == "-":
            lhs = normalize_affine(expr.lhs, loop_vars)
            rhs = normalize_affine(expr.rhs, loop_vars)
            if lhs is None or rhs is None:
                return None
            return lhs + (rhs if expr.op == "+" else rhs.scaled(-1.0))
        if expr.op == "*":
            return _normalize_product(expr.lhs, expr.rhs, loop_vars)
        return None  # div, mod, comparisons: non-affine index arithmetic
    return None  # Load (indirect), calls


def _normalize_product(
    lhs: ast.Expr, rhs: ast.Expr, loop_vars: Set[str]
) -> Optional[AffineForm]:
    left = normalize_affine(lhs, loop_vars)
    right = normalize_affine(rhs, loop_vars)
    if left is None or right is None:
        return None
    # constant * affine
    if not left.coeffs:
        return right.scaled(left.const)
    if not right.coeffs:
        return left.scaled(right.const)
    # var * param composites: exactly one simple term each side, no consts
    if (
        len(left.coeffs) == 1
        and len(right.coeffs) == 1
        and left.const == 0.0
        and right.const == 0.0
    ):
        (lt, lc), = left.coeffs.items()
        (rt, rc), = right.coeffs.items()
        if len(lt) == 1 and len(rt) == 1:
            l_is_loop = lt[0] in loop_vars
            r_is_loop = rt[0] in loop_vars
            if l_is_loop and r_is_loop:
                return None  # i * j: quadratic
            composite: Term = tuple(sorted((lt[0], rt[0])))
            return AffineForm(0.0, {composite: lc * rc})
    return None


def gcd_test(
    a: AffineForm, b: AffineForm, var: str
) -> bool:
    """GCD dependence test between two affine accesses w.r.t. loop ``var``.

    Returns True when a dependence with differing ``var`` iterations *may*
    exist (conservative), False when provably impossible.

    The equation ``a(i, rest) = b(i', rest')`` with integer unknowns has a
    solution only if gcd of the integer coefficients divides the constant
    difference.  Non-integer or composite mismatches fall back to "may
    depend".
    """
    # terms other than plain (var,) must match structurally to compare
    a_other = {t: c for t, c in a.coeffs.items() if t != (var,)}
    b_other = {t: c for t, c in b.coeffs.items() if t != (var,)}
    coeff_a = a.term_coeff(var)
    coeff_b = b.term_coeff(var)

    if a_other != b_other:
        # different parametric structure: cannot reason, assume dependent —
        # unless neither access involves var at all and structures differ (a
        # fixed cell vs a moving cell can still collide); stay conservative.
        return True

    diff = b.const - a.const
    if coeff_a == 0.0 and coeff_b == 0.0:
        # var does not move either access: same address iff consts equal
        return diff == 0.0
    if not (float(coeff_a).is_integer() and float(coeff_b).is_integer()):
        return True
    if not float(diff).is_integer():
        return False
    import math

    g = math.gcd(int(abs(coeff_a)), int(abs(coeff_b)))
    if g == 0:
        return diff == 0.0
    return int(diff) % g == 0
