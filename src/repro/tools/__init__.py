"""Auto-parallelization tool baselines (Table III comparators).

Each tool implements :class:`ParallelismTool`: given the MiniC AST, the
lowered IR, and (for dynamic tools) the profile report, it predicts loop
parallelizability.  The tools are deliberately *imperfect* models of their
namesakes — their characteristic blind spots (Pluto's affine-only world,
AutoPar's syntactic conservatism, DiscoPoP's call/coverage limits) are what
produce the Table III accuracy spread.
"""

from repro.tools.base import ParallelismTool, ToolPrediction
from repro.tools.affine import AffineForm, normalize_affine
from repro.tools.pluto_lite import PlutoLite
from repro.tools.autopar_lite import AutoParLite
from repro.tools.discopop_cls import DiscoPoPClassifier

__all__ = [
    "ParallelismTool", "ToolPrediction",
    "AffineForm", "normalize_affine",
    "PlutoLite", "AutoParLite", "DiscoPoPClassifier",
]
