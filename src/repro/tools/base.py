"""Common interface for the tool baselines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ir.ast_nodes import Program
from repro.ir.linear import IRProgram
from repro.profiler.report import ProfileReport


@dataclass
class ToolPrediction:
    """One tool's verdict on one loop."""

    loop_id: str
    parallel: bool
    reasons: List[str] = field(default_factory=list)


class ParallelismTool:
    """Base class: predicts parallelizability for every For loop."""

    name = "tool"

    def classify_program(
        self,
        ast_program: Program,
        ir_program: IRProgram,
        report: Optional[ProfileReport] = None,
    ) -> Dict[str, ToolPrediction]:
        """Map loop_id -> prediction for all For loops of the program."""
        raise NotImplementedError

    def predict(
        self,
        ast_program: Program,
        ir_program: IRProgram,
        report: Optional[ProfileReport] = None,
    ) -> Dict[str, bool]:
        """Convenience: loop_id -> bool."""
        return {
            loop_id: pred.parallel
            for loop_id, pred in self.classify_program(
                ast_program, ir_program, report
            ).items()
        }
