"""DiscoPoP-style dynamic parallelism classifier (phases 2-3, simplified).

Uses the same dynamic dependence evidence as the ground-truth oracle —
carried RAW/WAR/WAW at each loop level with reduction and privatization
recognition — but with the real tool's documented limitations, which produce
its sub-100% Table III accuracy:

* **calls**: loops containing user function calls are rejected (DiscoPoP's
  inter-procedural handling is conservative; the paper's false-negative
  anecdote — "loop line 53 in LU.setiv is because of the function call" —
  is exactly this);
* **coverage**: loops never executed under the profiling input cannot be
  analyzed and are rejected;
* **low trip counts**: loops observed for fewer than ``min_iterations``
  iterations have unreliable dependence evidence; DiscoPoP optimistically
  reports them parallelizable (a false-positive source);
* **dependence-count thresholds**: DiscoPoP's pattern-confidence filtering
  discards dependences observed fewer than ``min_dep_count`` times, so a
  dependence that fires only once in the profiled run (a boundary-iteration
  artifact or a single collision) does not block the suggestion — another
  false-positive source the paper's 91.2% NPB number reflects.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.oracle import classify_loop
from repro.ir import ast_nodes as ast
from repro.ir.ast_nodes import Program
from repro.ir.linear import IRProgram, Opcode
from repro.profiler.report import ProfileReport
from repro.profiler.static_info import loop_block_sets
from repro.tools.base import ParallelismTool, ToolPrediction
from repro.errors import ToolError


class DiscoPoPClassifier(ParallelismTool):
    """Dynamic dependence-based classifier with DiscoPoP's blind spots."""

    name = "DiscoPoP"

    def __init__(self, min_iterations: int = 2, min_dep_count: int = 2) -> None:
        self.min_iterations = min_iterations
        self.min_dep_count = min_dep_count

    def classify_program(
        self,
        ast_program: Program,
        ir_program: IRProgram,
        report: Optional[ProfileReport] = None,
    ) -> Dict[str, ToolPrediction]:
        if report is None:
            raise ToolError("DiscoPoP requires a dynamic profile report")
        out: Dict[str, ToolPrediction] = {}
        loops_with_calls = self._loops_containing_calls(ir_program)
        for loop_id, info in ir_program.all_loops().items():
            if not info.var:
                continue  # while loops are not For-loop candidates
            if loop_id in loops_with_calls:
                out[loop_id] = ToolPrediction(
                    loop_id, False, ["function call inside loop body"]
                )
                continue
            stats = report.loop_stats.get(loop_id)
            iterations = stats.total_iterations if stats is not None else 0
            if iterations == 0:
                out[loop_id] = ToolPrediction(
                    loop_id, False, ["no dynamic coverage"]
                )
                continue
            if iterations < self.min_iterations:
                out[loop_id] = ToolPrediction(
                    loop_id,
                    True,
                    [f"only {iterations} iteration(s) observed: optimistic"],
                )
                continue
            filtered = self._filtered_report(report, loop_id)
            # reduction recognition covers the classic +/* (and -) updates;
            # min/max accumulators are not matched — a systematic gap the
            # learned models can exploit, as the paper's Table III does
            oracle = classify_loop(
                ir_program, filtered, loop_id,
                allowed_reduction_ops={"+", "*"},
            )
            out[loop_id] = ToolPrediction(
                loop_id, oracle.parallel, list(oracle.blockers)
            )
        return out

    def _filtered_report(
        self, report: ProfileReport, loop_id: str
    ) -> ProfileReport:
        """Apply the dependence-count threshold for one loop's deps."""
        if self.min_dep_count <= 1:
            return report
        filtered = ProfileReport(
            program_name=report.program_name,
            loop_stats=report.loop_stats,
            exec_counts=report.exec_counts,
        )
        for key, dep in report.deps.items():
            if (
                0 < dep.carried.get(loop_id, 0) < self.min_dep_count
            ):
                continue  # below the confidence threshold: dropped
            filtered.deps[key] = dep
        return filtered

    @staticmethod
    def _loops_containing_calls(ir_program: IRProgram) -> set:
        loops = set()
        for fn in ir_program.functions.values():
            block_sets = loop_block_sets(fn)
            blocks = {b.label: b for b in fn.blocks}
            for loop_id, labels in block_sets.items():
                for label in labels:
                    if any(
                        instr.opcode is Opcode.CALLFN
                        for instr in blocks[label].instrs
                    ):
                        loops.add(loop_id)
                        break
        return loops
