"""ROSE-AutoPar-like static parallelism detector.

AutoPar's characteristic behaviour relative to Pluto: it *does* recognize
scalar reductions and privatizable scalars (its variable-classification
pass), but its array dependence testing is purely syntactic — two accesses
to the same array conflict unless their subscript expressions are
structurally identical and move with the loop.  So it accepts reductions
Pluto rejects, yet rejects provably-disjoint strided accesses (``a[2i]`` vs
``a[2i+1]``) that Pluto's GCD test clears, and is opaque across calls and
indirect subscripts — the mid-band Table III profile.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir import ast_nodes as ast
from repro.ir.ast_nodes import Program
from repro.ir.linear import IRProgram
from repro.profiler.report import ProfileReport
from repro.tools.affine import normalize_affine
from repro.tools.base import ParallelismTool, ToolPrediction
from repro.tools.pluto_lite import _collect_accesses, _first_event_is_write


def _scalar_reductions(body: List[ast.Stmt]) -> Set[str]:
    """Scalars updated as ``x = x op expr`` (op associative) at this level."""
    out: Set[str] = set()
    multi_write: Set[str] = set()
    seen_write: Set[str] = set()
    for stmt in ast.walk_stmts(body):
        if isinstance(stmt, ast.Assign):
            if stmt.name in seen_write:
                multi_write.add(stmt.name)
            seen_write.add(stmt.name)
            if _is_reduction_update(stmt):
                out.add(stmt.name)
    return out - multi_write


def _is_reduction_update(stmt: ast.Assign) -> bool:
    expr = stmt.expr
    if not isinstance(expr, ast.BinOp):
        return False
    if expr.op not in ("+", "-", "*", "min", "max"):
        return False
    # accumulator must appear on exactly one side, alone
    lhs_is_acc = isinstance(expr.lhs, ast.Var) and expr.lhs.name == stmt.name
    rhs_is_acc = isinstance(expr.rhs, ast.Var) and expr.rhs.name == stmt.name
    if lhs_is_acc == rhs_is_acc:
        return False
    if expr.op == "-" and not lhs_is_acc:
        return False
    other = expr.rhs if lhs_is_acc else expr.lhs
    return not any(
        isinstance(n, ast.Var) and n.name == stmt.name
        for n in ast.walk_exprs(other)
    )


class AutoParLite(ParallelismTool):
    """Syntactic static analyzer with reduction/privatization recognition."""

    name = "AutoPar"

    def classify_program(
        self,
        ast_program: Program,
        ir_program: IRProgram,
        report: Optional[ProfileReport] = None,
    ) -> Dict[str, ToolPrediction]:
        out: Dict[str, ToolPrediction] = {}
        for fn in ast_program.functions.values():
            self._walk(fn.body, [], out)
        return out

    def _walk(
        self,
        body: List[ast.Stmt],
        enclosing_vars: List[str],
        out: Dict[str, ToolPrediction],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, ast.For):
                loop_id = stmt.loop_id or f"anon@{stmt.line}"
                out[loop_id] = self._classify_loop(stmt, enclosing_vars)
                self._walk(stmt.body, enclosing_vars + [stmt.var], out)
            elif isinstance(stmt, ast.While):
                self._walk(stmt.body, enclosing_vars, out)
            elif isinstance(stmt, ast.If):
                self._walk(stmt.then_body, enclosing_vars, out)
                self._walk(stmt.else_body, enclosing_vars, out)

    def _classify_loop(
        self, loop: ast.For, enclosing_vars: List[str]
    ) -> ToolPrediction:
        loop_id = loop.loop_id or f"anon@{loop.line}"
        reasons: List[str] = []
        accesses, scalar_writes, _reads, has_call = _collect_accesses(loop.body)
        if has_call:
            return ToolPrediction(loop_id, False, ["call prevents analysis"])

        inner_vars = {
            s.var for s in ast.walk_stmts(loop.body) if isinstance(s, ast.For)
        }
        reductions = _scalar_reductions(loop.body)

        # alias conservatism: without pointer annotations (the real tool
        # needs annotation files for this), a statement mixing one written
        # array with reads from two or more other arrays exceeds what the
        # syntactic dependence graph can discharge
        written_arrays = {arr for arr, _i, w in accesses if w}
        read_arrays = {arr for arr, _i, w in accesses if not w}
        if written_arrays and len(read_arrays - written_arrays) >= 2:
            reasons.append(
                "possible aliasing among "
                f"{sorted(written_arrays | read_arrays)}"
            )

        # variable classification: reduction > private > shared-conflict
        for name in set(scalar_writes):
            if name in inner_vars or name in reductions:
                continue
            if not _first_event_is_write(loop.body, name):
                reasons.append(f"shared scalar {name} not privatizable")

        loop_vars = set(enclosing_vars) | {loop.var} | inner_vars
        if not reasons:
            reasons.extend(self._array_conflicts(accesses, loop.var, loop_vars))
        return ToolPrediction(loop_id, not reasons, reasons)

    def _array_conflicts(
        self,
        accesses: List[Tuple[str, ast.Expr, bool]],
        loop_var: str,
        loop_vars: Set[str],
    ) -> List[str]:
        reasons: List[str] = []
        normalized = []
        for array, index, is_write in accesses:
            form = normalize_affine(index, loop_vars)
            normalized.append((array, form, is_write))
        for pos, (array_a, form_a, write_a) in enumerate(normalized):
            for array_b, form_b, write_b in normalized[pos:]:
                if array_a != array_b or not (write_a or write_b):
                    continue
                # syntactic test only: identical subscripts that move with
                # the loop are independent; anything else conflicts
                if form_a is None or form_b is None:
                    reasons.append(f"unanalyzable subscript on {array_a}")
                    return reasons
                if form_a.structurally_equal(form_b) and form_a.involves(
                    loop_var
                ):
                    continue
                reasons.append(
                    f"syntactically different accesses to {array_a}"
                )
                return reasons
        return reasons
