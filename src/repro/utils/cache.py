"""On-disk caching for expensive artefacts (datasets, trained embeddings).

The dataset pipeline profiles thousands of interpreted programs; caching the
assembled dataset keyed by a stable configuration hash keeps repeated test and
benchmark runs fast without compromising reproducibility.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable, Optional


def stable_hash(obj: Any) -> str:
    """Deterministic hex digest of a JSON-serializable configuration object."""
    payload = json.dumps(obj, sort_keys=True, default=_json_default)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def _json_default(obj: Any) -> Any:
    if hasattr(obj, "__dict__"):
        return {"__class__": type(obj).__name__, **vars(obj)}
    return repr(obj)


class DiskCache:
    """Pickle-backed cache directory with atomic writes.

    Writes go to a temporary file first and are renamed into place so a
    crashed process never leaves a truncated cache entry behind; reads
    treat any undecodable entry as a miss and remove it (see :meth:`get`).
    Keys are caller-chosen strings — pair with :func:`stable_hash` for
    content-addressed entries, as :class:`repro.runtime.FeatureCache` does.
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        if root is None:
            root = os.environ.get(
                "REPRO_CACHE_DIR", os.path.join(tempfile.gettempdir(), "repro-cache")
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def get(self, key: str) -> Optional[Any]:
        """Cached value for ``key``, or None on a miss.

        A corrupt or truncated cache file — however it fails to unpickle —
        is treated as a miss: the bad file is deleted so the next
        :meth:`put` (or :meth:`get_or_compute`) overwrites it cleanly
        instead of every reader re-hitting the same broken entry.  This is
        what lets the inference runtime reuse the cache safely: a crashed
        or version-skewed writer can never wedge later readers.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except Exception:
            # unpickling arbitrary corruption can raise nearly anything
            # (UnpicklingError, EOFError, AttributeError, ImportError,
            # ValueError, UnicodeDecodeError, ...): any failure means the
            # entry is unusable
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, key: str, value: Any) -> None:
        path = self.path_for(key)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def get_or_compute(self, key: str, fn: Callable[[], Any]) -> Any:
        cached = self.get(key)
        if cached is not None:
            return cached
        value = fn()
        self.put(key, value)
        return value

    def clear(self) -> None:
        for path in self.root.glob("*.pkl"):
            path.unlink()
