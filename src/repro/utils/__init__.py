"""Shared utilities: deterministic RNG handling, timing, and caching."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Timer
from repro.utils.cache import DiskCache, stable_hash

__all__ = ["ensure_rng", "spawn_rngs", "Timer", "DiskCache", "stable_hash"]
