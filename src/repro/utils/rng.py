"""Deterministic random-number handling.

Every stochastic component in the library accepts either a seed or a
:class:`numpy.random.Generator`.  This module centralizes the coercion so all
experiments are reproducible from a single integer seed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` produces a generator seeded from fresh OS entropy; an ``int`` is
    used as seed; an existing generator is returned unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot build a Generator from {type(rng).__name__}")


def spawn_seeds(rng: RngLike, n: int) -> List[int]:
    """Split ``rng`` into ``n`` independent integer seeds.

    Seeds are plain ints so they can cross process boundaries (the parallel
    dataset assembler ships one per extraction task) and so a retried task
    can rebuild an *identical* generator instead of resuming a mutated one.
    """
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [int(s) for s in seeds]


def spawn_rngs(rng: RngLike, n: int) -> Sequence[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators.

    Uses the SeedSequence spawning protocol so children are statistically
    independent regardless of how the parent is later used.
    """
    return [np.random.default_rng(s) for s in spawn_seeds(rng, n)]
