"""Lightweight wall-clock timing helper used by the benchmark harness."""

from __future__ import annotations

import time
from typing import Dict, List, Optional


class Timer:
    """Accumulating context-manager timer.

    Example::

        timer = Timer()
        with timer.section("profiling"):
            ...
        print(timer.totals["profiling"])
    """

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        self._stack: List[tuple] = []

    def section(self, name: str) -> "_Section":
        return _Section(self, name)

    def add(self, name: str, seconds: float) -> None:
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    def mean(self, name: str) -> Optional[float]:
        if name not in self.totals:
            return None
        return self.totals[name] / max(1, self.counts[name])

    def report(self) -> str:
        lines = []
        for name in sorted(self.totals):
            lines.append(
                f"{name:30s} total={self.totals[name]:9.3f}s "
                f"n={self.counts[name]:5d} mean={self.mean(name):9.5f}s"
            )
        return "\n".join(lines)


class _Section:
    def __init__(self, timer: Timer, name: str) -> None:
        self._timer = timer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Section":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._timer.add(self._name, time.perf_counter() - self._start)
