"""Figure 7: training loss and accuracy curves on the generated dataset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.train.trainer import TrainingCurves, train_model
from repro.experiments.common import ExperimentContext, make_mvgnn_adapter


@dataclass
class Fig7Result:
    curves: TrainingCurves

    def format(self) -> str:
        lines = [f"{'epoch':>6}{'loss':>10}{'train acc':>11}{'test acc':>10}"]
        series = zip(
            self.curves.epochs,
            self.curves.loss,
            self.curves.train_accuracy,
            self.curves.test_accuracy
            or [float("nan")] * len(self.curves.epochs),
        )
        for epoch, loss, train_acc, test_acc in series:
            lines.append(
                f"{epoch:>6}{loss:>10.4f}{train_acc:>11.3f}{test_acc:>10.3f}"
            )
        lines.append(
            "shape check: loss monotonically decreasing trend, accuracy "
            "rising toward a plateau (paper Fig. 7)"
        )
        return "\n".join(lines)

    def loss_decreased(self) -> bool:
        loss = self.curves.loss
        return len(loss) >= 2 and loss[-1] < loss[0]

    def accuracy_increased(self) -> bool:
        acc = self.curves.train_accuracy
        return len(acc) >= 2 and acc[-1] > acc[0]


def fig7_training_curves(
    ctx: ExperimentContext, verbose: bool = False
) -> Fig7Result:
    """Train MV-GNN recording per-epoch loss/accuracy on the generated data."""
    adapter = make_mvgnn_adapter(ctx)
    curves = train_model(
        adapter,
        ctx.data.train,
        ctx.train_config,
        test_data=ctx.data.test,
        verbose=verbose,
    )
    return Fig7Result(curves=curves)
