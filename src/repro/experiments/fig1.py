"""Figure 1 (as a runnable experiment): stencil vs reduction patterns are
separable from graph structure alone.

The paper's Fig. 1 argues that for parallelization patterns like stencil and
reduction, "graph structure patterns can be easily captured for
classification".  We make that quantitative: anonymous-walk distributions of
stencil sub-PEGs and reduction sub-PEGs form well-separated clusters —
the between-class distance exceeds the within-class spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.benchsuite.templates import TEMPLATES, TemplateContext
from repro.embeddings.anonwalk import AnonymousWalkSpace
from repro.ir.builder import ProgramBuilder
from repro.ir.lowering import lower_program
from repro.utils.rng import ensure_rng


@dataclass
class Fig1Result:
    within_stencil: float
    within_reduction: float
    between: float

    @property
    def separable(self) -> bool:
        return self.between > max(self.within_stencil, self.within_reduction)

    def format(self) -> str:
        return (
            f"anonymous-walk distribution distances (L1):\n"
            f"  within stencil loops    {self.within_stencil:.3f}\n"
            f"  within reduction loops  {self.within_reduction:.3f}\n"
            f"  between the two classes {self.between:.3f}\n"
            f"  separable: {self.separable} (paper Fig. 1: structure alone "
            f"distinguishes these patterns)"
        )


def _pattern_distributions(
    template: str, n_instances: int, walk_space: AnonymousWalkSpace, seed: int
) -> List[np.ndarray]:
    """Anonymous-walk distributions of each instance's per-iteration
    dependence graph (the granularity of the paper's Fig. 1 diagrams)."""
    from repro.analysis.critical_path import dependence_dag
    from repro.profiler.interpreter import profile_program

    rng = ensure_rng(seed)
    distributions: List[np.ndarray] = []
    for instance in range(n_instances):
        pb = ProgramBuilder(f"fig1_{template}_{instance}")
        with pb.function("main") as fb:
            ctx = TemplateContext(pb, fb, rng)
            TEMPLATES[template][0](ctx)
        program = pb.build()
        ir = lower_program(program)
        report = profile_program(ir)
        loop_id = ctx.emitted[-1][0]
        nodes, adjacency = dependence_dag(
            ir.function("main"), loop_id, report
        )
        # undirected neighbor lists over the dependence DAG
        neighbors = {node: [] for node in nodes}
        for src, dsts in adjacency.items():
            for dst in dsts:
                if src != dst:
                    neighbors[src].append(dst)
                    neighbors[dst].append(src)
        dist = np.zeros(walk_space.num_types)
        draws = rng.random((len(nodes) * 20, walk_space.length))
        row = 0
        for node in nodes:
            for _ in range(20):
                walk = [node]
                current = node
                for step in range(walk_space.length):
                    nbrs = neighbors[current]
                    if not nbrs:
                        break
                    current = nbrs[int(draws[row, step] * len(nbrs))]
                    walk.append(current)
                dist[walk_space.type_of(walk)] += 1.0
                row += 1
        distributions.append(dist / max(dist.sum(), 1.0))
    return distributions


def _mean_pairwise_l1(group_a: List[np.ndarray], group_b: List[np.ndarray]) -> float:
    distances = [
        float(np.abs(a - b).sum())
        for pos, a in enumerate(group_a)
        for b in (group_b[pos + 1 :] if group_a is group_b else group_b)
    ]
    return float(np.mean(distances)) if distances else 0.0


def fig1_structural_patterns(
    n_instances: int = 8, walk_length: int = 4, seed: int = 5
) -> Fig1Result:
    """Measure structural separability of stencil vs reduction loops."""
    space = AnonymousWalkSpace(walk_length)
    stencil = _pattern_distributions("stencil3", n_instances, space, seed)
    reduction = _pattern_distributions(
        "reduction_sum", n_instances, space, seed + 1
    )
    return Fig1Result(
        within_stencil=_mean_pairwise_l1(stencil, stencil),
        within_reduction=_mean_pairwise_l1(reduction, reduction),
        between=_mean_pairwise_l1(stencil, reduction),
    )
