"""Table IV: NPB case study — identified parallelizable loops per application.

The paper runs the trained MV-GNN over all 787 NPB loops and reports how
many it identifies as parallelizable per application (787 -> 731 overall).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dataset.types import LoopDataset
from repro.train.adapters import ModelAdapter
from repro.train.eval import count_identified_parallel
from repro.train.trainer import train_model
from repro.experiments.common import ExperimentContext, make_mvgnn_adapter

#: Table IV of the paper: app -> (loops, identified parallelizable).
PAPER_TABLE_IV: Dict[str, Tuple[int, int]] = {
    "BT": (184, 176), "SP": (252, 232), "LU": (173, 163), "IS": (25, 20),
    "EP": (10, 9), "CG": (32, 28), "MG": (74, 68), "FT": (37, 35),
}

_NPB_APPS = ("BT", "SP", "LU", "IS", "EP", "CG", "MG", "FT")


@dataclass
class Table4Row:
    app: str
    loops: int
    identified: int
    paper_loops: int
    paper_identified: int


@dataclass
class Table4Result:
    rows: List[Table4Row] = field(default_factory=list)

    def totals(self) -> Tuple[int, int]:
        return (
            sum(r.loops for r in self.rows),
            sum(r.identified for r in self.rows),
        )

    def format(self) -> str:
        lines = [
            f"{'Benchmark':<10}{'Loops':>7}{'Identified':>12}"
            f"{'Paper loops':>13}{'Paper ident.':>14}"
        ]
        for row in self.rows:
            lines.append(
                f"{row.app:<10}{row.loops:>7}{row.identified:>12}"
                f"{row.paper_loops:>13}{row.paper_identified:>14}"
            )
        loops, ident = self.totals()
        lines.append(f"{'Total':<10}{loops:>7}{ident:>12}{787:>13}{731:>14}")
        return "\n".join(lines)


def table4_npb_case_study(
    ctx: ExperimentContext,
    adapter: Optional[ModelAdapter] = None,
    verbose: bool = False,
) -> Table4Result:
    """Train MV-GNN (unless a trained adapter is given) and count identified
    parallelizable loops over the full NPB benchmark population."""
    if adapter is None:
        adapter = make_mvgnn_adapter(ctx)
        train_model(adapter, ctx.data.train, ctx.train_config, verbose=verbose)

    result = Table4Result()
    for app in _NPB_APPS:
        data = ctx.data.benchmark.by_app(app)
        identified = count_identified_parallel(adapter, data)
        paper_loops, paper_identified = PAPER_TABLE_IV[app]
        result.rows.append(
            Table4Row(app, len(data), identified, paper_loops, paper_identified)
        )
    return result
