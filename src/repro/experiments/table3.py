"""Table III: accuracy of every model and tool per evaluation suite.

Reproduces the full grid: MV-GNN, Static GNN, SVM, Decision Tree, AdaBoost,
NCC (models trained on the balanced train split) and Pluto / AutoPar /
DiscoPoP (votes recorded during extraction), each evaluated on the held-out
loops of NPB, PolyBench, BOTS, and the Generated test split.

Paper reference values are attached to every row so the benchmark harness
can print measured-vs-paper side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dataset.types import LoopDataset
from repro.mlbase import AdaBoost, DecisionTree, KernelSVM, StandardScaler
from repro.mlbase.metrics import accuracy
from repro.train.adapters import ModelAdapter
from repro.train.eval import evaluate_adapter, evaluate_tool_votes
from repro.train.trainer import train_model
from repro.experiments.common import (
    ExperimentContext,
    make_mvgnn_adapter,
    make_ncc_adapter,
    make_static_gnn_adapter,
)

#: Table III of the paper (accuracy %, per suite and method).
PAPER_TABLE_III: Dict[str, Dict[str, float]] = {
    "NPB": {
        "MV-GNN": 92.6, "Static GNN": 89.3, "SVM": 85.0,
        "Decision Tree": 85.0, "AdaBoost": 92.0, "NCC": 87.3,
        "Pluto": 60.5, "AutoPar": 74.8, "DiscoPoP": 91.2,
    },
    "PolyBench": {
        "MV-GNN": 89.4, "NCC": 76.5, "Pluto": 82.5,
        "AutoPar": 76.7, "DiscoPoP": 87.4,
    },
    "BOTS": {
        "MV-GNN": 82.9, "NCC": 72.4, "Pluto": 60.5,
        "AutoPar": 74.8, "DiscoPoP": 78.9,
    },
    "Generated": {
        "MV-GNN": 88.7, "NCC": 62.9, "Pluto": 60.5,
        "AutoPar": 64.8, "DiscoPoP": 80.1,
    },
}

_SUITES = ("NPB", "PolyBench", "BOTS", "Generated")


@dataclass
class Table3Row:
    suite: str
    method: str
    accuracy: float                  # measured, in percent
    paper: Optional[float]           # paper-reported, in percent


@dataclass
class Table3Result:
    rows: List[Table3Row] = field(default_factory=list)

    def get(self, suite: str, method: str) -> Optional[float]:
        for row in self.rows:
            if row.suite == suite and row.method == method:
                return row.accuracy
        return None

    def format(self) -> str:
        lines = [f"{'Benchmark':<12}{'Model/Tool':<16}{'Acc(%)':>8}{'Paper':>8}"]
        for row in self.rows:
            paper = f"{row.paper:.1f}" if row.paper is not None else "-"
            lines.append(
                f"{row.suite:<12}{row.method:<16}{row.accuracy:>8.1f}{paper:>8}"
            )
        return "\n".join(lines)


def _eval_sets(ctx: ExperimentContext) -> Dict[str, LoopDataset]:
    sets = {}
    for suite in ("NPB", "PolyBench", "BOTS"):
        sets[suite] = ctx.data.benchmark_eval(suite)
    sets["Generated"] = ctx.data.test_suite("Generated")
    return sets


def _classical_models(ctx: ExperimentContext):
    seed = ctx.seed
    return {
        "SVM": KernelSVM(gamma=0.5, epochs=80, rng=seed),
        "Decision Tree": DecisionTree(max_depth=6),
        "AdaBoost": AdaBoost(n_estimators=60, max_depth=2),
    }


def table3_accuracy(
    ctx: ExperimentContext,
    include_ncc: bool = True,
    verbose: bool = False,
) -> Table3Result:
    """Train every model and fill the Table III grid."""
    eval_sets = _eval_sets(ctx)
    train = ctx.data.train
    result = Table3Result()

    # -- GNN models --------------------------------------------------------
    adapters: Dict[str, ModelAdapter] = {
        "MV-GNN": make_mvgnn_adapter(ctx),
        "Static GNN": make_static_gnn_adapter(ctx),
    }
    if include_ncc:
        adapters["NCC"] = make_ncc_adapter(ctx)
    trained: Dict[str, ModelAdapter] = {}
    for name, adapter in adapters.items():
        train_model(adapter, train, ctx.train_config, verbose=verbose)
        trained[name] = adapter

    # -- classical baselines on Table I features -----------------------------------
    scaler = StandardScaler()
    x_train = scaler.fit_transform(train.feature_matrix())
    y_train = train.labels()
    classical = _classical_models(ctx)
    for model in classical.values():
        model.fit(x_train, y_train)

    # -- fill the grid ----------------------------------------------------------
    for suite in _SUITES:
        data = eval_sets[suite]
        if not len(data):
            continue
        paper_row = PAPER_TABLE_III.get(suite, {})
        for name, adapter in trained.items():
            result.rows.append(
                Table3Row(
                    suite,
                    name,
                    100.0 * evaluate_adapter(adapter, data),
                    paper_row.get(name),
                )
            )
        x_eval = scaler.transform(data.feature_matrix())
        y_eval = data.labels()
        for name, model in classical.items():
            result.rows.append(
                Table3Row(
                    suite,
                    name,
                    100.0 * accuracy(y_eval, model.predict(x_eval)),
                    paper_row.get(name),
                )
            )
        for tool in ("Pluto", "AutoPar", "DiscoPoP"):
            result.rows.append(
                Table3Row(
                    suite,
                    tool,
                    100.0 * evaluate_tool_votes(tool, data),
                    paper_row.get(tool),
                )
            )
    return result
