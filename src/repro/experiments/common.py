"""Shared experiment plumbing: dataset context + configured adapters.

``REPRO_FULL=1`` in the environment switches every experiment from the
CPU-friendly fast configuration to the paper-fidelity one (3100+3100
dataset, six pipelines, 200 epochs, SortPooling k=135) — hours of CPU time;
EXPERIMENTS.md records results from both.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.dataset.assemble import AssembledData, DatasetConfig, assemble_dataset
from repro.models.dgcnn import DGCNNConfig
from repro.models.mvgnn import MVGNNConfig
from repro.models.ncc import NCCConfig
from repro.train.adapters import (
    MVGNNAdapter,
    NCCAdapter,
    SingleViewAdapter,
    StaticGNNAdapter,
)
from repro.train.config import TrainConfig
from repro.utils.rng import RngLike


def full_mode() -> bool:
    return os.environ.get("REPRO_FULL", "0") not in ("0", "", "false")


@dataclass
class ExperimentContext:
    """Dataset + configs shared by all experiments in one run."""

    data: AssembledData
    train_config: TrainConfig
    seed: int = 17

    @property
    def walk_types(self) -> int:
        return self.data.walk_space.num_types

    @property
    def semantic_dim(self) -> int:
        return self.data.config.semantic_dim


def build_context(
    seed: int = 17,
    dataset_config: Optional[DatasetConfig] = None,
    train_config: Optional[TrainConfig] = None,
) -> ExperimentContext:
    if dataset_config is None:
        dataset_config = (
            DatasetConfig() if full_mode() else DatasetConfig.fast()
        )
    if train_config is None:
        train_config = TrainConfig.paper() if full_mode() else TrainConfig.fast()
    data = assemble_dataset(dataset_config)
    return ExperimentContext(data=data, train_config=train_config, seed=seed)


def _dgcnn_config(ctx: ExperimentContext, in_features: int) -> DGCNNConfig:
    return DGCNNConfig(
        in_features=in_features,
        sortpool_k=ctx.train_config.sortpool_k,
        # paper uses 0.5 on a 6200-example dataset; the fast configuration
        # trains on far fewer examples and needs less regularization
        dropout=0.5 if full_mode() else 0.3,
    )


def make_mvgnn_adapter(ctx: ExperimentContext, rng: RngLike = None) -> MVGNNAdapter:
    config = MVGNNConfig(
        semantic_features=ctx.semantic_dim,
        walk_types=ctx.walk_types,
        node_view=_dgcnn_config(ctx, ctx.semantic_dim),
        struct_view=_dgcnn_config(ctx, 200),
        temperature=ctx.train_config.temperature,
    )
    return MVGNNAdapter(config, rng=rng if rng is not None else ctx.seed)


def make_static_gnn_adapter(
    ctx: ExperimentContext, rng: RngLike = None
) -> StaticGNNAdapter:
    return StaticGNNAdapter(
        _dgcnn_config(ctx, ctx.semantic_dim),
        rng=rng if rng is not None else ctx.seed + 1,
    )


def make_ncc_adapter(ctx: ExperimentContext, rng: RngLike = None) -> NCCAdapter:
    config = NCCConfig(
        embedding_dim=ctx.data.inst2vec.dim,
        lstm_units=200 if full_mode() else 64,
        max_length=160 if full_mode() else 48,
    )
    return NCCAdapter(
        config, ctx.data.inst2vec, rng=rng if rng is not None else ctx.seed + 2
    )


def make_view_adapters(
    ctx: ExperimentContext, rng: RngLike = None
) -> Tuple[SingleViewAdapter, SingleViewAdapter]:
    base = ctx.seed if rng is None else rng
    node = SingleViewAdapter(
        "node", _dgcnn_config(ctx, ctx.semantic_dim), rng=base
    )
    struct = SingleViewAdapter(
        "structural",
        _dgcnn_config(ctx, 64),
        walk_types=ctx.walk_types,
        rng=base,
    )
    return node, struct
