"""Table II: statistics of evaluated datasets (loop counts per application)."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.benchsuite.registry import (
    SUITE_OF_APP,
    TABLE_II_COUNTS,
    build_all_apps,
)


def table2_dataset_statistics() -> List[Tuple[str, str, int, int]]:
    """Rows of (application, benchmark suite, built loop count, paper count).

    Built counts are measured from the composed applications, not read from
    the constant table, so this doubles as a conformance check.
    """
    rows: List[Tuple[str, str, int, int]] = []
    for app in build_all_apps():
        rows.append(
            (app.name, app.suite, app.loop_count, TABLE_II_COUNTS[app.name])
        )
    rows.append(
        (
            "Total",
            "",
            sum(r[2] for r in rows),
            sum(TABLE_II_COUNTS.values()),
        )
    )
    return rows


def format_table2(rows: List[Tuple[str, str, int, int]]) -> str:
    lines = [f"{'Application':<12}{'Benchmark':<12}{'Loops #':>8}{'Paper':>8}"]
    for app, suite, built, paper in rows:
        lines.append(f"{app:<12}{suite:<12}{built:>8}{paper:>8}")
    return "\n".join(lines)
