"""Figure 8: importance of the two views per benchmark suite.

Paper findings to reproduce in shape: the views agree broadly (multi-view
beats either alone) and the node-feature view is the more important one on
all three suites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.train.importance import view_importance
from repro.train.trainer import train_model
from repro.experiments.common import (
    ExperimentContext,
    make_mvgnn_adapter,
    make_view_adapters,
)

#: Approximate values read off the paper's Fig. 8 bar chart.
PAPER_FIG_8: Dict[str, Dict[str, float]] = {
    "NPB": {"IMP_n": 0.96, "IMP_s": 0.88},
    "PolyBench": {"IMP_n": 0.94, "IMP_s": 0.90},
    "BOTS": {"IMP_n": 0.90, "IMP_s": 0.82},
}


@dataclass
class Fig8Result:
    importance: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def format(self) -> str:
        lines = [
            f"{'Benchmark':<12}{'IMP_n':>8}{'IMP_s':>8}"
            f"{'paper n':>9}{'paper s':>9}"
        ]
        for suite, values in self.importance.items():
            paper = PAPER_FIG_8.get(suite, {})
            lines.append(
                f"{suite:<12}{values['IMP_n']:>8.2f}{values['IMP_s']:>8.2f}"
                f"{paper.get('IMP_n', float('nan')):>9.2f}"
                f"{paper.get('IMP_s', float('nan')):>9.2f}"
            )
        return "\n".join(lines)


def fig8_view_importance(
    ctx: ExperimentContext, verbose: bool = False
) -> Fig8Result:
    """Train the multi-view model and both single-view models, then compute
    IMP_n / IMP_s per suite."""
    multi = make_mvgnn_adapter(ctx)
    node_view, struct_view = make_view_adapters(ctx)
    for adapter in (multi, node_view, struct_view):
        train_model(adapter, ctx.data.train, ctx.train_config, verbose=verbose)

    suites = {
        suite: ctx.data.benchmark.by_suite(suite)
        for suite in ("NPB", "PolyBench", "BOTS")
    }
    return Fig8Result(
        importance=view_importance(multi, node_view, struct_view, suites)
    )
