"""Experiment drivers: one module per table/figure of the paper."""

from repro.experiments.common import (
    ExperimentContext,
    build_context,
    make_mvgnn_adapter,
    make_static_gnn_adapter,
    make_ncc_adapter,
    make_view_adapters,
)
from repro.experiments.table2 import table2_dataset_statistics
from repro.experiments.table3 import table3_accuracy
from repro.experiments.table4 import table4_npb_case_study
from repro.experiments.fig7 import fig7_training_curves
from repro.experiments.fig8 import fig8_view_importance
from repro.experiments.fig1 import fig1_structural_patterns

__all__ = [
    "ExperimentContext", "build_context",
    "make_mvgnn_adapter", "make_static_gnn_adapter", "make_ncc_adapter",
    "make_view_adapters",
    "table2_dataset_statistics",
    "table3_accuracy",
    "table4_npb_case_study",
    "fig7_training_curves",
    "fig8_view_importance",
    "fig1_structural_patterns",
]
