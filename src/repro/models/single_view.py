"""Single-view models: the view-importance ablation (Fig. 8) and the
Static-GNN baseline (Shen et al. 2021, "GNNs with Static Information").

For Fig. 8 the paper evaluates each view alone "by putting the output of
each view into an LSTM layer, followed by a fully connected layer": we feed
the view's SortPooled node sequence through an LSTM and classify from the
final hidden state.

The Static-GNN baseline is the node-feature view restricted to *static*
information only — the dataset pipeline zeroes the dynamic feature columns —
matching Shen et al.'s inst2vec-only graph model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ModelError
from repro.models.dgcnn import DGCNN, DGCNNConfig
from repro.nn.layers import Dense, Module
from repro.nn.rnn import LSTM
from repro.nn.tensor import Tensor
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs


class SingleViewModel(Module):
    """One view's DGCNN front-end + LSTM + dense classifier (Fig. 8 setup).

    ``view`` selects which input the model consumes: ``"node"`` uses the
    semantic features, ``"structural"`` the walk distributions (after a
    projection supplied by the caller via ``project`` or raw if None).
    """

    def __init__(
        self,
        view: str,
        dgcnn_config: DGCNNConfig,
        lstm_units: int = 64,
        num_classes: int = 2,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        if view not in ("node", "structural"):
            raise ModelError(f"view must be 'node' or 'structural', got {view!r}")
        rng = ensure_rng(rng)
        rngs = spawn_rngs(rng, 4)
        self.view = view
        self.dgcnn = DGCNN(dgcnn_config, rng=rngs[0])
        self.projection: Optional[Dense] = None
        self.lstm = LSTM(dgcnn_config.total_channels, lstm_units, rng=rngs[1])
        self.classifier = Dense(lstm_units, num_classes, rng=rngs[2])

    def with_projection(self, in_dim: int, rng: RngLike = None) -> "SingleViewModel":
        """Attach an input projection (structural view: walk types -> dims)."""
        self.projection = Dense(
            in_dim, self.dgcnn.config.in_features, activation="tanh",
            rng=ensure_rng(rng),
        )
        return self

    def forward(self, x: np.ndarray, adjacency: np.ndarray) -> Tensor:
        node_input = x
        if self.projection is not None:
            node_input = self.projection(Tensor(x))
        pooled = self.dgcnn.pooled_sequence(node_input, adjacency)
        _seq, (h_final, _c) = self.lstm(pooled)
        return self.classifier(h_final)

    __call__ = forward


class StaticGNN(Module):
    """Shen et al.-style baseline: DGCNN over static-only node features.

    Structurally identical to the node view's DGCNN; the *data* differs
    (dynamic feature columns zeroed by the evaluation harness), which is the
    faithful way to model "GNNs with Static Information".
    """

    def __init__(self, config: DGCNNConfig, rng: RngLike = None) -> None:
        super().__init__()
        self.dgcnn = DGCNN(config, rng=rng)

    def forward(self, x: np.ndarray, adjacency: np.ndarray) -> Tensor:
        return self.dgcnn(x, adjacency)

    __call__ = forward
