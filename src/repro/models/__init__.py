"""Classification models: DGCNN, MV-GNN, single-view ablations, NCC."""

from repro.models.dgcnn import DGCNN, DGCNNConfig
from repro.models.mvgnn import MVGNN, MVGNNConfig
from repro.models.single_view import SingleViewModel, StaticGNN
from repro.models.ncc import NCC, NCCConfig

__all__ = [
    "DGCNN", "DGCNNConfig",
    "MVGNN", "MVGNNConfig",
    "SingleViewModel", "StaticGNN",
    "NCC", "NCCConfig",
]
