"""NCC baseline: Neural Code Comprehension (Ben-Nun et al. 2018).

"NCC uses the inst2vec embedding with two stacked LSTM.  Each layer had 200
units [...].  We used the NCC model with dense layer size of 16 and training
batch size of 32." (Section IV-C)

Input: the loop's flat statement sequence embedded with inst2vec (one vector
per statement).  Two stacked 200-unit LSTMs, a 16-unit dense layer with
ReLU, and a 2-class head.  Sequences longer than ``max_length`` statements
are truncated (LLVM-IR loops in the original are similarly capped).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ModelError
from repro.nn.layers import Dense, Module
from repro.nn.rnn import LSTM
from repro.nn.tensor import Tensor
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs


@dataclass
class NCCConfig:
    embedding_dim: int = 200
    lstm_units: int = 200
    dense_units: int = 16
    num_classes: int = 2
    max_length: int = 160


class NCC(Module):
    """inst2vec + 2xLSTM + dense classifier."""

    def __init__(self, config: NCCConfig, rng: RngLike = None) -> None:
        super().__init__()
        rng = ensure_rng(rng)
        rngs = spawn_rngs(rng, 4)
        self.config = config
        self.lstm1 = LSTM(config.embedding_dim, config.lstm_units, rng=rngs[0])
        self.lstm2 = LSTM(config.lstm_units, config.lstm_units, rng=rngs[1])
        self.dense = Dense(
            config.lstm_units, config.dense_units, activation="relu", rng=rngs[2]
        )
        self.classifier = Dense(config.dense_units, config.num_classes, rng=rngs[3])

    def forward(self, embedded_sequence: np.ndarray) -> Tensor:
        """Class logits from a (time, embedding_dim) statement sequence."""
        if embedded_sequence.ndim != 2:
            raise ModelError("NCC expects a (time, dim) embedded sequence")
        if embedded_sequence.shape[0] > self.config.max_length:
            embedded_sequence = embedded_sequence[: self.config.max_length]
        seq1, _ = self.lstm1(Tensor(embedded_sequence))
        _, (h_final, _c) = self.lstm2(seq1)
        return self.classifier(self.dense(h_final))

    __call__ = forward

    def forward_batch(self, sequences: List[np.ndarray]) -> Tensor:
        """Class logits, (batch, classes), from variable-length sequences.

        Pads the batch to its longest (truncated) sequence and runs both
        LSTMs batched — the training-speed path (paper batch size 32).
        """
        if not sequences:
            raise ModelError("empty NCC batch")
        clipped = [s[: self.config.max_length] for s in sequences]
        lengths = np.array([max(1, s.shape[0]) for s in clipped], dtype=np.int64)
        max_len = int(lengths.max())
        batch = len(clipped)
        padded = np.zeros((batch, max_len, self.config.embedding_dim))
        for pos, seq in enumerate(clipped):
            if seq.shape[0] == 0:
                continue
            padded[pos, : seq.shape[0]] = seq

        seq1, _h1 = self.lstm1.forward_batch(Tensor(padded), lengths)
        # seq1 is (time, batch, hidden) -> reorder for the second layer
        time_steps = seq1.shape[0]
        seq1_btf = seq1.reshape(time_steps * batch, self.config.lstm_units)
        # rebuild (batch, time, hidden) by gathering rows t*batch + b
        gather = (
            np.arange(time_steps)[None, :] * batch + np.arange(batch)[:, None]
        ).reshape(-1)
        seq1_bt = seq1_btf.take_rows(gather).reshape(
            batch, time_steps, self.config.lstm_units
        )
        _seq2, h_final = self.lstm2.forward_batch(seq1_bt, lengths)
        return self.classifier(self.dense(h_final))
