"""Deep Graph Convolutional Neural Network (Zhang et al. 2018, paper Fig. 6).

Architecture: a stack of graph convolutions with tanh activations whose
outputs are concatenated channel-wise; SortPooling to a fixed ``k`` rows;
two 1-D convolutions (the first with kernel = total channels and equal
stride so each output position corresponds to one sorted node); max pooling;
and a dense layer.  ``embed()`` returns the input of the final dense
classifier — the vector the multi-view model consumes ("We take the input of
the fully connected layer into the multi-view model", Section III-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.nn.batching import pad_segments
from repro.nn.layers import (
    Conv1D,
    Dense,
    Dropout,
    GraphConv,
    MaxPool1D,
    Module,
    SortPooling,
    normalized_adjacency,
)
from repro.nn.tensor import Tensor, concat
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs


@dataclass
class DGCNNConfig:
    """Hyper-parameters (defaults follow Zhang et al. / the paper)."""

    in_features: int = 200
    conv_channels: Tuple[int, ...] = (32, 32, 32, 1)
    sortpool_k: int = 135            # paper Section IV-B
    conv1d_channels: Tuple[int, int] = (16, 32)
    conv1d_kernel: int = 5
    dense_units: int = 128
    dropout: float = 0.5
    num_classes: int = 2

    @property
    def total_channels(self) -> int:
        return sum(self.conv_channels)


class DGCNN(Module):
    """End-to-end DGCNN graph classifier."""

    def __init__(self, config: DGCNNConfig, rng: RngLike = None) -> None:
        super().__init__()
        rng = ensure_rng(rng)
        rngs = spawn_rngs(rng, len(config.conv_channels) + 4)
        self.config = config

        self.graph_convs: List[GraphConv] = []
        in_dim = config.in_features
        for pos, channels in enumerate(config.conv_channels):
            self.graph_convs.append(
                GraphConv(in_dim, channels, activation="tanh", rng=rngs[pos])
            )
            in_dim = channels

        self.sortpool = SortPooling(config.sortpool_k)
        total = config.total_channels
        base = len(config.conv_channels)
        self.conv1 = Conv1D(
            1,
            config.conv1d_channels[0],
            kernel_size=total,
            stride=total,
            activation="relu",
            rng=rngs[base],
        )
        self.pool = MaxPool1D(2)
        self.conv2 = Conv1D(
            config.conv1d_channels[0],
            config.conv1d_channels[1],
            kernel_size=config.conv1d_kernel,
            stride=1,
            activation="relu",
            rng=rngs[base + 1],
        )
        conv2_len = max(1, config.sortpool_k // 2 - config.conv1d_kernel + 1)
        self.flat_dim = conv2_len * config.conv1d_channels[1]
        self.dense = Dense(
            self.flat_dim, config.dense_units, activation="relu", rng=rngs[base + 2]
        )
        self.dropout = Dropout(config.dropout, rng=rngs[base + 3])
        self.classifier = Dense(
            config.dense_units, config.num_classes, rng=rngs[base + 3]
        )

    # -- forward pieces -----------------------------------------------------

    def node_representations(self, x, adjacency: np.ndarray) -> Tensor:
        """Concatenated graph-conv outputs, shape (n, total_channels).

        ``x`` may be an ndarray or a Tensor (the multi-view model feeds the
        structural view's learned projection in as a live Tensor).
        """
        if x.shape[1] != self.config.in_features:
            raise ModelError(
                f"DGCNN expected {self.config.in_features} input features, "
                f"got {x.shape[1]}"
            )
        adj_norm = normalized_adjacency(adjacency)
        h = x if isinstance(x, Tensor) else Tensor(x)
        outputs: List[Tensor] = []
        for conv in self.graph_convs:
            h = conv(h, adj_norm)
            outputs.append(h)
        return concat(outputs, axis=1)

    def pooled_sequence(self, x, adjacency: np.ndarray) -> Tensor:
        """SortPooled node sequence, shape (k, total_channels)."""
        return self.sortpool(self.node_representations(x, adjacency))

    def embed(self, x, adjacency: np.ndarray) -> Tensor:
        """The dense-layer output consumed by the multi-view model.

        Shape contract: ``x`` is ``(n, in_features)`` node features for one
        graph, ``adjacency`` its raw (un-normalized, no self-loops) square
        ``(n, n)`` matrix; the result is a ``(dense_units,)`` vector.  For
        classifying many graphs at once use :meth:`embed_batch`, which
        computes the same vectors through one packed pass.
        """
        pooled = self.pooled_sequence(x, adjacency)
        k, channels = pooled.shape
        flat = pooled.reshape(k * channels, 1)
        c1 = self.conv1(flat)          # (k, 16)
        p1 = self.pool(c1)             # (k//2, 16)
        if p1.shape[0] < self.config.conv1d_kernel:
            p1 = p1.pad_rows(self.config.conv1d_kernel)
        c2 = self.conv2(p1)            # (k//2 - 4, 32)
        flat2 = c2.reshape(1, c2.shape[0] * c2.shape[1])
        if flat2.shape[1] != self.flat_dim:
            raise ModelError(
                f"DGCNN flatten mismatch: got {flat2.shape[1]}, "
                f"expected {self.flat_dim} (check sortpool_k)"
            )
        hidden = self.dense(flat2)     # (1, dense_units)
        return self.dropout(hidden).reshape(self.config.dense_units)

    def forward(self, x: np.ndarray, adjacency: np.ndarray) -> Tensor:
        """Class logits for one graph."""
        return self.classifier(self.embed(x, adjacency))

    __call__ = forward

    # -- batched (packed) pieces --------------------------------------------

    def node_representations_batch(self, x, adj_norm) -> Tensor:
        """Packed-batch graph convolutions, shape ``(N_nodes, total_channels)``.

        ``x`` stacks the node features of many graphs contiguously —
        ``(N_nodes, in_features)`` with ``N_nodes = sum(sizes)`` — and
        ``adj_norm`` is their *pre-normalized* block-diagonal adjacency
        (:func:`repro.nn.batching.block_diagonal_adjacency`).  Unlike
        :meth:`node_representations` this does not normalize: the batch
        builder already applied ``D̃⁻¹Ã`` per block.
        """
        if x.shape[1] != self.config.in_features:
            raise ModelError(
                f"DGCNN expected {self.config.in_features} input features, "
                f"got {x.shape[1]}"
            )
        h = x if isinstance(x, Tensor) else Tensor(x)
        outputs: List[Tensor] = []
        for conv in self.graph_convs:
            h = conv(h, adj_norm)
            outputs.append(h)
        return concat(outputs, axis=1)

    def embed_batch(self, x, adj_norm, sizes: Sequence[int]) -> Tensor:
        """Batched :meth:`embed`: one packed pass over ``len(sizes)`` graphs.

        Shape contract: ``x`` is ``(sum(sizes), in_features)`` stacked node
        features (graph ``g`` at rows ``[offsets[g], offsets[g]+sizes[g])``),
        ``adj_norm`` the matching normalized block-diagonal adjacency; the
        result is ``(len(sizes), dense_units)``, row ``g`` numerically equal
        (to fp tolerance) to ``embed(x_g, adjacency_g)``.
        """
        num_graphs = len(sizes)
        if num_graphs == 0:
            raise ModelError("embed_batch needs at least one graph")
        reps = self.node_representations_batch(x, adj_norm)
        k = self.config.sortpool_k
        channels = self.config.total_channels
        pooled = self.sortpool.segment_call(reps, sizes)     # (B*k, C)
        flat = pooled.reshape(num_graphs * k * channels, 1)
        c1 = self.conv1.segment_call(flat, num_graphs, k * channels)
        length = k // self.pool.pool_size
        if length == 0:
            p1, length = c1, k                # mirrors MaxPool1D identity
        else:
            p1 = self.pool.segment_call(c1, num_graphs, k)
        if length < self.config.conv1d_kernel:
            p1 = pad_segments(
                p1, num_graphs, length, self.config.conv1d_kernel
            )
            length = self.config.conv1d_kernel
        c2 = self.conv2.segment_call(p1, num_graphs, length)
        per_graph = c2.shape[0] // num_graphs * c2.shape[1]
        flat2 = c2.reshape(num_graphs, per_graph)
        if per_graph != self.flat_dim:
            raise ModelError(
                f"DGCNN flatten mismatch: got {per_graph}, "
                f"expected {self.flat_dim} (check sortpool_k)"
            )
        hidden = self.dense(flat2)            # (B, dense_units)
        return self.dropout(hidden)

    def forward_batch(self, x, adj_norm, sizes: Sequence[int]) -> Tensor:
        """Class logits for a packed batch, shape ``(len(sizes), num_classes)``."""
        return self.classifier(self.embed_batch(x, adj_norm, sizes))
