"""MV-GNN: the paper's multi-view model (Fig. 3, Eq. 5).

Two independent DGCNNs examine each loop sub-PEG from two views:

* **node-feature view** — semantic node features (inst2vec means + dynamic
  features, 200-d);
* **structural-pattern view** — anonymous-walk distributions projected
  through a learned walk-type embedding (the 400-unit layer of Section
  III-C) and a 200-d reduction so "both DGCNNs are set with 200 node feature
  dimensions" (Section IV-B).

Their penultimate representations are fused by Eq. 5,
``h = W · tanh([h_n ⊕ h_s]) + b``, and a temperature-0.5 softmax produces
the prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.errors import ModelError
from repro.models.dgcnn import DGCNN, DGCNNConfig
from repro.nn.layers import Dense, Module
from repro.nn.tensor import Tensor, as_tensor, concat
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs


@dataclass
class MVGNNConfig:
    """MV-GNN hyper-parameters."""

    semantic_features: int = 200      # node-view input dimension
    walk_types: int = 15              # structural-view input dimension
    walk_embedding_units: int = 400   # Section III-C projection layer
    view_features: int = 200          # per-view DGCNN node feature dims
    node_view: DGCNNConfig = field(default_factory=DGCNNConfig)
    struct_view: DGCNNConfig = field(default_factory=DGCNNConfig)
    fusion_hidden: int = 0            # 0 = Eq. 5 literal (W maps to logits)
    num_classes: int = 2
    temperature: float = 0.5

    def __post_init__(self) -> None:
        self.node_view.in_features = self.semantic_features
        self.struct_view.in_features = self.view_features


class MVGNN(Module):
    """The multi-view parallelism classifier."""

    def __init__(self, config: MVGNNConfig, rng: RngLike = None) -> None:
        super().__init__()
        rng = ensure_rng(rng)
        rngs = spawn_rngs(rng, 6)
        self.config = config

        # structural projection: walk distribution -> 400 -> view dims
        self.walk_embed = Dense(
            config.walk_types,
            config.walk_embedding_units,
            activation="tanh",
            rng=rngs[0],
        )
        self.walk_reduce = Dense(
            config.walk_embedding_units, config.view_features, rng=rngs[1]
        )

        self.node_dgcnn = DGCNN(config.node_view, rng=rngs[2])
        self.struct_dgcnn = DGCNN(config.struct_view, rng=rngs[3])

        fusion_in = (
            config.node_view.dense_units + config.struct_view.dense_units
        )
        if config.fusion_hidden > 0:
            self.fusion = Dense(
                fusion_in, config.fusion_hidden, activation=None, rng=rngs[4]
            )
            self.head: Optional[Dense] = Dense(
                config.fusion_hidden, config.num_classes, rng=rngs[5]
            )
        else:
            # Eq. 5 literal: W maps the fused tanh vector straight to logits
            self.fusion = Dense(fusion_in, config.num_classes, rng=rngs[4])
            self.head = None

    # -- views ----------------------------------------------------------------

    def structural_input(self, x_structural: np.ndarray) -> Tensor:
        """Walk-type embedding lookup + reduction (Section III-C)."""
        if x_structural.shape[1] != self.config.walk_types:
            raise ModelError(
                f"expected {self.config.walk_types} walk types, "
                f"got {x_structural.shape[1]}"
            )
        return self.walk_reduce(self.walk_embed(as_tensor(x_structural)))

    def view_embeddings(
        self,
        x_semantic: np.ndarray,
        x_structural: np.ndarray,
        adjacency: np.ndarray,
    ) -> Tuple[Tensor, Tensor]:
        """(h_n, h_s): the two per-view DGCNN representations."""
        h_n = self.node_dgcnn.embed(x_semantic, adjacency)
        struct_nodes = self.structural_input(x_structural)
        h_s = self.struct_dgcnn.embed(struct_nodes, adjacency)
        return h_n, h_s

    # -- fusion ---------------------------------------------------------------------

    def forward(
        self,
        x_semantic: np.ndarray,
        x_structural: np.ndarray,
        adjacency: np.ndarray,
    ) -> Tensor:
        """Class logits for one loop sub-PEG.

        Shape contract: ``x_semantic`` is ``(n, semantic_features)`` node
        features, ``x_structural`` is ``(n, walk_types)`` anonymous-walk
        distributions, ``adjacency`` the raw undirected ``(n, n)`` matrix
        (normalization happens inside the per-view DGCNNs); the result is a
        ``(num_classes,)`` logit vector.  For throughput-oriented workloads
        prefer :meth:`forward_batch` / :class:`repro.runtime.Engine`, which
        amortize one numpy-level pass over many sub-PEGs.
        """
        h_n, h_s = self.view_embeddings(x_semantic, x_structural, adjacency)
        fused = self.fusion(concat([h_n, h_s], axis=0).tanh())
        if self.head is not None:
            fused = self.head(fused.relu())
        return fused

    __call__ = forward

    # -- batched (packed) path ----------------------------------------------

    def view_embeddings_batch(
        self,
        x_semantic,
        x_structural,
        adj_norm,
        sizes: Sequence[int],
    ) -> Tuple[Tensor, Tensor]:
        """Per-view embeddings for a packed batch: two ``(B, dense_units)``.

        Inputs follow the packed layout of :mod:`repro.nn.batching`:
        ``x_semantic`` ``(sum(sizes), semantic_features)`` and
        ``x_structural`` ``(sum(sizes), walk_types)`` stack the node rows of
        ``B = len(sizes)`` graphs; ``adj_norm`` is their normalized
        block-diagonal adjacency.
        """
        h_n = self.node_dgcnn.embed_batch(x_semantic, adj_norm, sizes)
        struct_nodes = self.structural_input(x_structural)
        h_s = self.struct_dgcnn.embed_batch(struct_nodes, adj_norm, sizes)
        return h_n, h_s

    def forward_batch(
        self,
        x_semantic,
        x_structural,
        adj_norm,
        sizes: Sequence[int],
    ) -> Tensor:
        """Class logits for a packed batch, shape ``(len(sizes), num_classes)``.

        Row ``g`` equals (to fp tolerance) ``forward`` on graph ``g`` alone;
        the Eq. 5 fusion runs once on the ``(B, 2 * dense_units)`` stacked
        view embeddings.
        """
        h_n, h_s = self.view_embeddings_batch(
            x_semantic, x_structural, adj_norm, sizes
        )
        fused = self.fusion(concat([h_n, h_s], axis=1).tanh())
        if self.head is not None:
            fused = self.head(fused.relu())
        return fused
