"""Optimizers: SGD (with momentum) and Adam.

Updates are in-place on parameter ``data`` buffers (no reallocations in the
training loop, per the HPC guide's in-place-operation idiom).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ModelError
from repro.nn.layers import Parameter


class Optimizer:
    def __init__(self, params: Sequence[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ModelError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        if not self.params:
            raise ModelError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with optional momentum and gradient clipping."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        clip: Optional[float] = None,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.clip = clip
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.params)

    def step(self) -> None:
        for pos, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if self.clip is not None:
                grad = np.clip(grad, -self.clip, self.clip)
            if self.momentum > 0.0:
                if self._velocity[pos] is None:
                    self._velocity[pos] = np.zeros_like(param.data)
                vel = self._velocity[pos]
                vel *= self.momentum
                vel -= self.lr * grad
                param.data += vel
            else:
                param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam with bias correction and optional gradient clipping."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        clip: Optional[float] = None,
    ) -> None:
        super().__init__(params, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.clip = clip
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for pos, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if self.clip is not None:
                grad = np.clip(grad, -self.clip, self.clip)
            m = self._m[pos]
            v = self._v[pos]
            m *= b1
            m += (1.0 - b1) * grad
            v *= b2
            v += (1.0 - b2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
