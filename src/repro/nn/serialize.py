"""Parameter persistence for trained models (npz checkpoints).

A checkpoint may also carry the int8 :class:`~repro.nn.quantize.Calibration`
for the fast inference tier: :func:`save_params` stores its scales under the
reserved ``__quantize__/`` key prefix (ignored by :func:`load_params`'s
parameter-name reconciliation), and :func:`load_calibration` reads them
back.  One file therefore holds everything a serving worker needs to run
either precision tier.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.errors import ModelError
from repro.nn.layers import Module
from repro.nn.quantize import (
    CALIBRATION_PREFIX,
    Calibration,
    calibration_from_arrays,
    calibration_to_arrays,
)


def save_params(
    module: Module,
    path: os.PathLike,
    calibration: Optional[Calibration] = None,
) -> None:
    """Save all named parameters of ``module`` to an npz file.

    With ``calibration``, the int8 scales ride along in the same archive
    under the reserved ``__quantize__/`` prefix.
    """
    arrays = {name: p.data for name, p in module.named_parameters().items()}
    if calibration is not None:
        arrays.update(calibration_to_arrays(calibration))
    np.savez(path, **arrays)


def load_params(module: Module, path: os.PathLike) -> None:
    """Load parameters saved by :func:`save_params` into ``module`` in place."""
    with np.load(path) as archive:
        named = module.named_parameters()
        stored = {
            name for name in archive.files
            if not name.startswith(CALIBRATION_PREFIX)
        }
        missing = set(named) - stored
        extra = stored - set(named)
        if missing or extra:
            raise ModelError(
                f"checkpoint mismatch: missing={sorted(missing)} "
                f"unexpected={sorted(extra)}"
            )
        for name, param in named.items():
            data = archive[name]
            if data.shape != param.data.shape:
                raise ModelError(
                    f"shape mismatch for {name}: checkpoint {data.shape} "
                    f"vs model {param.data.shape}"
                )
            param.data[...] = data


def load_calibration(path: os.PathLike) -> Optional[Calibration]:
    """Calibration stored alongside a checkpoint, or None if absent."""
    with np.load(path) as archive:
        arrays = {
            name: archive[name]
            for name in archive.files
            if name.startswith(CALIBRATION_PREFIX)
        }
    if not arrays:
        return None
    return calibration_from_arrays(arrays)
