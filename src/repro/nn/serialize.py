"""Parameter persistence for trained models (npz checkpoints)."""

from __future__ import annotations

import os
import numpy as np

from repro.errors import ModelError
from repro.nn.layers import Module


def save_params(module: Module, path: os.PathLike) -> None:
    """Save all named parameters of ``module`` to an npz file."""
    arrays = {name: p.data for name, p in module.named_parameters().items()}
    np.savez(path, **arrays)


def load_params(module: Module, path: os.PathLike) -> None:
    """Load parameters saved by :func:`save_params` into ``module`` in place."""
    with np.load(path) as archive:
        named = module.named_parameters()
        missing = set(named) - set(archive.files)
        extra = set(archive.files) - set(named)
        if missing or extra:
            raise ModelError(
                f"checkpoint mismatch: missing={sorted(missing)} "
                f"unexpected={sorted(extra)}"
            )
        for name, param in named.items():
            data = archive[name]
            if data.shape != param.data.shape:
                raise ModelError(
                    f"shape mismatch for {name}: checkpoint {data.shape} "
                    f"vs model {param.data.shape}"
                )
            param.data[...] = data
