"""LSTM layer for the NCC baseline (two stacked LSTMs of 200 units).

Straightforward unrolled LSTM over a (time, features) input: one fused gate
projection per step, split into input/forget/cell/output gates.  Returns the
full hidden sequence so layers stack naturally; callers typically take the
final hidden state.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ModelError
from repro.nn.init import glorot_uniform, orthogonal, zeros_init
from repro.nn.layers import Module, Parameter
from repro.nn.tensor import Tensor, as_tensor, stack
from repro.utils.rng import RngLike, ensure_rng


class LSTM(Module):
    """Single LSTM layer; stack instances for multi-layer models."""

    def __init__(self, input_size: int, hidden_size: int, rng: RngLike = None) -> None:
        super().__init__()
        rng = ensure_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_x = Parameter(glorot_uniform((input_size, 4 * hidden_size), rng))
        self.w_h = Parameter(
            np.concatenate(
                [orthogonal((hidden_size, hidden_size), rng) for _ in range(4)],
                axis=1,
            )
        )
        bias = zeros_init((4 * hidden_size,))
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget-gate bias trick
        self.bias = Parameter(bias)

    def __call__(
        self,
        inputs: Tensor,
        state: Optional[Tuple[Tensor, Tensor]] = None,
    ) -> Tuple[Tensor, Tuple[Tensor, Tensor]]:
        """Run over a (time, input_size) sequence.

        Returns (hidden_sequence of shape (time, hidden), (h_T, c_T)).
        """
        inputs = as_tensor(inputs)
        if inputs.ndim != 2 or inputs.shape[1] != self.input_size:
            raise ModelError(
                f"LSTM expected (time, {self.input_size}) input, got {inputs.shape}"
            )
        steps = inputs.shape[0]
        hidden = self.hidden_size
        if state is None:
            h = Tensor(np.zeros(hidden))
            c = Tensor(np.zeros(hidden))
        else:
            h, c = state

        # hoist the input projection: one big matmul instead of one per step
        x_proj = inputs @ self.w_x          # (time, 4*hidden)
        outputs: List[Tensor] = []
        for t in range(steps):
            gates = x_proj[t] + h @ self.w_h + self.bias
            i_gate = gates[0:hidden].sigmoid()
            f_gate = gates[hidden : 2 * hidden].sigmoid()
            g_gate = gates[2 * hidden : 3 * hidden].tanh()
            o_gate = gates[3 * hidden : 4 * hidden].sigmoid()
            c = f_gate * c + i_gate * g_gate
            h = o_gate * c.tanh()
            outputs.append(h)
        return stack(outputs, axis=0), (h, c)

    def forward_batch(
        self, inputs: Tensor, lengths: Optional[np.ndarray] = None
    ) -> Tuple[Tensor, Tensor]:
        """Batched run over a (batch, time, input_size) padded tensor.

        Returns (hidden_sequence (time, batch, hidden), h_last (batch,
        hidden)) where ``h_last`` is each sequence's hidden state at its own
        final valid step (per ``lengths``; full length when None).  Padded
        steps are frozen with a mask so they do not perturb the state.
        """
        inputs = as_tensor(inputs)
        if inputs.ndim != 3 or inputs.shape[2] != self.input_size:
            raise ModelError(
                f"forward_batch expects (batch, time, {self.input_size}), "
                f"got {inputs.shape}"
            )
        batch, steps, _ = inputs.shape
        hidden = self.hidden_size
        if lengths is None:
            lengths = np.full(batch, steps, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        if lengths.shape != (batch,) or lengths.min() < 1 or lengths.max() > steps:
            raise ModelError("invalid lengths for forward_batch")

        flat = inputs.reshape(batch * steps, self.input_size)
        x_proj = (flat @ self.w_x).reshape(batch, steps, 4 * hidden)

        h = Tensor(np.zeros((batch, hidden)))
        c = Tensor(np.zeros((batch, hidden)))
        states: List[Tensor] = []
        for t in range(steps):
            active = (lengths > t).astype(np.float64)[:, None]
            gates = x_proj[:, t] + h @ self.w_h + self.bias
            i_gate = gates[:, 0:hidden].sigmoid()
            f_gate = gates[:, hidden : 2 * hidden].sigmoid()
            g_gate = gates[:, 2 * hidden : 3 * hidden].tanh()
            o_gate = gates[:, 3 * hidden : 4 * hidden].sigmoid()
            c_new = f_gate * c + i_gate * g_gate
            h_new = o_gate * c_new.tanh()
            if active.min() < 1.0:
                mask = Tensor(active)
                keep = Tensor(1.0 - active)
                c = mask * c_new + keep * c
                h = mask * h_new + keep * h
            else:
                c, h = c_new, h_new
            states.append(h)
        return stack(states, axis=0), h
