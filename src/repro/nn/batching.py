"""Segment-aware batching primitives for packing many graphs into one pass.

The batched inference runtime (:mod:`repro.runtime`) packs ``B`` sub-PEGs
into a single node matrix by stacking their rows contiguously ("packed"
layout): graph ``g`` with ``sizes[g]`` nodes occupies rows
``[offsets[g], offsets[g] + sizes[g])``.  Graph structure becomes one
block-diagonal normalized adjacency, so a single sparse-dense matmul
propagates every graph at once and the dense layers downstream see one big
matrix instead of ``B`` small ones.

The pieces here are deliberately model-agnostic; the model-specific batched
paths live in ``DGCNN.embed_batch`` / ``MVGNN.forward_batch``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.nn.layers import normalized_adjacency
from repro.nn.tensor import Tensor, as_tensor, concat

try:  # scipy is a declared dependency, but keep the dense fallback honest
    import scipy.sparse as _sparse
except ImportError:  # pragma: no cover - exercised only without scipy
    _sparse = None


def segment_offsets(sizes: Sequence[int]) -> np.ndarray:
    """Row offset of each segment in the packed layout: ``(B + 1,)`` ints."""
    return np.concatenate([[0], np.cumsum(np.asarray(sizes, dtype=np.int64))])


def block_diagonal_adjacency(
    adjacencies: Sequence[np.ndarray], normalize: bool = True
):
    """Block-diagonal (optionally row-normalized) adjacency of many graphs.

    Each ``adjacencies[g]`` is a square ``(n_g, n_g)`` matrix; the result is
    ``(N, N)`` with ``N = sum(n_g)``, graph ``g`` occupying the diagonal
    block at ``offsets[g]``.  With ``normalize=True`` every block is
    ``D̃⁻¹Ã`` (self-loops added), so propagating the packed node matrix
    through it equals running :func:`normalized_adjacency` per graph — the
    blocks never interact.

    Returns a scipy CSR matrix when scipy is available (linear in total
    nodes + edges), otherwise a dense ndarray.
    """
    if not adjacencies:
        raise ModelError("block_diagonal_adjacency needs at least one graph")
    blocks: List[np.ndarray] = []
    for adjacency in adjacencies:
        adjacency = np.asarray(adjacency, dtype=np.float64)
        if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
            raise ModelError(
                f"adjacency must be square, got {adjacency.shape}"
            )
        blocks.append(
            normalized_adjacency(adjacency) if normalize else adjacency
        )
    if _sparse is not None:
        return _sparse.block_diag(blocks, format="csr")
    total = sum(b.shape[0] for b in blocks)
    out = np.zeros((total, total))
    offset = 0
    for block in blocks:
        n = block.shape[0]
        out[offset : offset + n, offset : offset + n] = block
        offset += n
    return out


def pad_segments(
    x: Tensor, num_segments: int, length: int, target: int
) -> Tensor:
    """Zero-pad each contiguous length-``length`` segment to ``target`` rows.

    ``x`` is ``(num_segments * length, channels)``; the result is
    ``(num_segments * target, channels)`` with segment ``g``'s rows at
    ``[g*target, g*target + length)`` and zeros after — the packed
    equivalent of ``Tensor.pad_rows`` applied per graph.
    """
    x = as_tensor(x)
    if x.shape[0] != num_segments * length:
        raise ModelError(
            f"pad_segments expected {num_segments * length} rows, "
            f"got {x.shape[0]}"
        )
    if length > target:
        raise ModelError(f"cannot pad segments of {length} rows to {target}")
    if length == target:
        return x
    channels = x.shape[1]
    zero_row = num_segments * length
    indices = np.full(num_segments * target, zero_row, dtype=np.int64)
    for g in range(num_segments):
        indices[g * target : g * target + length] = np.arange(
            g * length, (g + 1) * length
        )
    extended = concat([x, Tensor(np.zeros((1, channels)))], axis=0)
    return extended.take_rows(indices)
