"""Symmetric int8 post-training quantization for the inference fast path.

The precision-tiered runtime (``Engine(precision="fast")``, see
docs/RUNTIME.md) trades bits for throughput: weights and the activations
feeding the hot primitives are snapped to a symmetric int8 grid before the
heavy matmuls.  This module holds the numeric core everything else builds
on:

* the grid itself — :func:`symmetric_scale`, :func:`quantize`,
  :func:`dequantize`, :func:`fake_quantize`;
* the exact integer reference — :func:`int8_matmul`, an int8 x int8 ->
  int32 matmul with an explicit accumulator no-overflow bound (the
  hypothesis property wall in ``tests/nn/test_quantize_properties.py``
  exercises it);
* :class:`Calibration` — per-layer activation/weight scales recorded from
  a held-out shard, persisted next to checkpoints by
  :mod:`repro.nn.serialize` under the reserved ``__quantize__/`` npz key
  prefix.

The *executing* fast path deliberately does NOT materialize int8 tensors:
numpy integer matmuls bypass BLAS and are slower than float GEMM.  Instead
the quantized primitives (``qmatmul`` et al. in
:mod:`repro.nn.primitives`) run float32 GEMMs whose operands have been
round-tripped through the int8 grid — numerically identical to
dequantized-int8 arithmetic (every grid point is exactly representable in
float32: magnitudes are ``k * scale`` with ``|k| <= 127``), but at BLAS
speed.  :func:`int8_matmul` exists so tests can pin that equivalence and
the accumulator bound independently of the fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.errors import ModelError

__all__ = [
    "PRECISIONS",
    "QMAX",
    "INT8_MATMUL_MAX_K",
    "CALIBRATION_PREFIX",
    "symmetric_scale",
    "quantize",
    "dequantize",
    "fake_quantize",
    "int8_matmul",
    "Calibration",
    "calibration_to_arrays",
    "calibration_from_arrays",
]

#: The two engine execution tiers (see docs/RUNTIME.md).
PRECISIONS: Tuple[str, ...] = ("exact", "fast")

#: Largest representable magnitude on the symmetric int8 grid.  -128 is
#: excluded so the grid is symmetric (negating a quantized value never
#: overflows).
QMAX = 127

#: Inner-dimension bound below which an int8 x int8 matmul cannot overflow
#: an int32 accumulator: K * 127 * 127 <= 2**31 - 1.
INT8_MATMUL_MAX_K = (2**31 - 1) // (QMAX * QMAX)


def symmetric_scale(x: np.ndarray) -> float:
    """Per-tensor symmetric scale: ``max|x| / 127`` (1.0 for all-zero).

    The 1.0 floor keeps all-zero (or empty) tensors quantizable without a
    divide-by-zero; zero is exactly representable at any scale, so the
    choice does not affect round-trips.
    """
    x = np.asarray(x)
    peak = float(np.max(np.abs(x))) if x.size else 0.0
    if not np.isfinite(peak) or peak == 0.0:
        return 1.0
    return peak / QMAX


def scale_from_max(peak: float) -> float:
    """Scale for a recorded absolute maximum (1.0 floor, as above)."""
    peak = float(peak)
    if not np.isfinite(peak) or peak <= 0.0:
        return 1.0
    return peak / QMAX


def quantize(x: np.ndarray, scale: float) -> np.ndarray:
    """Snap ``x`` onto the int8 grid: ``clip(round(x / scale), -127, 127)``.

    Round-to-nearest-even (numpy ``rint``), saturating at the symmetric
    grid edges.  Returns int8.
    """
    if scale <= 0.0 or not np.isfinite(scale):
        raise ModelError(f"quantization scale must be positive, got {scale}")
    q = np.rint(np.asarray(x, dtype=np.float64) / scale)
    return np.clip(q, -QMAX, QMAX).astype(np.int8)


def dequantize(q: np.ndarray, scale: float) -> np.ndarray:
    """Map int8 grid points back to float64: ``q * scale``."""
    return np.asarray(q, dtype=np.float64) * scale


def fake_quantize(x: np.ndarray, scale: float) -> np.ndarray:
    """Round-trip ``x`` through the int8 grid, staying in ``x``'s dtype.

    ``fake_quantize(x, s) == dequantize(quantize(x, s), s)`` exactly (for
    float32/float64 inputs; every grid point ``k * s`` with ``|k| <= 127``
    is representable).  This is the fast path's quantizer: no int8 tensor
    is materialized, so the subsequent matmul stays a BLAS float GEMM.
    """
    if scale <= 0.0 or not np.isfinite(scale):
        raise ModelError(f"quantization scale must be positive, got {scale}")
    x = np.asarray(x)
    out = x / x.dtype.type(scale)
    np.rint(out, out=out)
    np.clip(out, -QMAX, QMAX, out=out)
    out *= x.dtype.type(scale)
    return out


def int8_matmul(a_q: np.ndarray, b_q: np.ndarray) -> np.ndarray:
    """Exact int8 x int8 -> int32 matmul (reference, not the hot path).

    Validates the accumulator no-overflow precondition: with entries in
    [-127, 127], an inner dimension of at most :data:`INT8_MATMUL_MAX_K`
    guarantees every partial sum fits int32.  The property suite compares
    this against an int64 ground truth for random shapes/values.
    """
    a_q = np.asarray(a_q)
    b_q = np.asarray(b_q)
    if a_q.dtype != np.int8 or b_q.dtype != np.int8:
        raise ModelError(
            f"int8_matmul expects int8 operands, got "
            f"{a_q.dtype} @ {b_q.dtype}"
        )
    if a_q.ndim != 2 or b_q.ndim != 2 or a_q.shape[1] != b_q.shape[0]:
        raise ModelError(
            f"int8_matmul shape mismatch: {a_q.shape} @ {b_q.shape}"
        )
    k = a_q.shape[1]
    if k > INT8_MATMUL_MAX_K:
        raise ModelError(
            f"int8_matmul inner dimension {k} exceeds the int32 "
            f"accumulator bound {INT8_MATMUL_MAX_K}"
        )
    return np.matmul(a_q.astype(np.int32), b_q.astype(np.int32))


# -- calibration -------------------------------------------------------------

#: Reserved npz key prefix for calibration arrays saved next to model
#: weights (``nn.serialize`` skips it when loading parameters).
CALIBRATION_PREFIX = "__quantize__/"

#: Bumped when the calibration encoding changes incompatibly.
CALIBRATION_VERSION = 1


@dataclass
class Calibration:
    """Per-layer int8 scales recorded from a held-out shard.

    ``act_scales`` maps *tape op position* -> activation scale for the
    quantizable op at that position (the forward op sequence depends only
    on the model architecture, not the batch size, so one position key
    serves every batch-shape class).  ``param_scales`` maps parameter
    *name* -> weight scale.  ``prim_names`` pins the op sequence the
    scales were recorded against; :func:`repro.runtime.qtape.quantize_tape`
    refuses a calibration whose sequence does not match the tape.
    """

    prim_names: Tuple[str, ...] = ()
    act_scales: Dict[int, float] = field(default_factory=dict)
    param_scales: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        return (
            f"{len(self.act_scales)} activation scale(s), "
            f"{len(self.param_scales)} weight scale(s) over "
            f"{len(self.prim_names)} tape op(s)"
        )


def calibration_to_arrays(cal: Calibration) -> Dict[str, np.ndarray]:
    """Flatten a :class:`Calibration` into npz-storable arrays.

    Keys carry the :data:`CALIBRATION_PREFIX` so the checkpoint loader can
    tell them apart from parameter arrays.  Only plain numeric/unicode
    dtypes are used — the archives load with ``allow_pickle=False``.
    """
    positions = sorted(cal.act_scales)
    names = sorted(cal.param_scales)
    p = CALIBRATION_PREFIX
    return {
        p + "version": np.array(CALIBRATION_VERSION, dtype=np.int64),
        p + "prim_names": np.array(list(cal.prim_names), dtype=np.str_),
        p + "act_positions": np.array(positions, dtype=np.int64),
        p + "act_scales": np.array(
            [cal.act_scales[i] for i in positions], dtype=np.float64
        ),
        p + "param_names": np.array(names, dtype=np.str_),
        p + "param_scales": np.array(
            [cal.param_scales[n] for n in names], dtype=np.float64
        ),
    }


def calibration_from_arrays(
    arrays: Mapping[str, np.ndarray]
) -> Calibration:
    """Inverse of :func:`calibration_to_arrays`."""
    p = CALIBRATION_PREFIX
    required = (
        "version", "prim_names", "act_positions", "act_scales",
        "param_names", "param_scales",
    )
    missing = [k for k in required if p + k not in arrays]
    if missing:
        raise ModelError(
            f"calibration archive missing keys: {sorted(missing)}"
        )
    version = int(arrays[p + "version"])
    if version != CALIBRATION_VERSION:
        raise ModelError(
            f"calibration version {version} unsupported "
            f"(expected {CALIBRATION_VERSION})"
        )
    positions = np.asarray(arrays[p + "act_positions"], dtype=np.int64)
    act_values = np.asarray(arrays[p + "act_scales"], dtype=np.float64)
    names = [str(n) for n in arrays[p + "param_names"]]
    param_values = np.asarray(arrays[p + "param_scales"], dtype=np.float64)
    if len(positions) != len(act_values) or len(names) != len(param_values):
        raise ModelError("calibration archive arrays are inconsistent")
    return Calibration(
        prim_names=tuple(str(n) for n in arrays[p + "prim_names"]),
        act_scales={int(i): float(s) for i, s in zip(positions, act_values)},
        param_scales={n: float(s) for n, s in zip(names, param_values)},
    )
