"""Minimal tape-based autograd + neural-network stack on numpy.

Stands in for PyTorch in the original pipeline: reverse-mode automatic
differentiation (:mod:`repro.nn.tensor`), layers (Dense, GraphConv, Conv1D,
SortPooling, Dropout, LSTM), optimizers (SGD, Adam), and parameter
serialization.  Gradient correctness is established by finite-difference
property tests in ``tests/nn``.
"""

from repro.nn.tensor import (
    Tensor,
    as_tensor,
    concat,
    stack,
    no_grad,
    is_sparse_matrix,
    sparse_matmul,
)
from repro.nn.batching import (
    block_diagonal_adjacency,
    pad_segments,
    segment_offsets,
)
from repro.nn.functional import (
    softmax,
    softmax_cross_entropy,
    binary_cross_entropy_with_logits,
    dropout_mask,
)
from repro.nn.layers import (
    Module,
    Parameter,
    Dense,
    GraphConv,
    Conv1D,
    MaxPool1D,
    Dropout,
    SortPooling,
    normalized_adjacency,
)
from repro.nn.rnn import LSTM
from repro.nn.optim import SGD, Adam
from repro.nn.init import glorot_uniform, zeros_init
from repro.nn.quantize import (
    PRECISIONS,
    Calibration,
    dequantize,
    fake_quantize,
    int8_matmul,
    quantize,
    symmetric_scale,
)
from repro.nn.serialize import save_params, load_params, load_calibration

__all__ = [
    "Tensor", "as_tensor", "concat", "stack", "no_grad",
    "is_sparse_matrix", "sparse_matmul",
    "block_diagonal_adjacency", "pad_segments", "segment_offsets",
    "softmax", "softmax_cross_entropy", "binary_cross_entropy_with_logits",
    "dropout_mask",
    "Module", "Parameter", "Dense", "GraphConv", "Conv1D", "MaxPool1D",
    "Dropout", "SortPooling", "normalized_adjacency",
    "LSTM",
    "SGD", "Adam",
    "glorot_uniform", "zeros_init",
    "save_params", "load_params", "load_calibration",
    "PRECISIONS", "Calibration",
    "symmetric_scale", "quantize", "dequantize", "fake_quantize",
    "int8_matmul",
]
