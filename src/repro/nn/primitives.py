"""Primitive-op registry + VJP table for the trace-compiled runtime.

Every numeric operation the MV-GNN batched forward performs is expressible
as one of the primitives below.  Each primitive carries

* ``forward(inputs, attrs, out=None)`` — the exact numpy computation the
  autograd :mod:`repro.nn.tensor` closures perform (same clips, same masks,
  same epsilon floors), optionally writing into a caller-owned ``out``
  buffer so the tape interpreter can reuse allocations across calls;
* ``forward_res(inputs, attrs)`` — forward plus the *residuals* the
  backward pass needs for data-dependent ops (dropout masks, SortPooling
  gather indices);
* ``vjp(grad, inputs, out, res, attrs, needed)`` — one gradient per input
  (``None`` where ``needed`` is False or the input is non-differentiable),
  mirroring the hand-written VJPs in :mod:`repro.nn.tensor` /
  :mod:`repro.nn.layers`.

The registry is what makes a recorded tape self-contained: the tracer in
:mod:`repro.runtime.tape` only ever emits names from :data:`PRIMITIVES`,
and the interpreter and the mechanical backward both dispatch through it.

Classification flags drive the interpreter's optimizations:

* ``kind`` — ``"unary_ew"`` / ``"binary_ew"`` primitives are candidates
  for adjacent-elementwise fusion; ``"other"`` ops break a chain.
* ``fresh`` — True when the output never aliases an input (a fresh
  allocation or the provided ``out`` buffer), i.e. it is safe to execute a
  fused chain in place on top of it and to back it with a reused buffer.
  View-producing ops (reshape/transpose/basic indexing) are not fresh.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.nn.functional import dropout_mask
from repro.nn.tensor import _is_basic_index, _unbroadcast

Arrays = Tuple[np.ndarray, ...]
Attrs = Dict[str, object]


class Primitive:
    """One registered tape op: forward, residual forward, and VJP."""

    __slots__ = ("name", "fwd", "fwd_res", "vjp", "kind", "fresh", "out_shape")

    def __init__(
        self,
        name: str,
        fwd: Callable[[Arrays, Attrs, Optional[np.ndarray]], np.ndarray],
        vjp: Callable[..., Tuple[Optional[np.ndarray], ...]],
        kind: str = "other",
        fresh: bool = True,
        out_shape: Optional[Callable[[Arrays, Attrs], Tuple[int, ...]]] = None,
        fwd_res: Optional[Callable[[Arrays, Attrs], Tuple[np.ndarray, object]]] = None,
    ) -> None:
        self.name = name
        self.fwd = fwd
        self.vjp = vjp
        self.kind = kind
        self.fresh = fresh
        self.out_shape = out_shape
        self.fwd_res = fwd_res

    def forward(self, ins: Arrays, attrs: Attrs, out=None) -> np.ndarray:
        return self.fwd(ins, attrs, out)

    def forward_res(self, ins: Arrays, attrs: Attrs):
        """(output, residual) — residual is None for data-independent ops."""
        if self.fwd_res is not None:
            return self.fwd_res(ins, attrs)
        return self.fwd(ins, attrs, None), None

    @property
    def elementwise(self) -> bool:
        return self.kind in ("unary_ew", "binary_ew")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Primitive({self.name!r})"


PRIMITIVES: Dict[str, Primitive] = {}


def _register(prim: Primitive) -> Primitive:
    if prim.name in PRIMITIVES:
        raise ModelError(f"duplicate primitive {prim.name!r}")
    PRIMITIVES[prim.name] = prim
    return prim


def _finish(result: np.ndarray, out: Optional[np.ndarray]) -> np.ndarray:
    """Land ``result`` in ``out`` when a buffer was provided."""
    if out is None:
        return result
    np.copyto(out, result)
    return out


# -- elementwise binaries ----------------------------------------------------


def _broadcast_shape(ins: Arrays, attrs: Attrs) -> Tuple[int, ...]:
    return np.broadcast_shapes(ins[0].shape, ins[1].shape)


def _same_shape(ins: Arrays, attrs: Attrs) -> Tuple[int, ...]:
    return ins[0].shape


_register(Primitive(
    "add",
    lambda ins, attrs, out: np.add(ins[0], ins[1], out=out),
    lambda g, ins, out, res, attrs, needed: (
        _unbroadcast(g, ins[0].shape) if needed[0] else None,
        _unbroadcast(g, ins[1].shape) if needed[1] else None,
    ),
    kind="binary_ew", out_shape=_broadcast_shape,
))

_register(Primitive(
    "sub",
    lambda ins, attrs, out: np.subtract(ins[0], ins[1], out=out),
    lambda g, ins, out, res, attrs, needed: (
        _unbroadcast(g, ins[0].shape) if needed[0] else None,
        _unbroadcast(-g, ins[1].shape) if needed[1] else None,
    ),
    kind="binary_ew", out_shape=_broadcast_shape,
))

_register(Primitive(
    "mul",
    lambda ins, attrs, out: np.multiply(ins[0], ins[1], out=out),
    lambda g, ins, out, res, attrs, needed: (
        _unbroadcast(g * ins[1], ins[0].shape) if needed[0] else None,
        _unbroadcast(g * ins[0], ins[1].shape) if needed[1] else None,
    ),
    kind="binary_ew", out_shape=_broadcast_shape,
))

_register(Primitive(
    "div",
    lambda ins, attrs, out: np.divide(ins[0], ins[1], out=out),
    lambda g, ins, out, res, attrs, needed: (
        _unbroadcast(g / ins[1], ins[0].shape) if needed[0] else None,
        _unbroadcast(-g * ins[0] / (ins[1] ** 2), ins[1].shape)
        if needed[1] else None,
    ),
    kind="binary_ew", out_shape=_broadcast_shape,
))


# -- elementwise unaries -----------------------------------------------------


_register(Primitive(
    "neg",
    lambda ins, attrs, out: np.negative(ins[0], out=out),
    lambda g, ins, out, res, attrs, needed: ((-g) if needed[0] else None,),
    kind="unary_ew", out_shape=_same_shape,
))

_register(Primitive(
    "pow",
    lambda ins, attrs, out: np.power(ins[0], attrs["exponent"], out=out),
    lambda g, ins, out, res, attrs, needed: (
        (g * attrs["exponent"] * ins[0] ** (attrs["exponent"] - 1))
        if needed[0] else None,
    ),
    kind="unary_ew", out_shape=_same_shape,
))

_register(Primitive(
    "tanh",
    lambda ins, attrs, out: np.tanh(ins[0], out=out),
    lambda g, ins, out, res, attrs, needed: (
        (g * (1.0 - out ** 2)) if needed[0] else None,
    ),
    kind="unary_ew", out_shape=_same_shape,
))

_register(Primitive(
    "relu",
    # exact Tensor.relu numerics: x * (x > 0), not maximum(x, 0)
    lambda ins, attrs, out: np.multiply(ins[0], ins[0] > 0.0, out=out),
    lambda g, ins, out, res, attrs, needed: (
        (g * (ins[0] > 0.0)) if needed[0] else None,
    ),
    kind="unary_ew", out_shape=_same_shape,
))

_register(Primitive(
    "sigmoid",
    lambda ins, attrs, out: _finish(
        1.0 / (1.0 + np.exp(-np.clip(ins[0], -500.0, 500.0))), out
    ),
    lambda g, ins, out, res, attrs, needed: (
        (g * out * (1.0 - out)) if needed[0] else None,
    ),
    kind="unary_ew", out_shape=_same_shape,
))

_register(Primitive(
    "exp",
    lambda ins, attrs, out: np.exp(np.clip(ins[0], -700.0, 700.0), out=out),
    lambda g, ins, out, res, attrs, needed: ((g * out) if needed[0] else None,),
    kind="unary_ew", out_shape=_same_shape,
))

_register(Primitive(
    "log",
    lambda ins, attrs, out: np.log(np.maximum(ins[0], 1e-300), out=out),
    lambda g, ins, out, res, attrs, needed: (
        (g / np.maximum(ins[0], 1e-300)) if needed[0] else None,
    ),
    kind="unary_ew", out_shape=_same_shape,
))


# -- linear algebra ----------------------------------------------------------


def _matmul_fwd(ins: Arrays, attrs: Attrs, out) -> np.ndarray:
    a, b = ins
    if out is not None and a.ndim == 2 and b.ndim == 2:
        return np.matmul(a, b, out=out)
    return _finish(a @ b, out) if out is not None else a @ b


def _matmul_vjp(g, ins, out, res, attrs, needed):
    a, b = ins
    da = db = None
    if needed[0]:
        da = np.outer(g, b) if b.ndim == 1 else g @ b.T
    if needed[1]:
        db = np.outer(a, g) if a.ndim == 1 else a.T @ g
    return da, db


def _matmul_shape(ins: Arrays, attrs: Attrs):
    a, b = ins
    if a.ndim == 2 and b.ndim == 2:
        return (a.shape[0], b.shape[1])
    return np.broadcast_shapes(a.shape[:-1] + b.shape[1:])  # pragma: no cover


_register(Primitive("matmul", _matmul_fwd, _matmul_vjp, out_shape=_matmul_shape))


def _adj_matmul_fwd(ins: Arrays, attrs: Attrs, out) -> np.ndarray:
    matrix, h = ins
    return _finish(np.asarray(matrix @ h), out)


def _adj_matmul_vjp(g, ins, out, res, attrs, needed):
    matrix, _h = ins
    if not needed[1]:
        return None, None
    if hasattr(matrix, "tocsr"):  # scipy sparse: VJP is matrixᵀ @ grad
        return None, np.asarray(matrix.T.tocsr() @ g)
    return None, np.asarray(matrix).T @ g


_register(Primitive("adj_matmul", _adj_matmul_fwd, _adj_matmul_vjp))


# -- reductions --------------------------------------------------------------


def _reduce_shape(ins: Arrays, attrs: Attrs):
    a = ins[0]
    axis, keepdims = attrs.get("axis"), attrs.get("keepdims", False)
    if axis is None:
        return (1,) * a.ndim if keepdims else ()
    shape = list(a.shape)
    if keepdims:
        shape[axis] = 1
    else:
        del shape[axis]
    return tuple(shape)


def _sum_vjp(g, ins, out, res, attrs, needed):
    if not needed[0]:
        return (None,)
    a = ins[0]
    axis, keepdims = attrs.get("axis"), attrs.get("keepdims", False)
    g = np.asarray(g)
    if axis is not None and not keepdims:
        g = np.expand_dims(g, axis)
    return (np.broadcast_to(g, a.shape).copy(),)


_register(Primitive(
    "sum",
    lambda ins, attrs, out: _finish(
        ins[0].sum(axis=attrs.get("axis"), keepdims=attrs.get("keepdims", False)),
        out,
    ),
    _sum_vjp,
    out_shape=_reduce_shape,
))


def _max_vjp(g, ins, out, res, attrs, needed):
    if not needed[0]:
        return (None,)
    a = ins[0]
    axis, keepdims = attrs["axis"], attrs.get("keepdims", False)
    expanded = a.max(axis=axis, keepdims=True)
    mask = a == expanded
    counts = mask.sum(axis=axis, keepdims=True)
    g = np.asarray(g)
    if not keepdims:
        g = np.expand_dims(g, axis)
    return (mask * g / counts,)


_register(Primitive(
    "max",
    lambda ins, attrs, out: _finish(
        ins[0].max(axis=attrs["axis"], keepdims=attrs.get("keepdims", False)),
        out,
    ),
    _max_vjp,
    out_shape=_reduce_shape,
))


# -- shape / gather (view-producing ops are not ``fresh``) -------------------


_register(Primitive(
    "reshape",
    lambda ins, attrs, out: ins[0].reshape(attrs["shape"]),
    lambda g, ins, out, res, attrs, needed: (
        g.reshape(ins[0].shape) if needed[0] else None,
    ),
    fresh=False,
))

_register(Primitive(
    "transpose",
    lambda ins, attrs, out: ins[0].T,
    lambda g, ins, out, res, attrs, needed: (g.T if needed[0] else None,),
    fresh=False,
))


def _index_vjp(g, ins, out, res, attrs, needed):
    if not needed[0]:
        return (None,)
    key = attrs["key"]
    grad_in = np.zeros_like(ins[0])
    if _is_basic_index(key):
        grad_in[key] += g
    else:
        np.add.at(grad_in, key, g)
    return (grad_in,)


_register(Primitive(
    "index",
    lambda ins, attrs, out: ins[0][attrs["key"]],
    _index_vjp,
    fresh=False,
))


def _gather_vjp(g, ins, out, res, attrs, needed):
    if not needed[0]:
        return (None,)
    grad_in = np.zeros_like(ins[0])
    np.add.at(grad_in, attrs["indices"], g)
    return (grad_in,)


_register(Primitive(
    "gather",
    lambda ins, attrs, out: (
        np.take(ins[0], attrs["indices"], axis=0, out=out)
        if out is not None else ins[0][attrs["indices"]]
    ),
    _gather_vjp,
    out_shape=lambda ins, attrs: attrs["indices"].shape + ins[0].shape[1:],
))


def _concat_fwd(ins: Arrays, attrs: Attrs, out) -> np.ndarray:
    axis = attrs.get("axis", 0)
    if out is not None:
        return np.concatenate(ins, axis=axis, out=out)
    return np.concatenate(ins, axis=axis)


def _concat_vjp(g, ins, out, res, attrs, needed):
    axis = attrs.get("axis", 0)
    offsets = np.cumsum([0] + [a.shape[axis] for a in ins])
    grads = []
    for pos, a in enumerate(ins):
        if not needed[pos]:
            grads.append(None)
            continue
        index = [slice(None)] * g.ndim
        index[axis] = slice(offsets[pos], offsets[pos + 1])
        grads.append(g[tuple(index)])
    return tuple(grads)


def _concat_shape(ins: Arrays, attrs: Attrs):
    axis = attrs.get("axis", 0)
    shape = list(ins[0].shape)
    shape[axis] = sum(a.shape[axis] for a in ins)
    return tuple(shape)


_register(Primitive("concat", _concat_fwd, _concat_vjp, out_shape=_concat_shape))


# -- data-dependent ops (carry residuals for backward) -----------------------


def _sort_pool_indices(x: np.ndarray, sizes, k: int) -> np.ndarray:
    """Per-segment stable descending argsort of the last channel, truncated
    to ``k`` and padded with the sentinel row ``total`` — byte-identical to
    ``SortPooling.segment_call``'s per-segment ``np.argsort(-seg, "stable")``
    loop (lexsort and argsort share the same stable ordering semantics)."""
    sizes = np.asarray(sizes, dtype=np.int64)
    total = int(x.shape[0])
    num = int(sizes.shape[0])
    seg_ids = np.repeat(np.arange(num), sizes)
    order = np.lexsort((-x[:, -1], seg_ids))
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    k = int(k)
    indices = np.full(num * k, total, dtype=np.int64)
    for g in range(num):
        take = min(int(sizes[g]), k)
        indices[g * k : g * k + take] = order[offsets[g] : offsets[g] + take]
    return indices


def _segment_sort_pool_fwd_res(ins: Arrays, attrs: Attrs):
    x, sizes = ins
    indices = _sort_pool_indices(x, sizes, attrs["k"])
    return _segment_sort_pool_apply(x, indices, None), indices


def _segment_sort_pool_apply(x, indices, out):
    total = x.shape[0]
    padded = indices == total
    safe = np.where(padded, 0, indices)
    result = np.take(x, safe, axis=0, out=out)
    result[padded] = 0.0
    return result


def _segment_sort_pool_fwd(ins: Arrays, attrs: Attrs, out) -> np.ndarray:
    x, sizes = ins
    return _segment_sort_pool_apply(x, _sort_pool_indices(x, sizes, attrs["k"]), out)


def _segment_sort_pool_vjp(g, ins, out, res, attrs, needed):
    if not needed[0]:
        return None, None
    x = ins[0]
    indices = res
    grad_in = np.zeros_like(x)
    live = indices < x.shape[0]
    np.add.at(grad_in, indices[live], g[live])
    return grad_in, None


_register(Primitive(
    "segment_sort_pool",
    _segment_sort_pool_fwd,
    _segment_sort_pool_vjp,
    out_shape=lambda ins, attrs: (
        len(ins[1]) * int(attrs["k"]),
    ) + ins[0].shape[1:],
    fwd_res=_segment_sort_pool_fwd_res,
))


def _dropout_fwd_res(ins: Arrays, attrs: Attrs):
    x = ins[0]
    mask = dropout_mask(x.shape, attrs["rate"], attrs["rng"])
    return x * mask, mask


def _dropout_fwd(ins: Arrays, attrs: Attrs, out) -> np.ndarray:
    x = ins[0]
    mask = dropout_mask(x.shape, attrs["rate"], attrs["rng"])
    return np.multiply(x, mask, out=out)


_register(Primitive(
    "dropout",
    _dropout_fwd,
    lambda g, ins, out, res, attrs, needed: (
        (g * res) if needed[0] else None, ),
    out_shape=_same_shape,
    fwd_res=_dropout_fwd_res,
))


# -- quantized inference primitives (precision="fast") -----------------------
#
# Int8 counterparts of the hot ops, emitted by
# :func:`repro.runtime.qtape.quantize_tape` when an Engine replays a tape at
# precision="fast".  They use *simulated* quantization: operands are snapped
# onto the symmetric int8 grid (round-tripped through quantize/dequantize)
# but kept in the tape's float32 dtype, so the heavy contraction stays a
# BLAS GEMM — numerically identical to dequantized-int8 arithmetic (every
# grid point is exactly representable in float32), at float speed.  The
# ``act_scale`` attr carries the calibrated activation scale; ``None`` falls
# back to a dynamic per-call abs-max scale.  Inference-only: their VJPs
# raise, and the tracer never emits them — only tape rewriting does.


def _quantized_vjp(g, ins, out, res, attrs, needed):
    raise ModelError(
        "quantized primitives are inference-only and have no VJP; "
        "train and backprop through the exact (float) tape"
    )


def _grid_snap(x: np.ndarray, scale) -> np.ndarray:
    """Fresh copy of ``x`` snapped to the int8 grid, in ``x``'s dtype.

    With a calibrated ``scale`` the grid saturates at +/-127 (that is what
    a recorded scale *means*: activations past the calibration-time peak
    clip).  A dynamic scale (``scale=None``) is this call's abs-max / 127,
    so no value can land past the grid edge and the clip pass is skipped.
    """
    if scale is None:
        from repro.nn.quantize import symmetric_scale

        s = x.dtype.type(symmetric_scale(x))
        snapped = x / s
        np.rint(snapped, out=snapped)
        snapped *= s
        return snapped
    s = x.dtype.type(scale)
    snapped = x / s
    np.rint(snapped, out=snapped)
    np.clip(snapped, -127, 127, out=snapped)
    snapped *= s
    return snapped


def _qmatmul_fwd(ins: Arrays, attrs: Attrs, out) -> np.ndarray:
    a, w = ins  # w arrives pre-quantized (round-tripped) from the tape
    scale = attrs.get("act_scale")
    if scale is not None and attrs.get("folded"):
        # calibrated + scale folded into the baked weight (w = w_q * s):
        # the activation stays in int8 *units*, saving the rescale pass —
        # this is exactly the (a_q @ w_q) * s_a * s_w int8-GEMM algebra
        s = a.dtype.type(scale)
        aq = a / s
        np.rint(aq, out=aq)
        np.clip(aq, -127, 127, out=aq)
    else:
        aq = _grid_snap(a, scale)
    if out is not None and aq.ndim == 2 and w.ndim == 2:
        return np.matmul(aq, w, out=out)
    return _finish(aq @ w, out) if out is not None else aq @ w


_register(Primitive(
    "qmatmul", _qmatmul_fwd, _quantized_vjp, out_shape=_matmul_shape,
))


def _qadj_matmul_fwd(ins: Arrays, attrs: Attrs, out) -> np.ndarray:
    matrix, h = ins
    hq = _grid_snap(h, attrs.get("act_scale"))
    return _finish(np.asarray(matrix @ hq), out)


_register(Primitive("qadj_matmul", _qadj_matmul_fwd, _quantized_vjp))


def _qsegment_sort_pool_fwd(ins: Arrays, attrs: Attrs, out) -> np.ndarray:
    x, sizes = ins
    pooled = _segment_sort_pool_apply(
        x, _sort_pool_indices(x, sizes, attrs["k"]), out
    )
    # snap the pooled activations in place (the buffer is op-owned)
    scale = attrs.get("act_scale")
    if scale is None:
        from repro.nn.quantize import symmetric_scale

        s = pooled.dtype.type(symmetric_scale(pooled))
        pooled /= s
        np.rint(pooled, out=pooled)
        pooled *= s
        return pooled
    s = pooled.dtype.type(scale)
    pooled /= s
    np.rint(pooled, out=pooled)
    np.clip(pooled, -127, 127, out=pooled)
    pooled *= s
    return pooled


_register(Primitive(
    "qsegment_sort_pool",
    _qsegment_sort_pool_fwd,
    _quantized_vjp,
    out_shape=lambda ins, attrs: (
        len(ins[1]) * int(attrs["k"]),
    ) + ins[0].shape[1:],
))


def get_primitive(name: str) -> Primitive:
    prim = PRIMITIVES.get(name)
    if prim is None:
        raise ModelError(f"unknown primitive {name!r}")
    return prim
