"""Parameter initialization schemes."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RngLike, ensure_rng


def glorot_uniform(shape, rng: RngLike = None) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    generator = ensure_rng(rng)
    fan_in = shape[0] if len(shape) > 1 else shape[0]
    fan_out = shape[1] if len(shape) > 1 else shape[0]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return generator.uniform(-limit, limit, size=shape)


def zeros_init(shape, rng: RngLike = None) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def orthogonal(shape, rng: RngLike = None) -> np.ndarray:
    """Orthogonal initialization (recurrent weight matrices)."""
    generator = ensure_rng(rng)
    a = generator.normal(size=shape)
    q, r = np.linalg.qr(a if shape[0] >= shape[1] else a.T)
    q = q * np.sign(np.diag(r))
    return q if shape[0] >= shape[1] else q.T
