"""Reverse-mode autograd on numpy arrays.

A :class:`Tensor` wraps an ``ndarray`` and records the operations producing
it on a tape (parents + a backward closure).  ``Tensor.backward()``
topologically sorts the tape and accumulates gradients.  Broadcasting is
supported by summing gradients over broadcast axes (:func:`_unbroadcast`).

The engine is deliberately small: exactly the operations the paper's models
need (DGCNN, LSTM, multi-view fusion), each with a hand-written VJP, all
checked against finite differences in the test suite.
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ModelError

_GRAD_ENABLED = [True]


@contextlib.contextmanager
def no_grad():
    """Context manager disabling tape recording (inference mode)."""
    _GRAD_ENABLED.append(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.pop()


def grad_enabled() -> bool:
    return _GRAD_ENABLED[-1]


class Tensor:
    """A numpy array with an autograd tape."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad and grad_enabled()
        self._parents = _parents if self.requires_grad else ()
        self._backward = _backward if self.requires_grad else None

    # -- properties ---------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def __repr__(self) -> str:
        grad_flag = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    # -- autograd ----------------------------------------------------------------

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy() if isinstance(grad, np.ndarray) else np.asarray(grad)
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor (must be scalar unless grad given)."""
        if not self.requires_grad:
            raise ModelError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise ModelError(
                    "backward() without an explicit gradient requires a scalar"
                )
            grad = np.ones_like(self.data)
        # topological order of the tape
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # -- helpers ------------------------------------------------------------------

    @staticmethod
    def _promote(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def _make(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        return Tensor(data, requires, parents, backward if requires else None)

    # -- arithmetic -------------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = self._promote(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.data.shape))

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        other = self._promote(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __sub__(self, other) -> "Tensor":
        other = self._promote(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-grad, other.data.shape))

        return self._make(out_data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return self._promote(other).__sub__(self)

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make(out_data, (self,), backward)

    def __truediv__(self, other) -> "Tensor":
        other = self._promote(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(
                        -grad * self.data / (other.data**2), other.data.shape
                    )
                )

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._promote(other).__truediv__(self)

    def __matmul__(self, other) -> "Tensor":
        other = self._promote(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data))
                else:
                    self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad))
                else:
                    other._accumulate(self.data.T @ grad)

        return self._make(out_data, (self, other), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise ModelError("Tensor ** only supports scalar exponents")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    # -- elementwise nonlinearities -------------------------------------------------

    def exp(self) -> "Tensor":
        out_data = np.exp(np.clip(self.data, -700.0, 700.0))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(np.maximum(self.data, 1e-300))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / np.maximum(self.data, 1e-300))

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -500.0, 500.0)))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0.0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    # -- reductions ------------------------------------------------------------------

    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                g = np.asarray(grad)
                if axis is not None and not keepdims:
                    g = np.expand_dims(g, axis)
                self._accumulate(np.broadcast_to(g, self.data.shape).copy())

        return self._make(out_data, (self,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        expanded = self.data.max(axis=axis, keepdims=True)
        mask = self.data == expanded
        counts = mask.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                g = np.asarray(grad)
                if not keepdims:
                    g = np.expand_dims(g, axis)
                self._accumulate(mask * g / counts)

        return self._make(out_data, (self,), backward)

    # -- shape manipulation --------------------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return self._make(out_data, (self,), backward)

    def transpose(self) -> "Tensor":
        out_data = self.data.T

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.T)

        return self._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]
        # slices / ints never alias, so plain += works; integer-array keys
        # may repeat indices and need the unbuffered np.add.at
        simple = _is_basic_index(key)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                # accumulate straight into .grad: slicing happens inside hot
                # per-timestep loops and a fresh zeros_like per step would
                # dominate the backward pass
                if self.grad is None:
                    self.grad = np.zeros_like(self.data)
                if simple:
                    self.grad[key] += grad
                else:
                    np.add.at(self.grad, key, grad)

        return self._make(out_data, (self,), backward)

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Row gather (embedding lookup / SortPooling selection)."""
        indices = np.asarray(indices, dtype=np.int64)
        out_data = self.data[indices]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if self.grad is None:
                    self.grad = np.zeros_like(self.data)
                np.add.at(self.grad, indices, grad)

        return self._make(out_data, (self,), backward)

    def pad_rows(self, total_rows: int) -> "Tensor":
        """Zero-pad along axis 0 up to ``total_rows`` (SortPooling padding)."""
        rows, cols = self.data.shape
        if rows > total_rows:
            raise ModelError(f"cannot pad {rows} rows down to {total_rows}")
        if rows == total_rows:
            return self
        out_data = np.zeros((total_rows, cols), dtype=self.data.dtype)
        out_data[:rows] = self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad[:rows])

        return self._make(out_data, (self,), backward)


def as_tensor(value, requires_grad: bool = False) -> Tensor:
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


def _active_trace(*tensors):
    """The tape-recording context of any TraceTensor operand, if present.

    Duck-typed (``_trace`` attribute) so the autograd core stays free of a
    dependency on :mod:`repro.runtime.tape`, which imports this module.
    """
    for t in tensors:
        trace = getattr(t, "_trace", None)
        if trace is not None:
            return trace
    return None


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation."""
    tensors = [as_tensor(t) for t in tensors]
    trace = _active_trace(*tensors)
    if trace is not None:
        return trace.concat(tensors, axis)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    requires = any(t.requires_grad for t in tensors)
    return Tensor(out_data, requires, tuple(tensors), backward if requires else None)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stacking along a new axis."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        for pos, tensor in enumerate(tensors):
            if tensor.requires_grad:
                tensor._accumulate(np.take(grad, pos, axis=axis))

    requires = any(t.requires_grad for t in tensors)
    return Tensor(out_data, requires, tuple(tensors), backward if requires else None)


def is_sparse_matrix(value) -> bool:
    """True when ``value`` is a scipy sparse matrix/array (duck-typed so the
    autograd core stays importable without scipy)."""
    return hasattr(value, "toarray") and hasattr(value, "tocsr")


def sparse_matmul(matrix, h: Tensor) -> Tensor:
    """Differentiable ``matrix @ h`` for a *constant* scipy sparse ``matrix``.

    ``matrix`` is ``(m, n)`` sparse, ``h`` is a ``(n, f)`` Tensor; the result
    is a dense ``(m, f)`` Tensor.  Only ``h`` receives gradients (the matrix
    is graph structure, not a parameter): the VJP is ``matrixᵀ @ grad``.
    Used for block-diagonal batched graph propagation where materializing the
    dense ``(m, n)`` adjacency would be quadratic in the batch size.
    """
    h = as_tensor(h)
    trace = _active_trace(h)
    if trace is not None:
        return trace.adj_matmul(matrix, h)
    out_data = np.asarray(matrix @ h.data)
    matrix_t = matrix.T.tocsr()

    def backward(grad: np.ndarray) -> None:
        if h.requires_grad:
            h._accumulate(np.asarray(matrix_t @ grad))

    requires = h.requires_grad
    return Tensor(out_data, requires, (h,), backward if requires else None)


def _is_basic_index(key) -> bool:
    """True when ``key`` uses only ints/slices (basic, non-aliasing indexing)."""
    parts = key if isinstance(key, tuple) else (key,)
    return all(isinstance(p, (int, np.integer, slice)) or p is Ellipsis for p in parts)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    grad = np.asarray(grad)
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad
