"""Losses and stateless neural functions."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ModelError
from repro.nn.tensor import Tensor
from repro.utils.rng import RngLike, ensure_rng


def softmax(logits: Tensor, temperature: float = 1.0) -> Tensor:
    """Row-wise softmax with an optional temperature (paper uses T=0.5)."""
    scaled = logits * (1.0 / temperature)
    shifted = scaled - Tensor(scaled.data.max(axis=-1, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=-1, keepdims=True)


def softmax_cross_entropy(
    logits: Tensor, label: int, temperature: float = 1.0
) -> Tensor:
    """Cross entropy of one example; the paper's "softmax loss function"
    with temperature parameter (Section IV-B: temperature 0.5)."""
    if logits.ndim != 1:
        raise ModelError("softmax_cross_entropy expects a 1-D logit vector")
    n = logits.shape[0]
    if not 0 <= label < n:
        raise ModelError(f"label {label} out of range for {n} classes")
    probs = softmax(logits, temperature)
    return -(probs[int(label)].log())


def softmax_cross_entropy_batch(
    logits: Tensor, labels, temperature: float = 1.0, reduction: str = "mean"
) -> Tensor:
    """Cross entropy over a (batch, classes) logit matrix.

    ``reduction`` is ``"mean"`` (default) or ``"sum"``.  The batched
    training path uses ``"sum"`` so one packed loss equals the sum of
    per-sample :func:`softmax_cross_entropy` losses — row ``i`` of a packed
    logit matrix contributes exactly what sample ``i`` would contribute on
    the per-sample path.
    """
    if logits.ndim != 2:
        raise ModelError("softmax_cross_entropy_batch expects (batch, classes)")
    labels = np.asarray(labels, dtype=np.int64)
    batch, classes = logits.shape
    if labels.shape != (batch,) or labels.min() < 0 or labels.max() >= classes:
        raise ModelError("labels do not match the logit batch")
    probs = softmax(logits, temperature)
    rows = np.arange(batch)
    picked = probs[rows, labels]
    nll = -(picked.log())
    if reduction == "sum":
        return nll.sum()
    if reduction == "mean":
        return nll.mean()
    raise ModelError(f"unknown reduction {reduction!r} (expected mean|sum)")


def binary_cross_entropy_with_logits(logit: Tensor, target: float) -> Tensor:
    """Numerically-stable BCE on a scalar logit."""
    prob = logit.sigmoid()
    eps = 1e-12
    return -(
        Tensor(float(target)) * (prob + eps).log()
        + Tensor(1.0 - float(target)) * (Tensor(1.0) - prob + eps).log()
    )


def dropout_mask(
    shape, rate: float, rng: RngLike = None
) -> Optional[np.ndarray]:
    """Inverted-dropout mask, or None when rate is 0."""
    if rate <= 0.0:
        return None
    if rate >= 1.0:
        raise ModelError("dropout rate must be < 1")
    generator = ensure_rng(rng)
    keep = 1.0 - rate
    return (generator.random(shape) < keep).astype(np.float64) / keep
