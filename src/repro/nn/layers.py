"""Neural layers: Module base, Dense, GraphConv, Conv1D, SortPooling, Dropout.

GraphConv implements the DGCNN propagation rule (Zhang et al. 2018),
``H' = act(D̃⁻¹ Ã H W)`` with Ã = A + I; :func:`normalized_adjacency`
precomputes D̃⁻¹Ã for a graph once, since the adjacency is constant per
example.  SortPooling sorts nodes by their last feature channel and keeps
the top ``k`` rows (zero-padded), exactly as in the DGCNN paper / Fig. 6.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.nn.functional import dropout_mask
from repro.nn.init import glorot_uniform, zeros_init
from repro.nn.tensor import (
    Tensor,
    as_tensor,
    concat,
    is_sparse_matrix,
    sparse_matmul,
)
from repro.utils.rng import RngLike, ensure_rng


class Parameter(Tensor):
    """A trainable tensor."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class with parameter discovery and train/eval mode."""

    def __init__(self) -> None:
        self.training = True

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        seen = set()
        for value in self.__dict__.values():
            for param in _collect(value):
                if id(param) not in seen:
                    seen.add(id(param))
                    params.append(param)
        return params

    def named_parameters(self) -> Dict[str, Parameter]:
        out: Dict[str, Parameter] = {}
        for name, value in self.__dict__.items():
            for sub_name, param in _collect_named(value):
                key = f"{name}{sub_name}"
                if key in out:
                    raise ModelError(f"duplicate parameter name {key!r}")
                out[key] = param
        return out

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in self.__dict__.values():
            for module in _collect_modules(value):
                module._set_mode(training)

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())


def _collect(value) -> Iterator[Parameter]:
    if isinstance(value, Parameter):
        yield value
    elif isinstance(value, Module):
        yield from value.parameters()
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _collect(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _collect(item)


def _collect_named(value) -> Iterator[Tuple[str, Parameter]]:
    if isinstance(value, Parameter):
        yield "", value
    elif isinstance(value, Module):
        for name, param in value.named_parameters().items():
            yield f".{name}", param
    elif isinstance(value, (list, tuple)):
        for pos, item in enumerate(value):
            for name, param in _collect_named(item):
                yield f".{pos}{name}", param
    elif isinstance(value, dict):
        for key, item in value.items():
            for name, param in _collect_named(item):
                yield f".{key}{name}", param


def _collect_modules(value) -> Iterator[Module]:
    if isinstance(value, Module):
        yield value
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _collect_modules(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _collect_modules(item)


class Dense(Module):
    """Fully connected layer ``y = act(x W + b)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: Optional[str] = None,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        rng = ensure_rng(rng)
        self.weight = Parameter(glorot_uniform((in_features, out_features), rng))
        self.bias = Parameter(zeros_init((out_features,)))
        self.activation = activation
        self.in_features = in_features
        self.out_features = out_features

    def __call__(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        if x.shape[-1] != self.in_features:
            raise ModelError(
                f"Dense expected last dim {self.in_features}, got {x.shape}"
            )
        out = x @ self.weight + self.bias
        return _activate(out, self.activation)


class GraphConv(Module):
    """DGCNN graph convolution: ``H' = act(Â H W)`` with Â precomputed."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: str = "tanh",
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        self.weight = Parameter(glorot_uniform((in_features, out_features), rng))
        self.activation = activation
        self.in_features = in_features
        self.out_features = out_features

    def __call__(self, h: Tensor, adj_norm) -> Tensor:
        """Propagate ``(n, in_features)`` node rows through ``adj_norm``.

        ``adj_norm`` is a dense ``(n, n)`` ndarray for one graph, or a scipy
        sparse block-diagonal matrix for a packed batch of graphs (see
        :mod:`repro.nn.batching`) — the propagation never mixes rows across
        blocks, so both paths compute the same per-graph result.
        """
        h = as_tensor(h)
        if h.shape[0] != adj_norm.shape[0]:
            raise ModelError(
                f"GraphConv: {h.shape[0]} node rows vs {adj_norm.shape[0]} adj rows"
            )
        trace = getattr(h, "_trace", None)
        if trace is not None:
            # tape recording: the adjacency is an execution-time input slot
            propagated = trace.adj_matmul(adj_norm, h)
        elif is_sparse_matrix(adj_norm):
            propagated = sparse_matmul(adj_norm, h)
        else:
            propagated = Tensor(adj_norm) @ h
        out = propagated @ self.weight
        return _activate(out, self.activation)


def normalized_adjacency(
    adjacency: np.ndarray, add_self_loops: bool = True
) -> np.ndarray:
    """Row-normalized adjacency ``D̃⁻¹ Ã`` used by the DGCNN propagation."""
    adjacency = np.asarray(adjacency, dtype=np.float64)
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ModelError(f"adjacency must be square, got {adjacency.shape}")
    a_tilde = adjacency + np.eye(adjacency.shape[0]) if add_self_loops else adjacency
    degrees = a_tilde.sum(axis=1)
    degrees[degrees == 0.0] = 1.0
    return a_tilde / degrees[:, None]


class SortPooling(Module):
    """DGCNN SortPooling: sort nodes by the last feature channel, keep k."""

    def __init__(self, k: int) -> None:
        super().__init__()
        if k <= 0:
            raise ModelError("SortPooling k must be positive")
        self.k = k

    def __call__(self, h: Tensor) -> Tensor:
        n = h.shape[0]
        # descending sort by last channel; stable for reproducibility
        order = np.argsort(-h.data[:, -1], kind="stable")
        if n >= self.k:
            selected = h.take_rows(order[: self.k])
            return selected
        selected = h.take_rows(order)
        return selected.pad_rows(self.k)

    def segment_call(self, h: Tensor, sizes: Sequence[int]) -> Tensor:
        """Per-segment SortPooling over a packed node matrix.

        ``h`` is ``(sum(sizes), channels)`` — the node rows of ``len(sizes)``
        graphs stacked contiguously; segment ``g`` occupies rows
        ``[offset_g, offset_g + sizes[g])``.  Each segment is sorted and
        truncated/zero-padded independently, exactly like the per-graph
        ``__call__``, and the results are restacked: the output is
        ``(len(sizes) * k, channels)`` with graph ``g`` at rows
        ``[g*k, (g+1)*k)``.
        """
        h = as_tensor(h)
        total = int(sum(sizes))
        if h.shape[0] != total:
            raise ModelError(
                f"SortPooling.segment_call: {h.shape[0]} rows vs "
                f"sum(sizes)={total}"
            )
        trace = getattr(h, "_trace", None)
        if trace is not None:
            # the sort order is data-dependent, so tape recording emits a
            # dynamic primitive instead of baking this batch's indices
            return trace.segment_sort_pool(h, sizes, self.k)
        channels = h.shape[1]
        # gather through an appended zero row so per-segment padding stays a
        # single differentiable take_rows instead of a concat per graph
        zero_row = total
        indices = np.full(len(sizes) * self.k, zero_row, dtype=np.int64)
        offset = 0
        for g, n in enumerate(sizes):
            order = np.argsort(-h.data[offset : offset + n, -1], kind="stable")
            take = min(n, self.k)
            indices[g * self.k : g * self.k + take] = offset + order[:take]
            offset += n
        extended = concat([h, Tensor(np.zeros((1, channels)))], axis=0)
        return extended.take_rows(indices)


class Conv1D(Module):
    """1-D convolution over a (length, channels) input, stride support.

    Implemented with an unfold + matmul so the whole op stays on BLAS; the
    DGCNN uses kernel = total channel count with equal stride (one output
    per node row) followed by a smaller kernel conv.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        activation: Optional[str] = "relu",
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        rng = ensure_rng(rng)
        self.weight = Parameter(
            glorot_uniform((kernel_size * in_channels, out_channels), rng)
        )
        self.bias = Parameter(zeros_init((out_channels,)))
        self.kernel_size = kernel_size
        self.stride = stride
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.activation = activation

    def __call__(self, x: Tensor) -> Tensor:
        length, channels = x.shape
        if channels != self.in_channels:
            raise ModelError(
                f"Conv1D expected {self.in_channels} channels, got {channels}"
            )
        n_out = (length - self.kernel_size) // self.stride + 1
        if n_out <= 0:
            raise ModelError(
                f"Conv1D input length {length} too short for kernel "
                f"{self.kernel_size} / stride {self.stride}"
            )
        # gather patch rows: indices (n_out, kernel) into the length axis
        starts = np.arange(n_out) * self.stride
        patch_rows = starts[:, None] + np.arange(self.kernel_size)[None, :]
        patches = x.take_rows(patch_rows.reshape(-1)).reshape(
            n_out, self.kernel_size * channels
        )
        out = patches @ self.weight + self.bias
        return _activate(out, self.activation)

    def segment_call(self, x: Tensor, num_segments: int, length: int) -> Tensor:
        """Apply the convolution independently per contiguous segment.

        ``x`` is ``(num_segments * length, in_channels)`` — ``num_segments``
        sequences of identical ``length`` stacked along axis 0.  Patches never
        straddle a segment boundary; the output is
        ``(num_segments * n_out, out_channels)`` with
        ``n_out = (length - kernel) // stride + 1``, segment ``g`` at rows
        ``[g*n_out, (g+1)*n_out)`` — row-for-row identical to calling the
        layer on each segment separately.
        """
        x = as_tensor(x)
        if x.shape != (num_segments * length, self.in_channels):
            raise ModelError(
                f"Conv1D.segment_call expected shape "
                f"({num_segments * length}, {self.in_channels}), got {x.shape}"
            )
        n_out = (length - self.kernel_size) // self.stride + 1
        if n_out <= 0:
            raise ModelError(
                f"Conv1D segment length {length} too short for kernel "
                f"{self.kernel_size} / stride {self.stride}"
            )
        starts = np.arange(n_out) * self.stride
        base = np.arange(num_segments) * length
        patch_rows = (
            base[:, None, None]
            + starts[None, :, None]
            + np.arange(self.kernel_size)[None, None, :]
        )
        patches = x.take_rows(patch_rows.reshape(-1)).reshape(
            num_segments * n_out, self.kernel_size * self.in_channels
        )
        out = patches @ self.weight + self.bias
        return _activate(out, self.activation)


class MaxPool1D(Module):
    """Max pooling over the length axis of a (length, channels) input."""

    def __init__(self, pool_size: int = 2) -> None:
        super().__init__()
        if pool_size <= 0:
            raise ModelError("pool_size must be positive")
        self.pool_size = pool_size

    def __call__(self, x: Tensor) -> Tensor:
        length, channels = x.shape
        n_out = length // self.pool_size
        if n_out == 0:
            return x  # shorter than one window: identity (graph too small)
        trimmed = x[: n_out * self.pool_size]
        windows = trimmed.reshape(n_out, self.pool_size, channels)
        return windows.max(axis=1)

    def segment_call(self, x: Tensor, num_segments: int, length: int) -> Tensor:
        """Pool each contiguous length-``length`` segment independently.

        ``x`` is ``(num_segments * length, channels)``; the output is
        ``(num_segments * n_out, channels)`` with ``n_out = length // pool``
        (identity when ``length < pool``, matching ``__call__``), segment
        ``g`` at rows ``[g*n_out, (g+1)*n_out)``.
        """
        x = as_tensor(x)
        channels = x.shape[1]
        if x.shape[0] != num_segments * length:
            raise ModelError(
                f"MaxPool1D.segment_call expected {num_segments * length} "
                f"rows, got {x.shape[0]}"
            )
        n_out = length // self.pool_size
        if n_out == 0:
            return x
        kept = n_out * self.pool_size
        if kept != length:
            segmented = x.reshape(num_segments, length, channels)
            x = segmented[:, :kept, :].reshape(num_segments * kept, channels)
        windows = x.reshape(num_segments * n_out, self.pool_size, channels)
        return windows.max(axis=1)


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, rate: float, rng: RngLike = None) -> None:
        super().__init__()
        self.rate = rate
        self._rng = ensure_rng(rng)

    def __call__(self, x: Tensor) -> Tensor:
        if not self.training or self.rate <= 0.0:
            return x
        trace = getattr(x, "_trace", None)
        if trace is not None:
            # masks are drawn from this layer's rng at tape execution time,
            # keeping the draw order identical to the interpreted path
            return trace.dropout(x, self.rate, self._rng)
        mask = dropout_mask(x.shape, self.rate, self._rng)
        return x * Tensor(mask)


def _activate(x: Tensor, activation: Optional[str]) -> Tensor:
    if activation is None or activation == "linear":
        return x
    if activation == "tanh":
        return x.tanh()
    if activation == "relu":
        return x.relu()
    if activation == "sigmoid":
        return x.sigmoid()
    raise ModelError(f"unknown activation {activation!r}")
