"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``table2``
    Print Table II (loop counts per application) from the composed suite.
``classify --app NAME``
    Profile one benchmark application and print per-loop oracle verdicts,
    pattern classes, and tool votes.
``suggest --app NAME [--program N]``
    Print one program of an application as annotated C-like source with
    OpenMP pragma suggestions.
``patterns --app NAME``
    Summarize the parallel-pattern distribution of an application.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from typing import List, Optional

from repro.analysis import (
    classify_all_loops,
    classify_all_patterns,
    render_report,
    suggest_parallelization,
)
from repro.benchsuite import build_app, app_names
from repro.experiments.table2 import format_table2, table2_dataset_statistics
from repro.ir.lowering import lower_program
from repro.ir.source_printer import program_to_source
from repro.ir.verify import verify_program
from repro.profiler import profile_program
from repro.tools import AutoParLite, DiscoPoPClassifier, PlutoLite


def _cmd_table2(_args) -> int:
    print(format_table2(table2_dataset_statistics()))
    return 0


def _cmd_classify(args) -> int:
    spec = build_app(args.app)
    print(f"{args.app} ({spec.suite}): {spec.loop_count} loops, "
          f"{len(spec.programs)} programs")
    header = (
        f"{'loop':<22}{'label':>6}{'oracle':>8}{'pattern':>12}"
        f"{'Pluto':>7}{'AutoPar':>9}{'DiscoPoP':>10}"
    )
    print(header)
    tools = (PlutoLite(), AutoParLite(), DiscoPoPClassifier())
    for program in spec.programs:
        ir = lower_program(program)
        verify_program(ir)
        report = profile_program(ir)
        oracle = classify_all_loops(ir, report)
        patterns = classify_all_patterns(program, ir, report)
        votes = {t.name: t.predict(program, ir, report) for t in tools}
        for loop_id, loop in spec.loops.items():
            if loop.program_name != program.name:
                continue
            short = "/".join(loop_id.split(":")[::2])
            print(
                f"{short:<22}"
                f"{'P' if loop.label else '-':>6}"
                f"{'P' if oracle[loop_id].parallel else '-':>8}"
                f"{patterns[loop_id].pattern.value:>12}"
                f"{'P' if votes['Pluto'].get(loop_id) else '-':>7}"
                f"{'P' if votes['AutoPar'].get(loop_id) else '-':>9}"
                f"{'P' if votes['DiscoPoP'].get(loop_id) else '-':>10}"
            )
    return 0


def _cmd_suggest(args) -> int:
    spec = build_app(args.app)
    if not 0 <= args.program < len(spec.programs):
        print(
            f"error: {args.app} has programs 0..{len(spec.programs) - 1}",
            file=sys.stderr,
        )
        return 2
    program = spec.programs[args.program]
    ir = lower_program(program)
    verify_program(ir)
    report = profile_program(ir)
    suggestions = suggest_parallelization(program, ir, report)
    print(render_report(suggestions))
    print()
    annotations = {lid: s.pragma for lid, s in suggestions.items() if s.pragma}
    print(program_to_source(program, annotations))
    return 0


def _cmd_patterns(args) -> int:
    spec = build_app(args.app)
    counts: Counter = Counter()
    for program in spec.programs:
        ir = lower_program(program)
        report = profile_program(ir)
        for result in classify_all_patterns(program, ir, report).values():
            counts[result.pattern.value] += 1
    print(f"{args.app}: parallel-pattern distribution over "
          f"{sum(counts.values())} loops")
    for pattern, count in counts.most_common():
        print(f"  {pattern:<12} {count:>4}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MV-GNN parallelism-discovery reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table2", help="print Table II").set_defaults(
        fn=_cmd_table2
    )

    classify = sub.add_parser(
        "classify", help="per-loop verdicts for one application"
    )
    classify.add_argument("--app", required=True, choices=app_names())
    classify.set_defaults(fn=_cmd_classify)

    suggest = sub.add_parser(
        "suggest", help="OpenMP suggestions for one program"
    )
    suggest.add_argument("--app", required=True, choices=app_names())
    suggest.add_argument("--program", type=int, default=0)
    suggest.set_defaults(fn=_cmd_suggest)

    patterns = sub.add_parser(
        "patterns", help="pattern distribution of one application"
    )
    patterns.add_argument("--app", required=True, choices=app_names())
    patterns.set_defaults(fn=_cmd_patterns)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # output piped into a pager/head that closed early: not an error
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
