"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``table2``
    Print Table II (loop counts per application) from the composed suite.
``classify --app NAME``
    Profile one benchmark application and print per-loop oracle verdicts,
    pattern classes, and tool votes.  With ``--batch`` an MV-GNN trained on
    the app's own loops classifies every sub-PEG through the batched
    inference runtime (:mod:`repro.runtime`) and a throughput/cache summary
    is appended.
``train --app NAME``
    Train an MV-GNN on an application's labeled loops through the batched
    training path (``--per-sample`` selects the reference per-sample path)
    and print the training curves plus epoch throughput.  Feature
    extraction goes through the runtime ``FeatureCache``, so a second run
    over the same app skips extraction entirely; ``--workers N`` fans the
    per-program extraction across processes.
``dataset [--workers N]``
    Assemble the full classification dataset (Section IV-A/IV-B) through
    the parallel fault-tolerant executor and print the assembly statistics:
    per-suite loop counts, drop reasons, retries, cache/shard hits, and the
    split summaries.  ``--tiny``/``--full`` select the configuration scale.
``serve [run] [--app NAME] [--port P] [--workers N]``
    Start the async micro-batching inference service (:mod:`repro.serve`):
    an MV-GNN trained on the app's labeled loops behind an HTTP API
    (``POST /v1/classify``, ``GET /metrics``, ...).  With ``--workers N``
    (N > 1) the service runs as a multi-process fleet — a supervisor
    pre-forks N engine workers, routes requests by content hash, respawns
    dead workers, and supports rolling restart / hot weight reload (see
    docs/OPERATIONS.md).  Runs until SIGINT or SIGTERM, then shuts down
    cleanly with exit code 130.  See docs/SERVING.md.
``serve reload [--host H] [--port P] [--checkpoint F]``
    Ask a running fleet server to hot-reload its model weights
    (``POST /admin/reload``), blue-green with zero dropped requests;
    ``--checkpoint`` names an npz from :func:`repro.nn.serialize.save_params`
    to load first.
``lint [--tiny|--fast|--full] [--strict] [--quick] [--json]``
    Run the :mod:`repro.lint` static consistency analyzer over the selected
    dataset configuration: IR rules on every program variant, PEG rules on
    the built graphs, dataset rules (duplicates, balance, structural
    validity) and the DS005 label cross-validation against the static
    dependence prover.  Exit code 0 = clean, 1 = findings at failing
    severity, 2 = the analyzer itself failed.  See docs/LINT.md.
``suggest --app NAME [--program N]``
    Print one program of an application as annotated C-like source with
    OpenMP pragma suggestions.
``patterns --app NAME``
    Summarize the parallel-pattern distribution of an application.
``advise [--app NAME | --tiny]``
    Run the execution-validated parallelization advisor
    (:mod:`repro.advisor`): fuse MV-GNN verdicts with the static prover
    and the dynamic oracle into per-loop advice plans, transform each
    advised loop into explicit thread chunks, and prove or refute the
    plan under simulated adversarial interleavings.  Prints a
    Table-IV-style per-app summary (advised / validated / refuted) plus
    the known-answer self-check (a planted race the scheduler must
    refute).  Exit 1 when the self-check fails.  See docs/ADVISOR.md.

Long-running commands (``serve``, ``train``, ``dataset``) map SIGTERM and
Ctrl-C to a clean shutdown with exit code 130 instead of a traceback.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from collections import Counter
from typing import List, Optional

from repro.errors import ReproError
from repro.analysis import (
    classify_all_loops,
    classify_all_patterns,
    render_report,
    suggest_parallelization,
)
from repro.benchsuite import build_app, app_names
from repro.experiments.table2 import format_table2, table2_dataset_statistics
from repro.ir.lowering import lower_program
from repro.ir.source_printer import program_to_source
from repro.ir.verify import verify_program
from repro.profiler import profile_program
from repro.tools import AutoParLite, DiscoPoPClassifier, PlutoLite


def _cmd_table2(_args) -> int:
    print(format_table2(table2_dataset_statistics()))
    return 0


def _build_app_engine(
    spec, batch_size: int, epochs: int, seed: int = 0, compile: bool = True,
    precision: str = "exact", calibration=None,
):
    """(engine, loop samples) for one application via the batched runtime.

    Extracts the app's loop samples once and optionally trains a small
    MV-GNN on them (the labels are the app's authored annotations).  Shared
    by ``classify --batch`` (one-shot predictions), ``serve`` (the
    long-lived service's model + example pool), and ``calibrate`` (the
    int8 scale recording pass).  ``precision``/``calibration`` configure
    the engine's default execution tier (see docs/RUNTIME.md).
    """
    from repro.dataset.extraction import extract_loop_samples
    from repro.dataset.types import LoopDataset
    from repro.embeddings.anonwalk import AnonymousWalkSpace
    from repro.embeddings.inst2vec import Inst2Vec
    from repro.models.dgcnn import DGCNNConfig
    from repro.models.mvgnn import MVGNNConfig
    from repro.runtime import Engine
    from repro.train.adapters import MVGNNAdapter
    from repro.train.config import TrainConfig
    from repro.train.trainer import train_model

    irs = []
    for program in spec.programs:
        ir = lower_program(program)
        verify_program(ir)
        irs.append(ir)
    inst2vec = Inst2Vec(dim=48).train(irs, epochs=2, rng=seed)
    walk_space = AnonymousWalkSpace(4)

    samples = []
    for program, ir in zip(spec.programs, irs):
        labels = {
            loop_id: loop.label
            for loop_id, loop in spec.loops.items()
            if loop.program_name == program.name
        }
        samples.extend(
            extract_loop_samples(
                program, labels, inst2vec, walk_space,
                suite=spec.suite, app=spec.name, gamma=20,
                ir_program=ir, rng=seed,
            )
        )

    semantic_dim = samples[0].x_semantic.shape[1]
    config = MVGNNConfig(
        semantic_features=semantic_dim,
        walk_types=walk_space.num_types,
        node_view=DGCNNConfig(in_features=semantic_dim, sortpool_k=8, dropout=0.3),
        struct_view=DGCNNConfig(in_features=200, sortpool_k=8, dropout=0.3),
    )
    adapter = MVGNNAdapter(config, rng=seed)
    if epochs > 0:
        train_model(
            adapter,
            LoopDataset(samples, name=spec.name),
            TrainConfig(epochs=epochs, lr=2e-3, batch_size=16,
                        sortpool_k=8, seed=seed),
        )
    engine = Engine(
        adapter.model, inst2vec=inst2vec, walk_space=walk_space,
        batch_size=batch_size, compile=compile,
        precision=precision, calibration=calibration,
    )
    return engine, samples


def _batched_gnn_predictions(
    spec, batch_size: int, epochs: int, seed: int = 0, compile: bool = True,
    precision: str = "exact",
):
    """(loop_id -> MV-GNN label, engine) via the batched runtime."""
    engine, samples = _build_app_engine(
        spec, batch_size, epochs, seed, compile=compile, precision=precision
    )
    if precision == "fast" and engine.compile:
        # record per-layer scales from the app's own loops so the fast
        # tier runs calibrated rather than on dynamic per-call scales
        engine.calibrate(samples)
    predicted = engine.predict_many(samples)
    return (
        {s.loop_id: int(p) for s, p in zip(samples, predicted)},
        engine,
    )


def _install_sigterm_handler() -> None:
    """Map SIGTERM to KeyboardInterrupt so ``main`` exits 130 cleanly.

    Long-running commands (train, dataset) call this; ``serve`` installs
    its own asyncio signal handlers instead.  No-op off the main thread
    (signal handlers may only be set there).
    """
    if threading.current_thread() is not threading.main_thread():
        return

    def _raise(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _raise)
    except (OSError, ValueError):  # pragma: no cover - exotic platforms
        pass


def _cmd_serve_reload(args) -> int:
    """``repro serve reload``: POST /admin/reload on a running fleet."""
    import json as _json
    import urllib.error
    import urllib.request

    url = f"http://{args.host}:{args.port}/admin/reload"
    body = b""
    if args.checkpoint:
        body = _json.dumps({"checkpoint": args.checkpoint}).encode()
    request = urllib.request.Request(
        url, data=body, method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=120.0) as response:
            result = _json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode(errors="replace")
        print(f"error: {url} -> {exc.code}: {detail}", file=sys.stderr)
        return 2
    except (urllib.error.URLError, OSError) as exc:
        print(f"error: cannot reach {url}: {exc}", file=sys.stderr)
        return 2
    swapped = result.get("swapped", result.get("workers", "?"))
    source = args.checkpoint if args.checkpoint else "current master weights"
    print(f"reloaded {swapped} worker(s) from {source}")
    return 0


def _build_advisor_plan_index(spec, samples, engine):
    """Wire-form advice plans for a served app, keyed by loop AND sample id.

    ``/v1/advise`` looks plans up by the request's graph id; clients send
    either a loop id (CLI-shaped requests) or a sample id (payloads from
    ``GET /v1/example``), so the index carries both keys.  Validation runs
    at T=2 with the default adversarial seeds — the cheap configuration;
    operators wanting the full sweep run ``repro advise`` offline.
    """
    from repro.advisor import advise_app

    verdicts = {
        s.loop_id: int(p) for s, p in zip(samples, engine.predict_many(samples))
    }
    advice = advise_app(spec, verdicts, threads=(2,))
    index = {lid: plan.to_wire() for lid, plan in advice.plans.items()}
    for sample in samples:
        plan = advice.plans.get(sample.loop_id)
        if plan is not None:
            index[sample.sample_id] = plan.to_wire()
    return index


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve import (
        FleetService,
        InferenceService,
        ServeConfig,
        serve_forever,
    )

    if args.action == "reload":
        return _cmd_serve_reload(args)

    spec = build_app(args.app)
    print(f"building engine for {args.app} ({spec.suite}): "
          f"{spec.loop_count} loops, {args.epochs} training epochs")
    calibration = None
    if args.calibration:
        from repro.nn.serialize import load_calibration

        calibration = load_calibration(args.calibration)
        if calibration is None:
            print(f"warning: {args.calibration} carries no calibration "
                  "arrays; fast tier will use dynamic scales", file=sys.stderr)
        else:
            print(f"calibration: {calibration.summary()} "
                  f"(from {args.calibration})")
    engine, samples = _build_app_engine(
        spec, batch_size=args.max_batch_size, epochs=args.epochs,
        seed=args.seed, compile=not args.no_compile,
        precision=args.precision, calibration=calibration,
    )
    config = ServeConfig(
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        max_queue_depth=args.queue_depth,
        default_deadline_ms=args.deadline_ms if args.deadline_ms > 0 else None,
        host=args.host,
        port=args.port,
        fleet_workers=args.workers,
        default_precision=args.precision,
        downgrade_queue_depth=args.downgrade_queue_depth,
    )
    advisor_plans = None
    if not args.no_advisor:
        advisor_plans = _build_advisor_plan_index(spec, samples, engine)
        validated = sum(
            1 for p in advisor_plans.values()
            if p.get("validation", {}).get("status") == "validated"
        )
        print(f"advisor: {len(advisor_plans)} plan index entries, "
              f"{validated} execution-validated (POST /v1/advise)", flush=True)
    if args.workers > 1:
        service = FleetService(
            engine, config, examples=samples, advisor_plans=advisor_plans
        )
        print(f"fleet: {args.workers} engine worker processes, "
              f"content-hash shard routing, "
              f"retries={config.worker_retries}", flush=True)
    else:
        service = InferenceService(
            engine, config, examples=samples, advisor_plans=advisor_plans
        )
    print(f"micro-batcher: max_batch_size={config.max_batch_size}, "
          f"max_wait_ms={config.max_wait_ms}, "
          f"queue_depth={config.max_queue_depth}, "
          f"deadline_ms={config.default_deadline_ms}", flush=True)
    downgrade = config.effective_downgrade_depth
    print(f"precision: default={config.default_precision}, "
          f"downgrade-before-shed at queue depth "
          f"{downgrade if downgrade is not None else 'off'}", flush=True)
    return asyncio.run(serve_forever(service, config))


def _cmd_calibrate(args) -> int:
    """``repro calibrate``: record int8 scales and save them with weights."""
    _install_sigterm_handler()
    from repro.nn.serialize import save_params

    spec = build_app(args.app)
    print(f"building engine for {args.app} ({spec.suite}): "
          f"{spec.loop_count} loops, {args.epochs} training epochs")
    engine, samples = _build_app_engine(
        spec, batch_size=args.batch_size, epochs=args.epochs, seed=args.seed,
    )
    # held-out shard: the tail fraction never influences the scales the
    # bulk was trained on; tiny apps fall back to the whole pool
    split = int(len(samples) * (1.0 - args.holdout))
    holdout = samples[split:] or samples
    print(f"calibrating on {len(holdout)} held-out sample(s) "
          f"(of {len(samples)})")
    calibration = engine.calibrate(holdout, batch_size=args.batch_size)
    print(f"recorded: {calibration.summary()}")
    save_params(engine.model, args.output, calibration=calibration)
    print(f"saved weights + calibration to {args.output}")
    return 0


def _cmd_train(args) -> int:
    _install_sigterm_handler()
    spec = build_app(args.app)
    from repro.dataset.types import LoopDataset
    from repro.embeddings.anonwalk import AnonymousWalkSpace
    from repro.embeddings.inst2vec import Inst2Vec
    from repro.models.dgcnn import DGCNNConfig
    from repro.models.mvgnn import MVGNNConfig
    from repro.runtime import FeatureCache
    from repro.train import (
        MVGNNAdapter,
        TrainConfig,
        cached_loop_samples,
        train_model,
    )

    from repro.train.data import cached_samples_for_programs

    irs = []
    for program in spec.programs:
        ir = lower_program(program)
        verify_program(ir)
        irs.append(ir)
    inst2vec = Inst2Vec(dim=48).train(irs, epochs=2, rng=args.seed)
    walk_space = AnonymousWalkSpace(4)
    cache = FeatureCache()

    items = []
    for program in spec.programs:
        labels = {
            loop_id: loop.label
            for loop_id, loop in spec.loops.items()
            if loop.program_name == program.name
        }
        items.append((program, labels))
    samples, hits, misses = cached_samples_for_programs(
        items, inst2vec, walk_space, cache,
        suite=spec.suite, app=spec.name, gamma=20,
        walk_seed=args.seed, n_workers=args.workers,
    )
    workers_note = f", {args.workers} workers" if args.workers > 1 else ""
    print(f"{args.app} ({spec.suite}): {len(samples)} loop samples, "
          f"feature cache {hits} hits / {misses} misses{workers_note}")

    semantic_dim = samples[0].x_semantic.shape[1]
    config = MVGNNConfig(
        semantic_features=semantic_dim,
        walk_types=walk_space.num_types,
        node_view=DGCNNConfig(in_features=semantic_dim, sortpool_k=8, dropout=0.3),
        struct_view=DGCNNConfig(in_features=200, sortpool_k=8, dropout=0.3),
    )
    adapter = MVGNNAdapter(config, rng=args.seed)
    train_config = TrainConfig(
        epochs=args.epochs, lr=args.lr, batch_size=args.batch_size,
        sortpool_k=8, seed=args.seed, batched=not args.per_sample,
        compiled=not args.no_compile,
    )
    if args.per_sample:
        path = "per-sample (reference)"
    elif args.no_compile:
        path = "batched (hand-written autograd)"
    else:
        path = "batched (tape-compiled)"
    print(f"training MV-GNN: {train_config.epochs} epochs, "
          f"batch_size={train_config.batch_size}, path={path}")
    curves = train_model(
        adapter, LoopDataset(samples, name=spec.name), train_config,
        verbose=True,
    )
    print()
    print(f"wall time: {curves.wall_seconds:.2f}s "
          f"({train_config.epochs / curves.wall_seconds:.2f} epochs/sec)")
    print(f"best epoch: {curves.best_epoch}  "
          f"final loss: {curves.loss[-1]:.4f}  "
          f"final train accuracy: {curves.train_accuracy[-1]:.3f}")
    return 0


def _cmd_dataset(args) -> int:
    _install_sigterm_handler()
    from repro.dataset.assemble import DatasetConfig, assemble_dataset

    if args.full:
        config = DatasetConfig(seed=args.seed)
        scale = "full (paper)"
    elif args.tiny:
        config = DatasetConfig.tiny(seed=args.seed)
        scale = "tiny"
    else:
        config = DatasetConfig.fast(seed=args.seed)
        scale = "fast"
    config.n_workers = args.workers
    config.use_cache = not args.no_cache
    if args.timeout is not None:
        config.task_timeout_s = args.timeout if args.timeout > 0 else None
    config.max_retries = args.retries

    print(f"assembling {scale} dataset "
          f"(seed {config.seed}, {config.n_workers} worker(s), "
          f"cache {'on' if config.use_cache else 'off'})")
    data = assemble_dataset(config)
    if data.stats is not None:
        print(data.stats.summary())
    for split in (data.benchmark, data.generated, data.train, data.test):
        print(split.summary())
    return 0


def _cmd_lint(args) -> int:
    _install_sigterm_handler()
    from repro.dataset.assemble import (
        DatasetConfig,
        assemble_dataset,
        programs_for_config,
    )
    from repro.dataset.types import LoopDataset
    from repro.errors import ReproError as _ReproError
    from repro.ir.passes.pipeline import apply_pipeline
    from repro.lint import (
        LintConfig,
        LintReport,
        lint_dataset,
        lint_ir,
        lint_peg,
        lint_program,
        lint_quantized_consistency,
        lint_tape_consistency,
        render_json,
        render_text,
    )
    from repro.peg.builder import build_peg
    from repro.peg.subgraph import all_loop_subpegs
    from repro.profiler import profile_program

    if args.full:
        config = DatasetConfig(seed=args.seed)
        scale = "full (paper)"
    elif args.tiny:
        config = DatasetConfig.tiny(seed=args.seed)
        scale = "tiny"
    else:
        config = DatasetConfig.fast(seed=args.seed)
        scale = "fast"
    config.use_cache = not args.no_cache
    config.n_workers = args.workers

    suppress = tuple(
        s for chunk in (args.suppress or []) for s in chunk.split(",") if s
    )
    lint_cfg = LintConfig(
        suppress=suppress, strict=args.strict, quick=args.quick
    )
    report = LintReport(lint_cfg)

    def note(msg: str) -> None:
        if not args.json:
            print(msg, flush=True)

    note(f"linting {scale} dataset configuration (seed {config.seed}, "
         f"{'quick' if args.quick else 'deep'} mode)")

    # -- IR + AST rules over every program variant the config builds ------
    programs = programs_for_config(config)
    for name in sorted(programs):
        program = programs[name]
        report.extend(lint_program(program, lint_cfg))
        try:
            ir = lower_program(program)
        except _ReproError:
            continue  # assembly drops unlowerable variants; not lint's call
        report.extend(lint_ir(ir, lint_cfg))
        if args.quick or "+" in name:
            continue  # deep mode: pipeline variants of base programs only
        for pipeline_name in config.pipelines:
            try:
                variant = apply_pipeline(ir, pipeline_name)
            except _ReproError:
                continue
            report.extend(lint_ir(variant, lint_cfg))
    note(f"  ir: {len(programs)} program(s) checked")

    # -- PEG rules over built graphs (deep mode: needs profiling) ----------
    if not args.quick:
        base = [n for n in sorted(programs) if "+" not in n]
        n_pegs = 0
        for name in base:
            try:
                ir = lower_program(programs[name])
                verify_program(ir)
                peg = build_peg(ir, profile_program(ir))
            except _ReproError:
                continue
            report.extend(lint_peg(peg, lint_cfg, full_graph=True))
            for sub in all_loop_subpegs(peg).values():
                report.extend(lint_peg(sub, lint_cfg, full_graph=False))
            n_pegs += 1
        note(f"  peg: {n_pegs} graph(s) + sub-PEGs checked")

    # -- dataset rules + DS005 label cross-validation ----------------------
    data = assemble_dataset(config)
    pool = LoopDataset(
        list(data.benchmark) + list(data.generated), name="pool"
    )
    report.extend(lint_dataset(pool, lint_cfg, programs=programs))
    crossval = report.stats.get("crossval", {})
    note(f"  dataset: {len(pool)} sample(s); label crossval judged "
         f"{crossval.get('judged', 0)} "
         f"({crossval.get('contradictions', 0)} contradiction(s))")

    # -- GR005: tape-compiled vs interpreted forward over real samples ----
    # cheap enough to run under --quick; compares the serving fleet's
    # compiled path against the reference interpreter on this dataset
    report.extend(lint_tape_consistency(pool, lint_cfg))
    tape_stats = report.stats.get("tape_consistency", {})
    note(f"  tape: compiled forward matched against interpreted on "
         f"{tape_stats.get('graphs', 0)} sample(s)")

    # -- GR006: quantized (fast-tier) vs float forward over real samples --
    report.extend(lint_quantized_consistency(pool, lint_cfg))
    quant_stats = report.stats.get("quantized_consistency", {})
    note(f"  quantize: fast-tier forward matched against float on "
         f"{quant_stats.get('graphs', 0)} sample(s) "
         f"({quant_stats.get('verdict_flips', 0)} verdict flip(s))")

    if args.json:
        print(render_json(report))
    else:
        print(render_text(report))
    return report.exit_code()


def _cmd_classify(args) -> int:
    spec = build_app(args.app)
    print(f"{args.app} ({spec.suite}): {spec.loop_count} loops, "
          f"{len(spec.programs)} programs")
    gnn_votes = None
    engine = None
    if args.batch:
        gnn_votes, engine = _batched_gnn_predictions(
            spec, batch_size=args.batch_size, epochs=args.epochs,
            compile=not args.no_compile, precision=args.precision,
        )
    header = (
        f"{'loop':<22}{'label':>6}{'oracle':>8}{'pattern':>12}"
        f"{'Pluto':>7}{'AutoPar':>9}{'DiscoPoP':>10}"
    )
    if gnn_votes is not None:
        header += f"{'MV-GNN':>8}"
    print(header)
    tools = (PlutoLite(), AutoParLite(), DiscoPoPClassifier())
    for program in spec.programs:
        ir = lower_program(program)
        verify_program(ir)
        report = profile_program(ir)
        oracle = classify_all_loops(ir, report)
        patterns = classify_all_patterns(program, ir, report)
        votes = {t.name: t.predict(program, ir, report) for t in tools}
        for loop_id, loop in spec.loops.items():
            if loop.program_name != program.name:
                continue
            short = "/".join(loop_id.split(":")[::2])
            row = (
                f"{short:<22}"
                f"{'P' if loop.label else '-':>6}"
                f"{'P' if oracle[loop_id].parallel else '-':>8}"
                f"{patterns[loop_id].pattern.value:>12}"
                f"{'P' if votes['Pluto'].get(loop_id) else '-':>7}"
                f"{'P' if votes['AutoPar'].get(loop_id) else '-':>9}"
                f"{'P' if votes['DiscoPoP'].get(loop_id) else '-':>10}"
            )
            if gnn_votes is not None:
                row += f"{'P' if gnn_votes.get(loop_id) else '-':>8}"
            print(row)
    if engine is not None:
        print()
        print(f"runtime: {engine.stats.summary()}")
    return 0


def _cmd_suggest(args) -> int:
    spec = build_app(args.app)
    if not 0 <= args.program < len(spec.programs):
        print(
            f"error: {args.app} has programs 0..{len(spec.programs) - 1}",
            file=sys.stderr,
        )
        return 2
    program = spec.programs[args.program]
    ir = lower_program(program)
    verify_program(ir)
    report = profile_program(ir)
    suggestions = suggest_parallelization(program, ir, report)
    print(render_report(suggestions))
    print()
    annotations = {lid: s.pragma for lid, s in suggestions.items() if s.pragma}
    print(program_to_source(program, annotations))
    return 0


def _cmd_patterns(args) -> int:
    spec = build_app(args.app)
    counts: Counter = Counter()
    for program in spec.programs:
        ir = lower_program(program)
        report = profile_program(ir)
        for result in classify_all_patterns(program, ir, report).values():
            counts[result.pattern.value] += 1
    print(f"{args.app}: parallel-pattern distribution over "
          f"{sum(counts.values())} loops")
    for pattern, count in counts.most_common():
        print(f"  {pattern:<12} {count:>4}")
    return 0


#: the tiny (CI/smoke) advisor roster, mirroring DatasetConfig.tiny
_ADVISE_TINY_APPS = ("EP", "IS", "fib", "nqueens")


def _parse_int_list(text: str, flag: str) -> tuple:
    try:
        values = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise ReproError(f"{flag} expects comma-separated integers: {text!r}")
    if not values:
        raise ReproError(f"{flag} must name at least one value")
    return values


def _cmd_advise(args) -> int:
    import json as json_mod

    from repro.advisor import advise_app, render_table, self_check

    threads = _parse_int_list(args.threads, "--threads")
    seeds = _parse_int_list(args.seeds, "--seeds")
    apps = list(_ADVISE_TINY_APPS) if args.tiny else [args.app]

    advices = []
    for name in apps:
        spec = build_app(name)
        verdicts = None
        if not args.no_model:
            verdicts, _ = _batched_gnn_predictions(
                spec, args.batch_size, args.epochs, seed=args.seed,
                compile=not args.no_compile,
            )
        advices.append(advise_app(
            spec, verdicts,
            threads=threads, seeds=seeds, max_ulp=args.max_ulp,
        ))

    check = self_check(threads=threads, seeds=seeds, max_ulp=args.max_ulp)

    if args.json:
        payload = {
            "apps": {
                a.app: {lid: p.to_wire() for lid, p in a.plans.items()}
                for a in advices
            },
            "self_check": {
                "passed": check.passed,
                "reduction_validated": check.reduction_validated,
                "privatization_validated": check.privatization_validated,
                "racy_refuted": check.racy_refuted,
                "details": list(check.details),
            },
        }
        print(json_mod.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_table(advices))
        print()
        print("self-check:", "PASS" if check.passed else "FAIL")
        for line in check.details:
            print(f"  {line}")
    return 0 if check.passed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MV-GNN parallelism-discovery reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table2", help="print Table II").set_defaults(
        fn=_cmd_table2
    )

    classify = sub.add_parser(
        "classify", help="per-loop verdicts for one application"
    )
    classify.add_argument("--app", required=True, choices=app_names())
    classify.add_argument(
        "--batch",
        action="store_true",
        help="add an MV-GNN column via the batched inference runtime",
    )
    classify.add_argument(
        "--batch-size", type=int, default=32,
        help="graphs packed per forward pass (with --batch)",
    )
    classify.add_argument(
        "--epochs", type=int, default=8,
        help="MV-GNN training epochs on the app's own labels "
             "(0 = untrained demo; with --batch)",
    )
    classify.add_argument(
        "--no-compile", action="store_true",
        help="disable the trace-compiled forward; use the layer-by-layer "
             "interpreted path (with --batch)",
    )
    classify.add_argument(
        "--precision", choices=["exact", "fast"], default="exact",
        help="execution tier for the MV-GNN column (with --batch): exact = "
             "float64 tape, fast = calibrated int8-grid float32 tape",
    )
    classify.set_defaults(fn=_cmd_classify)

    train = sub.add_parser(
        "train", help="train an MV-GNN on one application's labeled loops"
    )
    train.add_argument("--app", required=True, choices=app_names())
    train.add_argument(
        "--epochs", type=int, default=10, help="training epochs"
    )
    train.add_argument(
        "--batch-size", type=int, default=32,
        help="samples packed per forward/backward pass",
    )
    train.add_argument(
        "--per-sample", action="store_true",
        help="use the per-sample reference training path instead of the "
             "batched fast path",
    )
    train.add_argument(
        "--no-compile", action="store_true",
        help="disable the tape-compiled forward/backward in the batched "
             "path; use the hand-written autograd instead",
    )
    train.add_argument("--lr", type=float, default=2e-3)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--workers", type=int, default=1,
        help="processes for per-program feature extraction (1 = in-process)",
    )
    train.set_defaults(fn=_cmd_train)

    dataset = sub.add_parser(
        "dataset",
        help="assemble the classification dataset and print assembly stats",
    )
    scale = dataset.add_mutually_exclusive_group()
    scale.add_argument(
        "--full", action="store_true",
        help="paper-fidelity configuration (hours on CPU; default: fast)",
    )
    scale.add_argument(
        "--tiny", action="store_true",
        help="four small apps, seconds to assemble (CI/smoke scale)",
    )
    dataset.add_argument(
        "--workers", type=int, default=1,
        help="extraction worker processes (1 = serial reference path)",
    )
    dataset.add_argument("--seed", type=int, default=7)
    dataset.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the on-disk dataset/shard cache",
    )
    dataset.add_argument(
        "--timeout", type=float, default=None,
        help="per-task timeout in seconds (0 = no timeout; default 300)",
    )
    dataset.add_argument(
        "--retries", type=int, default=1,
        help="retries per failed extraction task before dropping it",
    )
    dataset.set_defaults(fn=_cmd_dataset)

    lint = sub.add_parser(
        "lint",
        help="run the static consistency analyzer (see docs/LINT.md)",
    )
    lint_scale = lint.add_mutually_exclusive_group()
    lint_scale.add_argument(
        "--full", action="store_true",
        help="lint the paper-fidelity configuration (slow; default: fast)",
    )
    lint_scale.add_argument(
        "--tiny", action="store_true",
        help="lint the tiny (CI/smoke) configuration",
    )
    lint.add_argument(
        "--strict", action="store_true",
        help="WARNING findings also fail (exit 1)",
    )
    lint.add_argument(
        "--quick", action="store_true",
        help="skip profiling-backed PEG checks and per-variant IR lint "
             "(the CI budget mode)",
    )
    lint.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable JSON report instead of text",
    )
    lint.add_argument(
        "--suppress", action="append", metavar="RULES", default=[],
        help="comma-separated rule IDs or layer prefixes to suppress "
             "(e.g. DS003 or PEG); repeatable",
    )
    lint.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the on-disk dataset/shard cache",
    )
    lint.add_argument(
        "--workers", type=int, default=1,
        help="extraction worker processes if assembly has to run",
    )
    lint.add_argument("--seed", type=int, default=7)
    lint.set_defaults(fn=_cmd_lint)

    serve = sub.add_parser(
        "serve",
        help="start the async micro-batching inference service "
             "(see docs/SERVING.md; fleet operations in docs/OPERATIONS.md)",
    )
    serve.add_argument(
        "action", nargs="?", default="run", choices=["run", "reload"],
        help="run = start a server (default); reload = ask a running fleet "
             "to hot-reload its weights via POST /admin/reload",
    )
    serve.add_argument(
        "--app", default="fib", choices=app_names(),
        help="application whose loops train/feed the served model",
    )
    serve.add_argument(
        "--epochs", type=int, default=0,
        help="MV-GNN training epochs on the app's labels before serving "
             "(0 = untrained demo weights)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8100,
        help="bind port (0 = let the OS pick; the chosen port is printed)",
    )
    serve.add_argument(
        "--max-batch-size", type=int, default=32,
        help="graphs coalesced per engine dispatch",
    )
    serve.add_argument(
        "--max-wait-ms", type=float, default=5.0,
        help="batching window anchored to the oldest queued request",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=256,
        help="admission-control bound; beyond it requests get 429",
    )
    serve.add_argument(
        "--deadline-ms", type=float, default=1000.0,
        help="default per-request deadline (0 = no deadline)",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="engine worker processes: 1 = in-process single engine, "
             ">1 = multi-process fleet with content-hash shard routing",
    )
    serve.add_argument(
        "--checkpoint", default=None, metavar="NPZ",
        help="with the reload action: npz weight file "
             "(repro.nn.serialize.save_params) to load before the rolling "
             "swap",
    )
    serve.add_argument(
        "--no-compile", action="store_true",
        help="serve with the interpreted forward instead of the "
             "trace-compiled tape (workers then skip tape warm-up)",
    )
    serve.add_argument(
        "--precision", choices=["exact", "fast"], default="exact",
        help="default execution tier for unpinned requests; clients "
             "override per request with ?precision=exact|fast",
    )
    serve.add_argument(
        "--downgrade-queue-depth", type=int, default=None, metavar="N",
        help="degrade-before-shed threshold: unpinned requests arriving "
             "past this queue depth are served at the fast tier "
             "(default: queue-depth/2; 0 disables downgrading)",
    )
    serve.add_argument(
        "--no-advisor", action="store_true",
        help="skip building the advice-plan index at startup; "
             "POST /v1/advise then answers 409",
    )
    serve.add_argument(
        "--calibration", default=None, metavar="NPZ",
        help="checkpoint from `repro calibrate` whose int8 scales the fast "
             "tier uses (must match the served architecture); without it "
             "fast tapes use dynamic per-call scales",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.set_defaults(fn=_cmd_serve)

    calibrate = sub.add_parser(
        "calibrate",
        help="record per-layer int8 scales from a held-out shard and save "
             "them alongside the weights (see docs/RUNTIME.md)",
    )
    calibrate.add_argument("--app", required=True, choices=app_names())
    calibrate.add_argument(
        "--epochs", type=int, default=8,
        help="MV-GNN training epochs before the calibration pass",
    )
    calibrate.add_argument(
        "--batch-size", type=int, default=32,
        help="graphs packed per calibration forward pass",
    )
    calibrate.add_argument(
        "--holdout", type=float, default=0.25,
        help="tail fraction of the sample pool reserved for calibration",
    )
    calibrate.add_argument(
        "--output", "-o", required=True, metavar="NPZ",
        help="npz path for the weights + calibration "
             "(load with repro.nn.serialize.load_params/load_calibration)",
    )
    calibrate.add_argument("--seed", type=int, default=0)
    calibrate.set_defaults(fn=_cmd_calibrate)

    suggest = sub.add_parser(
        "suggest", help="OpenMP suggestions for one program"
    )
    suggest.add_argument("--app", required=True, choices=app_names())
    suggest.add_argument("--program", type=int, default=0)
    suggest.set_defaults(fn=_cmd_suggest)

    patterns = sub.add_parser(
        "patterns", help="pattern distribution of one application"
    )
    patterns.add_argument("--app", required=True, choices=app_names())
    patterns.set_defaults(fn=_cmd_patterns)

    advise = sub.add_parser(
        "advise",
        help="execution-validated parallelization advice "
             "(see docs/ADVISOR.md)",
    )
    advise_target = advise.add_mutually_exclusive_group(required=True)
    advise_target.add_argument(
        "--app", choices=app_names(),
        help="advise one application",
    )
    advise_target.add_argument(
        "--tiny", action="store_true",
        help="advise the tiny (CI/smoke) roster: EP, IS, fib, nqueens",
    )
    advise.add_argument(
        "--threads", default="2,4", metavar="T1,T2",
        help="logical thread counts to validate under (comma-separated)",
    )
    advise.add_argument(
        "--seeds", default="0,1,2", metavar="S1,S2",
        help="adversarial-schedule seeds (comma-separated); the "
             "systematic round-robin schedule always runs too",
    )
    advise.add_argument(
        "--max-ulp", type=float, default=4.0,
        help="tolerance in float64 ulps for reassociated reduction "
             "live-outs (everything else must match bitwise)",
    )
    advise.add_argument(
        "--epochs", type=int, default=6,
        help="MV-GNN training epochs per app before prediction "
             "(0 = untrained demo weights)",
    )
    advise.add_argument(
        "--batch-size", type=int, default=32,
        help="graphs packed per forward pass for the model verdicts",
    )
    advise.add_argument(
        "--no-model", action="store_true",
        help="skip the MV-GNN; plans fuse only the prover and the oracle",
    )
    advise.add_argument(
        "--no-compile", action="store_true",
        help="disable the trace-compiled forward for the model verdicts",
    )
    advise.add_argument(
        "--json", action="store_true",
        help="emit machine-readable advice plans (sorted keys; "
             "byte-identical to the /v1/advise wire form)",
    )
    advise.add_argument("--seed", type=int, default=0)
    advise.set_defaults(fn=_cmd_advise)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except KeyboardInterrupt:
        # Ctrl-C or SIGTERM (see _install_sigterm_handler) on a
        # long-running command: report the conventional 128+SIGINT code
        # instead of dumping a traceback.
        print("interrupted", file=sys.stderr)
        return 130
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # output piped into a pager/head that closed early: not an error
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
