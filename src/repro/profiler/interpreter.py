"""LinearIR interpreter with optional dependence profiling.

Memory model
------------

* **Arrays** are global, shared across functions, and initialized
  deterministically from a seeded generator before the run (kernels that
  need structured contents — e.g. index arrays for indirect accesses —
  initialize them with explicit loops, as the real benchmarks do).
* **Scalars** are frame-local.  Each function activation gets a fresh
  activation id, and the shadow address of a scalar is
  ``(f"{fn}::{var}", activation_id)`` — semantically a fresh stack slot per
  call, so locals of distinct activations never alias.  This keeps the
  dependence oracle exact; the *conservatism* real tools show around calls is
  modeled inside the tool baselines, not here.
* Values are Python floats; comparisons yield 1.0 / 0.0; array indices are
  truncated toward zero like a C cast.

The hot loop avoids attribute lookups by binding opcodes and shadow methods
to locals (profile-guided, per the HPC guide: measure, then specialize the
inner loop).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import InterpreterError
from repro.ir.linear import Imm, Instr, IRFunction, IRProgram, Opcode, Reg
from repro.profiler.report import ProfileReport
from repro.profiler.shadow import ShadowMemory
from repro.utils.rng import RngLike, ensure_rng

_INTRINSICS = {
    "sqrt": lambda a: math.sqrt(a) if a >= 0.0 else 0.0,
    "exp": lambda a: math.exp(min(a, 700.0)),
    "log": lambda a: math.log(a) if a > 0.0 else 0.0,
    "sin": math.sin,
    "cos": math.cos,
    "fabs": abs,
    "floor": math.floor,
    "pow": lambda a, b: math.pow(abs(a), b) if a != 0.0 or b > 0 else 0.0,
}

_DEFAULT_MAX_STEPS = 5_000_000


class Interpreter:
    """Executes an :class:`IRProgram`, optionally recording dependences."""

    def __init__(
        self,
        program: IRProgram,
        record: bool = True,
        rng: RngLike = 0,
        max_steps: int = _DEFAULT_MAX_STEPS,
        probe=None,
    ) -> None:
        self.program = program
        self.record = record
        self.max_steps = max_steps
        # optional observation hook ``probe(fn_name, iid, kind, value)``
        # with kind in {"value", "index", "divisor"} — the range-analysis
        # soundness self-check (repro.analysis.ranges.check_soundness)
        # attaches one to compare observed values against inferred
        # intervals; None costs a single pointer test per memory op
        self.probe = probe
        self.report = ProfileReport(program_name=program.name)
        self.shadow: Optional[ShadowMemory] = (
            ShadowMemory(self.report) if record else None
        )
        rng = ensure_rng(rng)
        # Deterministic array contents in [0, 1); kernels that need structure
        # (index arrays, zero accumulators) initialize explicitly.
        self.arrays: Dict[str, List[float]] = {
            name: list(rng.random(size)) for name, size in program.arrays.items()
        }
        self._steps = 0
        self._itervec: Tuple[Tuple[str, int, int], ...] = ()
        self._loop_entry_serial: Dict[str, int] = {}
        self._loop_step_stack: List[Tuple[str, int]] = []
        self._activation = 0
        # per-function scoped scalar symbol cache: fn -> var -> "fn::var"
        self._scoped: Dict[str, Dict[str, str]] = {}
        # per-function exec counters: fn -> {iid: count}
        self._exec: Dict[str, Dict[int, int]] = {}

    # -- public API -----------------------------------------------------------

    def run(self, args: Tuple[float, ...] = ()) -> ProfileReport:
        """Execute the entry function and return the profile report."""
        entry = self.program.function(self.program.entry)
        value = self._run_function(entry, args)
        self.report.steps = self._steps
        self.report.return_value = value
        for fn_name, counts in self._exec.items():
            for iid, count in counts.items():
                self.report.exec_counts[(fn_name, iid)] = count
        return self.report

    # -- execution ------------------------------------------------------------

    def _scoped_sym(self, fn_name: str, var: str) -> str:
        table = self._scoped.get(fn_name)
        if table is None:
            table = self._scoped[fn_name] = {}
        sym = table.get(var)
        if sym is None:
            sym = table[var] = f"{fn_name}::{var}"
        return sym

    def _run_function(
        self, fn: IRFunction, args: Tuple[float, ...]
    ) -> Optional[float]:
        if len(args) != len(fn.params):
            raise InterpreterError(
                f"{fn.name} expects {len(fn.params)} args, got {len(args)}"
            )
        self._activation += 1
        activation = self._activation
        scalars: Dict[str, float] = dict(zip(fn.params, (float(a) for a in args)))
        registers: Dict[str, float] = {}
        itervec_depth = len(self._itervec)
        loopstack_depth = len(self._loop_step_stack)

        fn_name = fn.name
        exec_counts = self._exec.get(fn_name)
        if exec_counts is None:
            exec_counts = self._exec[fn_name] = {}
        shadow = self.shadow
        record = self.record
        probe = self.probe
        report = self.report
        arrays = self.arrays
        max_steps = self.max_steps
        block = fn.entry
        instrs = block.instrs
        pos = 0

        while True:
            instr = instrs[pos]
            pos += 1
            self._steps += 1
            if self._steps > max_steps:
                raise InterpreterError(
                    f"step budget of {max_steps} exceeded in {fn_name} "
                    f"(likely non-terminating loop)"
                )
            iid = instr.iid
            exec_counts[iid] = exec_counts.get(iid, 0) + 1
            op = instr.opcode
            ops = instr.operands

            if op is Opcode.LDVAR:
                var = ops[0]
                value = scalars.get(var)
                if value is None:
                    value = scalars[var] = 0.0
                if record:
                    shadow.read(
                        self._scoped_sym(fn_name, var),
                        activation,
                        (fn_name, iid),
                        self._itervec,
                    )
                if probe is not None:
                    probe(fn_name, iid, "value", value)
                registers[instr.result.name] = value

            elif op is Opcode.STVAR:
                var = ops[0]
                scalars[var] = value = self._value(registers, ops[1])
                if probe is not None:
                    probe(fn_name, iid, "value", value)
                if record:
                    shadow.write(
                        self._scoped_sym(fn_name, var),
                        activation,
                        (fn_name, iid),
                        self._itervec,
                    )

            elif op is Opcode.LOAD:
                array_name = ops[0]
                index_f = self._value(registers, ops[1])
                index = int(index_f)
                array = arrays[array_name]
                if index < 0 or index >= len(array):
                    raise InterpreterError(
                        f"load {array_name}[{index}] out of bounds "
                        f"(size {len(array)}) at iid {iid} in {fn_name}"
                    )
                if record:
                    shadow.read(array_name, index, (fn_name, iid), self._itervec)
                if probe is not None:
                    probe(fn_name, iid, "index", index_f)
                    probe(fn_name, iid, "value", array[index])
                registers[instr.result.name] = array[index]

            elif op is Opcode.STORE:
                array_name = ops[0]
                index_f = self._value(registers, ops[1])
                index = int(index_f)
                array = arrays[array_name]
                if index < 0 or index >= len(array):
                    raise InterpreterError(
                        f"store {array_name}[{index}] out of bounds "
                        f"(size {len(array)}) at iid {iid} in {fn_name}"
                    )
                array[index] = self._value(registers, ops[2])
                if record:
                    shadow.write(array_name, index, (fn_name, iid), self._itervec)
                if probe is not None:
                    probe(fn_name, iid, "index", index_f)
                    probe(fn_name, iid, "value", array[index])

            elif op is Opcode.ADD:
                registers[instr.result.name] = self._value(
                    registers, ops[0]
                ) + self._value(registers, ops[1])
            elif op is Opcode.SUB:
                registers[instr.result.name] = self._value(
                    registers, ops[0]
                ) - self._value(registers, ops[1])
            elif op is Opcode.MUL:
                registers[instr.result.name] = self._value(
                    registers, ops[0]
                ) * self._value(registers, ops[1])
            elif op is Opcode.DIV:
                denom = self._value(registers, ops[1])
                if denom == 0.0:
                    raise InterpreterError(f"division by zero at iid {iid} in {fn_name}")
                if probe is not None:
                    probe(fn_name, iid, "divisor", denom)
                registers[instr.result.name] = self._value(registers, ops[0]) / denom
            elif op is Opcode.MOD:
                denom = self._value(registers, ops[1])
                if denom == 0.0:
                    raise InterpreterError(f"modulo by zero at iid {iid} in {fn_name}")
                if probe is not None:
                    probe(fn_name, iid, "divisor", denom)
                # Euclidean semantics: result has the sign of the divisor, so
                # x % positive stays a valid array index even for negative x
                # (MiniC defines % this way; kernels rely on it for wrapping)
                registers[instr.result.name] = (
                    self._value(registers, ops[0]) % denom
                )
            elif op is Opcode.MIN:
                registers[instr.result.name] = min(
                    self._value(registers, ops[0]), self._value(registers, ops[1])
                )
            elif op is Opcode.MAX:
                registers[instr.result.name] = max(
                    self._value(registers, ops[0]), self._value(registers, ops[1])
                )
            elif op is Opcode.NEG:
                registers[instr.result.name] = -self._value(registers, ops[0])
            elif op is Opcode.NOT:
                registers[instr.result.name] = (
                    0.0 if self._value(registers, ops[0]) != 0.0 else 1.0
                )
            elif op is Opcode.AND:
                registers[instr.result.name] = (
                    1.0
                    if self._value(registers, ops[0]) != 0.0
                    and self._value(registers, ops[1]) != 0.0
                    else 0.0
                )
            elif op is Opcode.OR:
                registers[instr.result.name] = (
                    1.0
                    if self._value(registers, ops[0]) != 0.0
                    or self._value(registers, ops[1]) != 0.0
                    else 0.0
                )

            elif op is Opcode.CMP:
                lhs = self._value(registers, ops[0])
                rhs = self._value(registers, ops[1])
                pred = instr.meta["pred"]
                if pred == "lt":
                    result = lhs < rhs
                elif pred == "le":
                    result = lhs <= rhs
                elif pred == "gt":
                    result = lhs > rhs
                elif pred == "ge":
                    result = lhs >= rhs
                elif pred == "eq":
                    result = lhs == rhs
                else:
                    result = lhs != rhs
                registers[instr.result.name] = 1.0 if result else 0.0

            elif op is Opcode.CONDBR:
                cond = self._value(registers, ops[0])
                target = ops[1] if cond != 0.0 else ops[2]
                block = fn.block(target)
                instrs = block.instrs
                pos = 0
            elif op is Opcode.BR:
                block = fn.block(ops[0])
                instrs = block.instrs
                pos = 0
            elif op is Opcode.RET:
                # An early return may abandon active loops of this frame:
                # unwind their iteration-vector entries and attribute their
                # executed steps before leaving.
                self._itervec = self._itervec[:itervec_depth]
                while len(self._loop_step_stack) > loopstack_depth:
                    loop_id, start = self._loop_step_stack.pop()
                    stats = report.loop_stats.get(loop_id)
                    if stats is not None:
                        stats.dyn_instr_count += self._steps - start
                if ops:
                    return self._value(registers, ops[0])
                return None

            elif op is Opcode.LOOPENTER:
                loop_id = ops[0]
                serial = self._loop_entry_serial.get(loop_id, 0)
                self._loop_entry_serial[loop_id] = serial + 1
                self._itervec = self._itervec + ((loop_id, serial, 0),)
                report.record_loop_entry(loop_id)
                self._loop_step_stack.append((loop_id, self._steps))
            elif op is Opcode.LOOPNEXT:
                loop_id = ops[0]
                last = self._itervec[-1]
                if last[0] != loop_id:
                    raise InterpreterError(
                        f"loopnext for {loop_id!r} but innermost loop is {last[0]!r}"
                    )
                self._itervec = self._itervec[:-1] + (
                    (loop_id, last[1], last[2] + 1),
                )
                report.record_loop_iteration(loop_id)
            elif op is Opcode.LOOPEXIT:
                loop_id = ops[0]
                if self._itervec and self._itervec[-1][0] == loop_id:
                    self._itervec = self._itervec[:-1]
                if (
                    self._loop_step_stack
                    and self._loop_step_stack[-1][0] == loop_id
                ):
                    _, start = self._loop_step_stack.pop()
                    stats = report.loop_stats.get(loop_id)
                    if stats is not None:
                        stats.dyn_instr_count += self._steps - start

            elif op is Opcode.CALL:
                fn_name_i = ops[0]
                intrinsic = _INTRINSICS.get(fn_name_i)
                if intrinsic is None:
                    raise InterpreterError(f"unknown intrinsic {fn_name_i!r}")
                values = [self._value(registers, a) for a in ops[1:]]
                try:
                    result_f = float(intrinsic(*values))
                except (ValueError, OverflowError) as exc:
                    raise InterpreterError(
                        f"intrinsic {fn_name_i} failed on {values}: {exc}"
                    ) from exc
                if probe is not None:
                    probe(fn_name, iid, "value", result_f)
                registers[instr.result.name] = result_f

            elif op is Opcode.CALLFN:
                callee = self.program.function(ops[0])
                values = tuple(self._value(registers, a) for a in ops[1:])
                result = self._run_function(callee, values)
                if instr.result is not None:
                    registers[instr.result.name] = (
                        result if result is not None else 0.0
                    )

            elif op is Opcode.CONST:
                registers[instr.result.name] = float(ops[0].value)  # type: ignore

            else:  # pragma: no cover - all opcodes handled above
                raise InterpreterError(f"unhandled opcode {op}")

    @staticmethod
    def _value(registers: Dict[str, float], operand) -> float:
        if type(operand) is Reg:
            return registers[operand.name]
        return operand.value  # Imm


def run_program(
    program: IRProgram,
    args: Tuple[float, ...] = (),
    rng: RngLike = 0,
    max_steps: int = _DEFAULT_MAX_STEPS,
) -> ProfileReport:
    """Execute ``program`` without dependence recording (fast validation)."""
    return Interpreter(program, record=False, rng=rng, max_steps=max_steps).run(args)


def profile_program(
    program: IRProgram,
    args: Tuple[float, ...] = (),
    rng: RngLike = 0,
    max_steps: int = _DEFAULT_MAX_STEPS,
) -> ProfileReport:
    """Execute ``program`` with full dependence profiling (DiscoPoP phase 1)."""
    return Interpreter(program, record=True, rng=rng, max_steps=max_steps).run(args)
