"""Shadow memory for dynamic dependence detection.

For every memory address ``(symbol, index)`` the shadow tracks the last
writer and the set of readers since that write, each with the iteration
vector at access time.  Dependences are classified against the *outermost*
common loop whose iteration differs (the loop that carries the dependence),
including a per-loop *entry serial* so accesses from different activations of
the same loop are never misattributed as loop-carried.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.profiler.report import DepInfo, DepKind, InstrKey, ProfileReport

# An iteration vector entry: (loop_id, entry_serial, iteration)
IterVec = Tuple[Tuple[str, int, int], ...]


def carrying_loop(src_vec: IterVec, dst_vec: IterVec) -> Optional[str]:
    """The id of the outermost loop that carries a dependence between two
    accesses, or ``None`` when the dependence is loop-independent.

    Walks from the outermost position inward while loop ids and entry
    serials match; the first position with a differing iteration is the
    carrier.  A mismatch in loop id or entry serial means the accesses are
    sequentially ordered outside any common loop iteration structure, i.e.
    the dependence is not carried by any loop.
    """
    n = min(len(src_vec), len(dst_vec))
    for i in range(n):
        s_loop, s_entry, s_iter = src_vec[i]
        d_loop, d_entry, d_iter = dst_vec[i]
        if s_loop != d_loop or s_entry != d_entry:
            return None
        if s_iter != d_iter:
            return s_loop
    return None


class ShadowMemory:
    """Tracks last writer / readers per address and emits dependences."""

    __slots__ = ("_last_write", "_last_reads", "_report")

    def __init__(self, report: ProfileReport) -> None:
        # addr -> (writer key, writer itervec)
        self._last_write: Dict[Tuple[str, int], Tuple[InstrKey, IterVec]] = {}
        # addr -> {reader key: reader itervec}  (one slot per static reader)
        self._last_reads: Dict[Tuple[str, int], Dict[InstrKey, IterVec]] = {}
        self._report = report

    def _record(
        self,
        src: InstrKey,
        dst: InstrKey,
        kind: DepKind,
        symbol: str,
        src_vec: IterVec,
        dst_vec: IterVec,
    ) -> None:
        deps = self._report.deps
        dep_key = (src, dst, kind)
        dep = deps.get(dep_key)
        if dep is None:
            dep = deps[dep_key] = DepInfo(src, dst, kind, symbol)
        dep.count += 1
        carrier = carrying_loop(src_vec, dst_vec)
        if carrier is None:
            dep.independent += 1
        else:
            dep.carried[carrier] += 1

    def read(self, symbol: str, index: int, key: InstrKey, itervec: IterVec) -> None:
        """Record a read access; emits a RAW edge from the last writer."""
        addr = (symbol, index)
        writer = self._last_write.get(addr)
        if writer is not None:
            self._record(writer[0], key, DepKind.RAW, symbol, writer[1], itervec)
        reads = self._last_reads.get(addr)
        if reads is None:
            self._last_reads[addr] = {key: itervec}
        else:
            reads[key] = itervec

    def write(self, symbol: str, index: int, key: InstrKey, itervec: IterVec) -> None:
        """Record a write access; emits WAR edges from readers and a WAW edge
        from the previous writer, then becomes the new last writer."""
        addr = (symbol, index)
        reads = self._last_reads.get(addr)
        if reads:
            for rkey, rvec in reads.items():
                self._record(rkey, key, DepKind.WAR, symbol, rvec, itervec)
            reads.clear()
        writer = self._last_write.get(addr)
        if writer is not None:
            self._record(writer[0], key, DepKind.WAW, symbol, writer[1], itervec)
        self._last_write[addr] = (key, itervec)
