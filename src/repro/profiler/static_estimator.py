"""Static feature estimation — the paper's third future-work item.

"In future works we can depart from this assumption and decouple the
dynamic and static features, allowing the model to selectively apply
information from either method [...] our model would be applicable to a
wider range of applications."

This module produces a :class:`~repro.profiler.report.ProfileReport`-shaped
*estimate* without executing the program: trip counts from constant bounds
(with a configurable default for symbolic ones), dependences from syntactic
array-access comparison (GCD-tested where affine, conservative elsewhere),
and loop statistics derived from the static loop tree.  Downstream code —
feature computation, PEG construction, even the oracle — runs unchanged on
the estimated report, which is exactly the decoupling the paper sketches.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir import ast_nodes as ast
from repro.ir.ast_nodes import Program
from repro.ir.linear import IRProgram, MEM_READS, MEM_WRITES, Opcode
from repro.profiler.report import (
    DepInfo,
    DepKind,
    InstrKey,
    LoopStats,
    ProfileReport,
)
from repro.profiler.static_info import loop_block_sets
from repro.tools.affine import gcd_test, normalize_affine


def estimate_trip_count(loop: ast.For, default: int = 16) -> int:
    """Constant-bound trip count, or ``default`` for symbolic bounds."""
    if (
        isinstance(loop.lo, ast.Const)
        and isinstance(loop.hi, ast.Const)
        and isinstance(loop.step, ast.Const)
        and loop.step.value > 0
    ):
        span = loop.hi.value - loop.lo.value
        if span <= 0:
            return 0
        return int(-(-span // loop.step.value))  # ceil division
    return default


def _ast_loops(program: Program) -> Dict[str, ast.For]:
    out: Dict[str, ast.For] = {}
    for fn in program.functions.values():
        for stmt in ast.walk_stmts(fn.body):
            if isinstance(stmt, ast.For) and stmt.loop_id is not None:
                out[stmt.loop_id] = stmt
    return out


def estimate_profile(
    program: Program,
    ir_program: IRProgram,
    default_trip: int = 16,
) -> ProfileReport:
    """Build a statically-estimated profile report (no execution)."""
    report = ProfileReport(program_name=f"{program.name} (static estimate)")
    ast_loops = _ast_loops(program)

    # -- loop statistics from the static loop tree -----------------------
    for loop_id, info in ir_program.all_loops().items():
        loop_ast = ast_loops.get(loop_id)
        own_trips = (
            estimate_trip_count(loop_ast, default_trip)
            if loop_ast is not None
            else default_trip
        )
        # entries = product of enclosing trip counts
        entries = 1
        parent = info.parent
        while parent is not None:
            parent_ast = ast_loops.get(parent)
            entries *= (
                estimate_trip_count(parent_ast, default_trip)
                if parent_ast is not None
                else default_trip
            )
            parent = ir_program.all_loops()[parent].parent
        stats = LoopStats(loop_id)
        stats.entries = entries
        stats.total_iterations = entries * own_trips
        report.loop_stats[loop_id] = stats

    # -- static dependence estimation, per loop ----------------------------
    for fn in ir_program.functions.values():
        block_sets = loop_block_sets(fn)
        for loop_id in fn.loops:
            loop_ast = ast_loops.get(loop_id)
            if loop_ast is None:
                continue
            _estimate_loop_deps(
                report, program, fn.name, loop_id, loop_ast, block_sets
            )

    # -- execution counts: every instruction of a loop body executes once
    #    per estimated iteration
    for fn in ir_program.functions.values():
        block_sets = loop_block_sets(fn)
        owner: Dict[str, Optional[str]] = {}
        for loop_id, labels in sorted(
            block_sets.items(), key=lambda kv: len(kv[1]), reverse=True
        ):
            for label in labels:
                owner[label] = loop_id  # innermost (smallest) wins last
        for block in fn.blocks:
            loop_id = owner.get(block.label)
            iterations = (
                report.loop_stats[loop_id].total_iterations
                if loop_id is not None
                else 1
            )
            for instr in block.instrs:
                report.exec_counts[(fn.name, instr.iid)] = max(1, iterations)
    report.steps = sum(report.exec_counts.values())
    return report


def _estimate_loop_deps(
    report: ProfileReport,
    program: Program,
    fn_name: str,
    loop_id: str,
    loop_ast: ast.For,
    block_sets,
) -> None:
    """Record estimated carried dependences for one loop.

    Uses the same affine machinery as PlutoLite but records its verdicts in
    dynamic-report form; scalar recurrences are detected from read-then-
    write orderings in the AST.
    """
    loop_vars: Set[str] = {loop_ast.var} | {
        s.var for s in ast.walk_stmts(loop_ast.body) if isinstance(s, ast.For)
    }

    accesses: List[Tuple[str, ast.Expr, bool]] = []
    scalar_first_event: Dict[str, str] = {}
    scalar_writes: Set[str] = set()

    def record_scalar(kind: str, name: str) -> None:
        scalar_first_event.setdefault(name, kind)
        if kind == "w":
            scalar_writes.add(name)

    def scan_expr(expr: ast.Expr) -> None:
        for node in ast.walk_exprs(expr):
            if isinstance(node, ast.Load):
                accesses.append((node.array, node.index, False))
            elif isinstance(node, ast.Var):
                record_scalar("r", node.name)

    for stmt in ast.walk_stmts(loop_ast.body):
        for expr in ast.stmt_exprs(stmt):
            scan_expr(expr)
        if isinstance(stmt, ast.Store):
            accesses.append((stmt.array, stmt.index, True))
        elif isinstance(stmt, ast.Assign):
            record_scalar("w", stmt.name)
        elif isinstance(stmt, ast.For):
            record_scalar("w", stmt.var)

    serial = 0

    def emit(symbol: str, kind: DepKind) -> None:
        nonlocal serial
        # synthetic instruction keys: estimation has no concrete iids
        src: InstrKey = (fn_name, -(serial * 2 + 1))
        dst: InstrKey = (fn_name, -(serial * 2 + 2))
        serial += 1
        dep = DepInfo(src, dst, kind, symbol)
        dep.count = 1
        dep.carried[loop_id] = 1
        report.deps[(src, dst, kind)] = dep

    # scalar recurrences: read before any write => value flows across
    # iterations (conservative static view)
    for name in scalar_writes:
        if name in loop_vars:
            continue
        if scalar_first_event.get(name) == "r":
            emit(f"{fn_name}::{name}", DepKind.RAW)
        else:
            emit(f"{fn_name}::{name}", DepKind.WAW)

    # array dependences via pairwise affine testing
    normalized = [
        (array, normalize_affine(index, loop_vars), is_write)
        for array, index, is_write in accesses
    ]
    flagged: Set[Tuple[str, str]] = set()
    for pos, (array_a, form_a, write_a) in enumerate(normalized):
        for array_b, form_b, write_b in normalized[pos:]:
            if array_a != array_b or not (write_a or write_b):
                continue
            kind = (
                DepKind.WAW
                if write_a and write_b
                else (DepKind.RAW if write_a else DepKind.WAR)
            )
            key = (array_a, kind.value)
            if key in flagged:
                continue
            if form_a is None or form_b is None:
                flagged.add(key)
                emit(array_a, kind)
            elif form_a.structurally_equal(form_b):
                if not form_a.involves(loop_ast.var):
                    flagged.add(key)
                    emit(array_a, kind)
            elif gcd_test(form_a, form_b, loop_ast.var):
                flagged.add(key)
                emit(array_a, kind)
