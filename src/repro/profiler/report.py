"""Profiling result containers.

Instruction identity across the whole run is ``InstrKey = (function_name,
iid)`` since iids are only unique per function.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

InstrKey = Tuple[str, int]


class DepKind(enum.Enum):
    """Data-dependence kinds, as in the DiscoPoP dependence files."""

    RAW = "RAW"
    WAR = "WAR"
    WAW = "WAW"


@dataclass
class DepInfo:
    """Aggregated occurrences of one (source, sink, kind) dependence.

    ``carried`` counts occurrences by the id of the *outermost* loop whose
    iteration differs between source and sink (the loop that carries the
    dependence); ``independent`` counts loop-independent occurrences.
    """

    src: InstrKey
    dst: InstrKey
    kind: DepKind
    symbol: str
    count: int = 0
    independent: int = 0
    carried: Counter = field(default_factory=Counter)

    def is_carried_by(self, loop_id: str) -> bool:
        return self.carried.get(loop_id, 0) > 0


@dataclass
class LoopStats:
    """Dynamic statistics of one loop."""

    loop_id: str
    entries: int = 0
    total_iterations: int = 0
    dyn_instr_count: int = 0

    @property
    def mean_trip_count(self) -> float:
        if self.entries == 0:
            return 0.0
        return self.total_iterations / self.entries


@dataclass
class ProfileReport:
    """Everything the dynamic profiler learned from one run."""

    program_name: str
    deps: Dict[Tuple[InstrKey, InstrKey, DepKind], DepInfo] = field(
        default_factory=dict
    )
    loop_stats: Dict[str, LoopStats] = field(default_factory=dict)
    exec_counts: Counter = field(default_factory=Counter)  # InstrKey -> int
    steps: int = 0
    return_value: Optional[float] = None

    # -- dependence queries ---------------------------------------------------

    def all_deps(self) -> List[DepInfo]:
        return list(self.deps.values())

    def deps_carried_by(self, loop_id: str) -> List[DepInfo]:
        """Dependences carried by ``loop_id`` (outermost-differing semantics)."""
        return [d for d in self.deps.values() if d.is_carried_by(loop_id)]

    def symbols_carried_by(self, loop_id: str) -> Dict[str, Set[DepKind]]:
        """Map symbol -> kinds of dependences carried by ``loop_id`` on it."""
        out: Dict[str, Set[DepKind]] = {}
        for dep in self.deps_carried_by(loop_id):
            out.setdefault(dep.symbol, set()).add(dep.kind)
        return out

    def deps_touching(self, keys: Set[InstrKey]) -> List[DepInfo]:
        """Dependences whose source or sink is in ``keys``."""
        return [
            d for d in self.deps.values() if d.src in keys or d.dst in keys
        ]

    def record_loop_entry(self, loop_id: str) -> None:
        stats = self.loop_stats.get(loop_id)
        if stats is None:
            stats = self.loop_stats[loop_id] = LoopStats(loop_id)
        stats.entries += 1

    def record_loop_iteration(self, loop_id: str) -> None:
        stats = self.loop_stats.get(loop_id)
        if stats is None:
            stats = self.loop_stats[loop_id] = LoopStats(loop_id)
        stats.total_iterations += 1

    def summary(self) -> str:
        n_carried = sum(1 for d in self.deps.values() if d.carried)
        return (
            f"ProfileReport({self.program_name}: {self.steps} steps, "
            f"{len(self.deps)} deps ({n_carried} carried), "
            f"{len(self.loop_stats)} loops)"
        )
