"""Static control-flow queries over LinearIR.

Provides the control-region information DiscoPoP extracts statically:
CFG edges, predecessors, and the block -> innermost-loop mapping derived
from the loop metadata that lowering records.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir.linear import IRFunction, Opcode


def cfg_edges(fn: IRFunction) -> List[Tuple[str, str]]:
    """All (source_label, target_label) CFG edges of ``fn``."""
    edges: List[Tuple[str, str]] = []
    for block in fn.blocks:
        for succ in block.successors():
            edges.append((block.label, succ))
    return edges


def predecessors(fn: IRFunction) -> Dict[str, List[str]]:
    """Map block label -> predecessor labels."""
    preds: Dict[str, List[str]] = {b.label: [] for b in fn.blocks}
    for src, dst in cfg_edges(fn):
        preds[dst].append(src)
    return preds


def successors_map(fn: IRFunction) -> Dict[str, Tuple[str, ...]]:
    return {b.label: b.successors() for b in fn.blocks}


def block_loop_map(fn: IRFunction) -> Dict[str, Optional[str]]:
    """Map block label -> id of the innermost loop containing the block.

    Derived from the loop pseudo-instructions: a block belongs to loop L if
    it is reachable from L's body entry without passing through L's exit.
    Headers and latches belong to their own loop; pre-headers and exits do
    not.
    """
    owner: Dict[str, Optional[str]] = {b.label: None for b in fn.blocks}
    # Process loops outermost-first so inner assignments overwrite outer ones.
    loops = sorted(fn.loops.values(), key=lambda info: info.depth)
    succs = successors_map(fn)
    for info in loops:
        seen: Set[str] = set()
        stack = [info.header]
        while stack:
            label = stack.pop()
            if label in seen or label == info.exit:
                continue
            seen.add(label)
            owner[label] = info.loop_id
            for succ in succs.get(label, ()):
                stack.append(succ)
    return owner


def loop_block_sets(fn: IRFunction) -> Dict[str, Set[str]]:
    """Map loop id -> set of block labels inside the loop (header..latch)."""
    succs = successors_map(fn)
    out: Dict[str, Set[str]] = {}
    for info in fn.loops.values():
        seen: Set[str] = set()
        stack = [info.header]
        while stack:
            label = stack.pop()
            if label in seen or label == info.exit:
                continue
            seen.add(label)
            for succ in succs.get(label, ()):
                stack.append(succ)
        out[info.loop_id] = seen
    return out


def loop_instr_keys(fn: IRFunction, loop_id: str) -> Set[Tuple[str, int]]:
    """InstrKeys of all instructions inside ``loop_id`` (incl. nested loops)."""
    blocks = loop_block_sets(fn).get(loop_id)
    if blocks is None:
        return set()
    keys: Set[Tuple[str, int]] = set()
    for block in fn.blocks:
        if block.label in blocks:
            for instr in block.instrs:
                keys.add((fn.name, instr.iid))
    return keys


def loop_children(fn: IRFunction) -> Dict[Optional[str], List[str]]:
    """Map loop id (or None for top level) -> directly nested loop ids."""
    children: Dict[Optional[str], List[str]] = {}
    for info in fn.loops.values():
        children.setdefault(info.parent, []).append(info.loop_id)
    for ids in children.values():
        ids.sort()
    return children
