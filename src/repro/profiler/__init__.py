"""Dynamic profiler: the DiscoPoP-phase-1 analogue.

Interprets LinearIR with shadow memory, recording RAW/WAR/WAW data
dependences with exact loop-carried attribution, per-loop iteration counts,
and per-instruction execution counts — the same artefacts DiscoPoP phase 1
extracts from instrumented binaries (see DESIGN.md).
"""

from repro.profiler.report import DepKind, DepInfo, LoopStats, ProfileReport, InstrKey
from repro.profiler.shadow import ShadowMemory
from repro.profiler.interpreter import Interpreter, profile_program, run_program
from repro.profiler.static_info import cfg_edges, predecessors, block_loop_map
from repro.profiler.static_estimator import estimate_profile, estimate_trip_count

__all__ = [
    "DepKind", "DepInfo", "LoopStats", "ProfileReport", "InstrKey",
    "ShadowMemory",
    "Interpreter", "profile_program", "run_program",
    "cfg_edges", "predecessors", "block_loop_map",
    "estimate_profile", "estimate_trip_count",
]
