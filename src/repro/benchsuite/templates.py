"""Loop-nest template library.

Each template emits one or more loops into an open function, records each
loop's authored label (the "expert OpenMP annotation" that is the paper's
ground truth), and introduces deterministic per-instance variation
(coefficients, operand order, optional extra statements) so no two instances
are graph-identical.

Label conventions follow how the modeled benchmarks are annotated in their
OpenMP versions: DoALL loops, recognized scalar reductions, and privatizable
temporaries are parallel (1); loops with genuine loop-carried flow
dependences, array WAR/WAW, early exits, or unannotatable recurrences are
not (0).  A few templates are deliberately *hard* — their authored label
disagrees with what shallow features suggest (permutation scatters are
parallel although every static tool rejects them; argmax loops are
sequential although they look like reductions) — reproducing the annotation
noise the paper reports (Section IV-D, the IS loop-452 anecdote).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.ir.ast_nodes import Const


class TemplateContext:
    """Per-program authoring context handed to templates."""

    def __init__(
        self,
        pb: ProgramBuilder,
        fb: FunctionBuilder,
        rng: np.random.Generator,
        size: int = 16,
        side: int = 6,
    ) -> None:
        self.pb = pb
        self.fb = fb
        self.rng = rng
        self.size = size      # 1-D array length and default trip count
        self.side = side      # 2-D side length (arrays side*side)
        self._next_array = 0
        self._next_scalar = 0
        self.emitted: List[Tuple[str, int, str]] = []  # (loop_id, label, tmpl)

    # -- naming -------------------------------------------------------------

    def array(self, elems: int = 0, hint: str = "arr") -> str:
        name = f"{hint}{self._next_array}"
        self._next_array += 1
        self.pb.array(name, elems or self.size)
        return name

    def array2d(self, hint: str = "m") -> str:
        return self.array(self.side * self.side, hint)

    def scalar(self, hint: str = "t") -> str:
        name = f"{hint}{self._next_scalar}"
        self._next_scalar += 1
        return name

    def coeff(self, lo: float = 1.0, hi: float = 4.0) -> float:
        """Small integer-ish coefficient for instance variation."""
        return float(self.rng.integers(int(lo), int(hi) + 1))

    # -- recording ------------------------------------------------------------

    def record(self, scope, label: int, template: str) -> None:
        loop_id = scope.stmt.loop_id
        if loop_id is None:
            raise DatasetError("template loop missing a loop id")
        self.emitted.append((loop_id, int(label), template))

    def idx2(self, i, j) -> object:
        """Flattened 2-D index i*side + j."""
        fb = self.fb
        return fb.add(fb.mul(i, float(self.side)), j)


# ---------------------------------------------------------------------------
# Parallel (DoALL / reduction) templates
# ---------------------------------------------------------------------------


def t_init(ctx: TemplateContext) -> None:
    """a[i] = c1*i + c2 — canonical initialization DoALL."""
    fb = ctx.fb
    a = ctx.array()
    c1, c2 = ctx.coeff(), ctx.coeff()
    with fb.loop(ctx.scalar("i"), 0, ctx.size) as i:
        fb.store(a, i, fb.add(fb.mul(i, c1), c2))
    ctx.record(_last_loop(fb), 1, "init")


def t_copy(ctx: TemplateContext) -> None:
    """b[i] = a[i]."""
    fb = ctx.fb
    a, b = ctx.array(), ctx.array()
    with fb.loop(ctx.scalar("i"), 0, ctx.size) as i:
        fb.store(b, i, fb.load(a, i))
    ctx.record(_last_loop(fb), 1, "copy")


def t_scale(ctx: TemplateContext) -> None:
    """b[i] = alpha * a[i]."""
    fb = ctx.fb
    a, b = ctx.array(), ctx.array()
    alpha = ctx.scalar("alpha")
    fb.assign(alpha, ctx.coeff())
    with fb.loop(ctx.scalar("i"), 0, ctx.size) as i:
        fb.store(b, i, fb.mul(alpha, fb.load(a, i)))
    ctx.record(_last_loop(fb), 1, "scale")


def t_vadd(ctx: TemplateContext) -> None:
    """c[i] = a[i] + b[i] (sometimes with an extra scaling)."""
    fb = ctx.fb
    a, b, c = ctx.array(), ctx.array(), ctx.array()
    with fb.loop(ctx.scalar("i"), 0, ctx.size) as i:
        rhs = fb.add(fb.load(a, i), fb.load(b, i))
        if ctx.rng.random() < 0.5:
            rhs = fb.mul(rhs, ctx.coeff())
        fb.store(c, i, rhs)
    ctx.record(_last_loop(fb), 1, "vadd")


def t_saxpy(ctx: TemplateContext) -> None:
    """y[i] = alpha*x[i] + y[i] — same-subscript in-place update (DoALL)."""
    fb = ctx.fb
    x, y = ctx.array(), ctx.array()
    alpha = ctx.scalar("alpha")
    fb.assign(alpha, ctx.coeff())
    with fb.loop(ctx.scalar("i"), 0, ctx.size) as i:
        fb.store(y, i, fb.add(fb.mul(alpha, fb.load(x, i)), fb.load(y, i)))
    ctx.record(_last_loop(fb), 1, "saxpy")


def t_stencil3(ctx: TemplateContext) -> None:
    """b[i] = w*(a[i-1] + a[i] + a[i+1]) — out-of-place 3-point stencil."""
    fb = ctx.fb
    a, b = ctx.array(), ctx.array()
    w = 1.0 / ctx.coeff(2, 4)
    with fb.loop(ctx.scalar("i"), 1, ctx.size - 1) as i:
        total = fb.add(
            fb.add(fb.load(a, fb.sub(i, 1.0)), fb.load(a, i)),
            fb.load(a, fb.add(i, 1.0)),
        )
        fb.store(b, i, fb.mul(total, w))
    ctx.record(_last_loop(fb), 1, "stencil3")


def t_stencil5(ctx: TemplateContext) -> None:
    """5-point out-of-place stencil."""
    fb = ctx.fb
    a, b = ctx.array(), ctx.array()
    with fb.loop(ctx.scalar("i"), 2, ctx.size - 2) as i:
        total = fb.add(
            fb.add(
                fb.add(fb.load(a, fb.sub(i, 2.0)), fb.load(a, fb.sub(i, 1.0))),
                fb.add(fb.load(a, fb.add(i, 1.0)), fb.load(a, fb.add(i, 2.0))),
            ),
            fb.load(a, i),
        )
        fb.store(b, i, fb.mul(total, 0.2))
    ctx.record(_last_loop(fb), 1, "stencil5")


def t_stencil2d(ctx: TemplateContext) -> None:
    """Out-of-place 2-D 5-point stencil over a flattened grid: 2 loops."""
    fb = ctx.fb
    a, b = ctx.array2d(), ctx.array2d()
    w = 1.0 / ctx.coeff(4, 6)
    side = ctx.side
    with fb.loop(ctx.scalar("i"), 1, side - 1) as i:
        outer = _last_loop(fb)
        with fb.loop(ctx.scalar("j"), 1, side - 1) as j:
            inner = _last_loop(fb)
            center = ctx.idx2(i, j)
            total = fb.add(
                fb.add(
                    fb.load(a, fb.sub(center, 1.0)),
                    fb.load(a, fb.add(center, 1.0)),
                ),
                fb.add(
                    fb.load(a, fb.sub(center, float(side))),
                    fb.load(a, fb.add(center, float(side))),
                ),
            )
            fb.store(b, center, fb.mul(total, w))
    ctx.record(outer, 1, "stencil2d")
    ctx.record(inner, 1, "stencil2d")


def t_reduction_sum(ctx: TemplateContext) -> None:
    """s += a[i] — scalar sum reduction (optionally weighted)."""
    fb = ctx.fb
    a = ctx.array()
    s = ctx.scalar("s")
    fb.assign(s, 0.0)
    weighted = ctx.rng.random() < 0.5
    with fb.loop(ctx.scalar("i"), 0, ctx.size) as i:
        term = fb.load(a, i)
        if weighted:
            term = fb.mul(term, ctx.coeff())
        fb.assign(s, fb.add(s, term))
    ctx.record(_last_loop(fb), 1, "reduction_sum")


def t_reduction_max(ctx: TemplateContext) -> None:
    """m = max(m, a[i]) — max reduction via the max operator."""
    fb = ctx.fb
    a = ctx.array()
    m = ctx.scalar("m")
    fb.assign(m, -1.0e9)
    op = "max" if ctx.rng.random() < 0.5 else "min"
    with fb.loop(ctx.scalar("i"), 0, ctx.size) as i:
        fb.assign(m, fb.cmp(op, m, fb.load(a, i)))
    ctx.record(_last_loop(fb), 1, "reduction_max")


def t_dot(ctx: TemplateContext) -> None:
    """s += a[i]*b[i] — dot product."""
    fb = ctx.fb
    a, b = ctx.array(), ctx.array()
    s = ctx.scalar("s")
    fb.assign(s, 0.0)
    with fb.loop(ctx.scalar("i"), 0, ctx.size) as i:
        fb.assign(s, fb.add(s, fb.mul(fb.load(a, i), fb.load(b, i))))
    ctx.record(_last_loop(fb), 1, "dot")


def t_matmul(ctx: TemplateContext) -> None:
    """C = A @ B with a scalar accumulator: 3 loops, all parallel."""
    fb = ctx.fb
    A, B, C = ctx.array2d("A"), ctx.array2d("B"), ctx.array2d("C")
    side = ctx.side
    t = ctx.scalar("acc")
    with fb.loop(ctx.scalar("i"), 0, side) as i:
        li = _last_loop(fb)
        with fb.loop(ctx.scalar("j"), 0, side) as j:
            lj = _last_loop(fb)
            fb.assign(t, 0.0)
            with fb.loop(ctx.scalar("k"), 0, side) as k:
                lk = _last_loop(fb)
                fb.assign(
                    t,
                    fb.add(
                        t,
                        fb.mul(fb.load(A, ctx.idx2(i, k)), fb.load(B, ctx.idx2(k, j))),
                    ),
                )
            fb.store(C, ctx.idx2(i, j), fb.var(t))
    ctx.record(li, 1, "matmul")
    ctx.record(lj, 1, "matmul")
    ctx.record(lk, 1, "matmul")


def t_strided(ctx: TemplateContext) -> None:
    """a[2i] = a[2i+1]*c + b[i]: disjoint strided access (GCD-provable)."""
    fb = ctx.fb
    a = ctx.array(2 * ctx.size + 2)
    b = ctx.array()
    c = ctx.coeff()
    with fb.loop(ctx.scalar("i"), 0, ctx.size) as i:
        even = fb.mul(i, 2.0)
        odd = fb.add(fb.mul(i, 2.0), 1.0)
        fb.store(a, even, fb.add(fb.mul(fb.load(a, odd), c), fb.load(b, i)))
    ctx.record(_last_loop(fb), 1, "strided")


def t_reverse_copy(ctx: TemplateContext) -> None:
    """b[i] = a[N-1-i] — reversal (distinct arrays: DoALL)."""
    fb = ctx.fb
    a, b = ctx.array(), ctx.array()
    with fb.loop(ctx.scalar("i"), 0, ctx.size) as i:
        fb.store(b, i, fb.load(a, fb.sub(float(ctx.size - 1), i)))
    ctx.record(_last_loop(fb), 1, "reverse_copy")


def t_gather(ctx: TemplateContext) -> None:
    """b[i] = a[idx[i]] — indirect gather.  2 loops: idx init + gather.

    Parallel (reads may alias freely), but the indirect subscript defeats
    every static tool.
    """
    fb = ctx.fb
    a, b, idx = ctx.array(), ctx.array(), ctx.array(hint="idx")
    stride = int(ctx.rng.choice([3, 5, 7]))
    with fb.loop(ctx.scalar("i"), 0, ctx.size) as i:
        fb.store(idx, i, fb.mod(fb.mul(i, float(stride)), float(ctx.size)))
    ctx.record(_last_loop(fb), 1, "gather_init")
    with fb.loop(ctx.scalar("i"), 0, ctx.size) as i:
        fb.store(b, i, fb.load(a, fb.load(idx, i)))
    ctx.record(_last_loop(fb), 1, "gather")


def t_scatter_perm(ctx: TemplateContext) -> None:
    """b[p[i]] = a[i] with p a permutation — parallel in truth, rejected by
    every static tool (the annotated expert knows p is injective)."""
    fb = ctx.fb
    a, p = ctx.array(), ctx.array(hint="perm")
    # i*mult mod (size+1) is injective for i < size when mult is coprime
    # with size+1 (size 16 -> modulus 17, prime: any mult in 3/5/7 works)
    mult = int(ctx.rng.choice([3, 5, 7]))
    with fb.loop(ctx.scalar("i"), 0, ctx.size) as i:
        fb.store(p, i, fb.mod(fb.mul(i, float(mult)), float(ctx.size + 1)))
    ctx.record(_last_loop(fb), 1, "scatter_perm_init")
    target = ctx.array(ctx.size + 1)
    with fb.loop(ctx.scalar("i"), 0, ctx.size) as i:
        fb.store(target, fb.load(p, i), fb.load(a, i))
    ctx.record(_last_loop(fb), 1, "scatter_perm")


def t_doall_call(ctx: TemplateContext) -> None:
    """b[i] = f(a[i]) with f pure — parallel; DiscoPoP rejects on the call."""
    fb = ctx.fb
    pb = ctx.pb
    helper = f"pure_fn{ctx._next_scalar}"
    ctx._next_scalar += 1
    with pb.function(helper, params=("x",)) as hf:
        hf.ret(hf.add(hf.mul(hf.var("x"), hf.var("x")), ctx.coeff()))
    a, b = ctx.array(), ctx.array()
    with fb.loop(ctx.scalar("i"), 0, ctx.size) as i:
        fb.store(b, i, fb.call(helper, fb.load(a, i)))
    ctx.record(_last_loop(fb), 1, "doall_call")


def t_triangular_gemm(ctx: TemplateContext) -> None:
    """Triangular matrix update (trmm-like): 3 affine loops, all parallel."""
    fb = ctx.fb
    A, B = ctx.array2d("A"), ctx.array2d("B")
    side = ctx.side
    t = ctx.scalar("acc")
    with fb.loop(ctx.scalar("i"), 0, side) as i:
        li = _last_loop(fb)
        with fb.loop(ctx.scalar("j"), 0, side) as j:
            lj = _last_loop(fb)
            fb.assign(t, 0.0)
            with fb.loop(ctx.scalar("k"), fb.add(i, 1.0), side) as k:
                lk = _last_loop(fb)
                fb.assign(
                    t,
                    fb.add(t, fb.mul(fb.load(A, ctx.idx2(k, i)), fb.load(B, ctx.idx2(k, j)))),
                )
            fb.store(B, ctx.idx2(i, j), fb.add(fb.load(B, ctx.idx2(i, j)), fb.var(t)))
    ctx.record(li, 0, "triangular_gemm_outer")
    ctx.record(lj, 1, "triangular_gemm")
    ctx.record(lk, 1, "triangular_gemm")


# ---------------------------------------------------------------------------
# Non-parallel templates
# ---------------------------------------------------------------------------


def t_gauss_seidel(ctx: TemplateContext) -> None:
    """a[i] = (a[i-1] + a[i+1]) * 0.5 — in-place relaxation (sequential)."""
    fb = ctx.fb
    a = ctx.array()
    with fb.loop(ctx.scalar("i"), 1, ctx.size - 1) as i:
        fb.store(
            a,
            i,
            fb.mul(
                fb.add(fb.load(a, fb.sub(i, 1.0)), fb.load(a, fb.add(i, 1.0))),
                0.5,
            ),
        )
    ctx.record(_last_loop(fb), 0, "gauss_seidel")


def t_recurrence(ctx: TemplateContext) -> None:
    """a[i] = a[i-1]*c + b[i] — first-order linear recurrence."""
    fb = ctx.fb
    a, b = ctx.array(), ctx.array()
    c = 1.0 / ctx.coeff(2, 4)
    with fb.loop(ctx.scalar("i"), 1, ctx.size) as i:
        fb.store(
            a, i, fb.add(fb.mul(fb.load(a, fb.sub(i, 1.0)), c), fb.load(b, i))
        )
    ctx.record(_last_loop(fb), 0, "recurrence")


def t_prefix_sum(ctx: TemplateContext) -> None:
    """s += a[i]; b[i] = s — scan: the accumulator escapes, not a reduction."""
    fb = ctx.fb
    a, b = ctx.array(), ctx.array()
    s = ctx.scalar("s")
    fb.assign(s, 0.0)
    with fb.loop(ctx.scalar("i"), 0, ctx.size) as i:
        fb.assign(s, fb.add(s, fb.load(a, i)))
        fb.store(b, i, fb.var(s))
    ctx.record(_last_loop(fb), 0, "prefix_sum")


def t_fib_loop(ctx: TemplateContext) -> None:
    """f[i] = f[i-1] + f[i-2] — second-order recurrence."""
    fb = ctx.fb
    f = ctx.array()
    fb.store(f, 0, 1.0)
    fb.store(f, 1, 1.0)
    with fb.loop(ctx.scalar("i"), 2, ctx.size) as i:
        fb.store(
            f, i, fb.add(fb.load(f, fb.sub(i, 1.0)), fb.load(f, fb.sub(i, 2.0)))
        )
    ctx.record(_last_loop(fb), 0, "fib_loop")


def t_histogram(ctx: TemplateContext) -> None:
    """h[bucket(a[i])] += 1 — colliding indirect increments (2 loops)."""
    fb = ctx.fb
    a, h = ctx.array(), ctx.array(8, hint="hist")
    with fb.loop(ctx.scalar("i"), 0, ctx.size) as i:
        fb.store(a, i, fb.mod(fb.mul(i, ctx.coeff()), 8.0))
    ctx.record(_last_loop(fb), 1, "histogram_init")
    with fb.loop(ctx.scalar("i"), 0, ctx.size) as i:
        bucket = fb.load(a, i)
        fb.store(h, bucket, fb.add(fb.load(h, bucket), 1.0))
    ctx.record(_last_loop(fb), 0, "histogram")


def t_scatter_collide(ctx: TemplateContext) -> None:
    """a[i % k] += b[i] — colliding scatter (2 loops with the init)."""
    fb = ctx.fb
    a, b = ctx.array(8, hint="acc"), ctx.array()
    k = float(ctx.rng.choice([2, 4]))
    with fb.loop(ctx.scalar("i"), 0, 8) as i:
        fb.store(a, i, 0.0)
    ctx.record(_last_loop(fb), 1, "scatter_collide_init")
    with fb.loop(ctx.scalar("i"), 0, ctx.size) as i:
        slot = fb.mod(i, k)
        fb.store(a, slot, fb.add(fb.load(a, slot), fb.load(b, i)))
    ctx.record(_last_loop(fb), 0, "scatter_collide")


def t_argmax(ctx: TemplateContext) -> None:
    """Conditional max + index tracking — not an OpenMP-expressible reduction."""
    fb = ctx.fb
    a = ctx.array()
    m, mi = ctx.scalar("m"), ctx.scalar("mi")
    fb.assign(m, -1.0e9)
    fb.assign(mi, 0.0)
    with fb.loop(ctx.scalar("i"), 0, ctx.size) as i:
        with fb.if_block(fb.cmp(">", fb.load(a, i), fb.var(m))):
            fb.assign(m, fb.load(a, i))
            fb.assign(mi, i)
    ctx.record(_last_loop(fb), 0, "argmax")


def t_anti_dep(ctx: TemplateContext) -> None:
    """a[i] = a[i+1] + b[i] — loop-carried anti dependence."""
    fb = ctx.fb
    a, b = ctx.array(), ctx.array()
    with fb.loop(ctx.scalar("i"), 0, ctx.size - 1) as i:
        fb.store(a, i, fb.add(fb.load(a, fb.add(i, 1.0)), fb.load(b, i)))
    ctx.record(_last_loop(fb), 0, "anti_dep")


def t_waw_fixed(ctx: TemplateContext) -> None:
    """a[c] = f(i) every iteration — carried WAW on a fixed cell."""
    fb = ctx.fb
    a, b = ctx.array(), ctx.array()
    slot = float(ctx.rng.integers(0, 4))
    with fb.loop(ctx.scalar("i"), 0, ctx.size) as i:
        fb.store(a, slot, fb.mul(fb.load(b, i), ctx.coeff()))
    ctx.record(_last_loop(fb), 0, "waw_fixed")


def t_flag_search(ctx: TemplateContext) -> None:
    """First-hit search with break — early exit prevents parallelization."""
    fb = ctx.fb
    a = ctx.array()
    found = ctx.scalar("found")
    fb.assign(found, -1.0)
    threshold = 0.9
    with fb.loop(ctx.scalar("i"), 0, ctx.size) as i:
        with fb.if_block(fb.cmp(">", fb.load(a, i), threshold)):
            fb.assign(found, i)
            fb.brk()
    ctx.record(_last_loop(fb), 0, "flag_search")


def t_seq_call(ctx: TemplateContext) -> None:
    """Loop calling a stateful helper that accumulates into a global array."""
    fb = ctx.fb
    pb = ctx.pb
    state = ctx.array(4, hint="state")
    helper = f"stateful_fn{ctx._next_scalar}"
    ctx._next_scalar += 1
    with pb.function(helper, params=("x",)) as hf:
        hf.store(state, 0, hf.add(hf.load(state, 0), hf.var("x")))
        hf.ret(hf.load(state, 0))
    a, b = ctx.array(), ctx.array()
    with fb.loop(ctx.scalar("i"), 0, ctx.size) as i:
        fb.store(b, i, fb.call(helper, fb.load(a, i)))
    ctx.record(_last_loop(fb), 0, "seq_call")


# ---------------------------------------------------------------------------
# Multi-loop composites
# ---------------------------------------------------------------------------


def t_jacobi_step(ctx: TemplateContext) -> None:
    """Jacobi time stepping: sequential time loop, two parallel inner loops."""
    fb = ctx.fb
    a, b = ctx.array(), ctx.array()
    steps = int(ctx.rng.integers(2, 4))
    with fb.loop(ctx.scalar("t"), 0, steps) as t:
        time_loop = _last_loop(fb)
        with fb.loop(ctx.scalar("i"), 1, ctx.size - 1) as i:
            compute = _last_loop(fb)
            fb.store(
                b,
                i,
                fb.mul(
                    fb.add(
                        fb.load(a, fb.sub(i, 1.0)), fb.load(a, fb.add(i, 1.0))
                    ),
                    0.5,
                ),
            )
        with fb.loop(ctx.scalar("i"), 1, ctx.size - 1) as i:
            copy_back = _last_loop(fb)
            fb.store(a, i, fb.load(b, i))
    ctx.record(time_loop, 0, "jacobi_time")
    ctx.record(compute, 1, "jacobi_compute")
    ctx.record(copy_back, 1, "jacobi_copy")


def t_triangular_solve(ctx: TemplateContext) -> None:
    """Forward substitution: sequential outer, reduction inner (2 loops)."""
    fb = ctx.fb
    L, x, rhs = ctx.array2d("L"), ctx.array(hint="x"), ctx.array(hint="rhs")
    side = ctx.side
    t = ctx.scalar("acc")
    with fb.loop(ctx.scalar("i"), 0, side) as i:
        outer = _last_loop(fb)
        fb.assign(t, fb.load(rhs, i))
        with fb.loop(ctx.scalar("j"), 0, i) as j:
            inner = _last_loop(fb)
            fb.assign(
                t, fb.sub(t, fb.mul(fb.load(L, ctx.idx2(i, j)), fb.load(x, j)))
            )
        fb.store(x, i, fb.div(fb.var(t), fb.add(fb.load(L, ctx.idx2(i, i)), 2.0)))
    ctx.record(outer, 0, "triangular_outer")
    ctx.record(inner, 1, "triangular_inner")


def t_wavefront(ctx: TemplateContext) -> None:
    """2-D wavefront a[i][j] += a[i-1][j] + a[i][j-1]: both loops sequential."""
    fb = ctx.fb
    a = ctx.array2d()
    side = ctx.side
    with fb.loop(ctx.scalar("i"), 1, side) as i:
        outer = _last_loop(fb)
        with fb.loop(ctx.scalar("j"), 1, side) as j:
            inner = _last_loop(fb)
            center = ctx.idx2(i, j)
            fb.store(
                a,
                center,
                fb.add(
                    fb.load(a, fb.sub(center, float(side))),
                    fb.load(a, fb.sub(center, 1.0)),
                ),
            )
    ctx.record(outer, 0, "wavefront")
    ctx.record(inner, 0, "wavefront")


def t_fft_stride(ctx: TemplateContext) -> None:
    """Butterfly-style strided update: disjoint pairs (parallel, affine)."""
    fb = ctx.fb
    a = ctx.array(2 * ctx.size + 2)
    half = ctx.size
    w = 1.0 / ctx.coeff(2, 3)
    with fb.loop(ctx.scalar("i"), 0, half) as i:
        hi = fb.add(fb.mul(i, 2.0), 1.0)
        lo = fb.mul(i, 2.0)
        u = ctx.scalar("u")
        v = ctx.scalar("v")
        fb.assign(u, fb.load(a, lo))
        fb.assign(v, fb.mul(fb.load(a, hi), w))
        fb.store(a, lo, fb.add(fb.var(u), fb.var(v)))
        fb.store(a, hi, fb.sub(fb.var(u), fb.var(v)))
    ctx.record(_last_loop(fb), 1, "fft_stride")


def t_norm_loop(ctx: TemplateContext) -> None:
    """Two loops: squared-sum reduction then normalization DoALL."""
    fb = ctx.fb
    a = ctx.array()
    s = ctx.scalar("s")
    fb.assign(s, 0.0)
    with fb.loop(ctx.scalar("i"), 0, ctx.size) as i:
        v = fb.load(a, i)
        fb.assign(s, fb.add(s, fb.mul(v, v)))
    ctx.record(_last_loop(fb), 1, "norm_reduce")
    inv = ctx.scalar("inv")
    fb.assign(inv, fb.div(1.0, fb.add(fb.call("sqrt", fb.var(s)), 1.0)))
    with fb.loop(ctx.scalar("i"), 0, ctx.size) as i:
        fb.store(a, i, fb.mul(fb.load(a, i), fb.var(inv)))
    ctx.record(_last_loop(fb), 1, "norm_scale")


def _last_loop(fb: FunctionBuilder):
    """The most recently opened loop scope's statement (for recording)."""

    class _Holder:
        def __init__(self, stmt) -> None:
            self.stmt = stmt

    # walk the innermost open scope stack: the loop we just closed is the
    # last For statement appended to the current scope
    from repro.ir.ast_nodes import For

    for scope in reversed(fb._scopes):
        for stmt in reversed(scope):
            if isinstance(stmt, For):
                return _Holder(stmt)
    raise DatasetError("no loop emitted yet")


#: Registry: template name -> (builder fn, number of loops emitted).
TEMPLATES: Dict[str, Tuple[Callable[[TemplateContext], None], int]] = {
    "init": (t_init, 1),
    "copy": (t_copy, 1),
    "scale": (t_scale, 1),
    "vadd": (t_vadd, 1),
    "saxpy": (t_saxpy, 1),
    "stencil3": (t_stencil3, 1),
    "stencil5": (t_stencil5, 1),
    "stencil2d": (t_stencil2d, 2),
    "reduction_sum": (t_reduction_sum, 1),
    "reduction_max": (t_reduction_max, 1),
    "dot": (t_dot, 1),
    "matmul": (t_matmul, 3),
    "strided": (t_strided, 1),
    "reverse_copy": (t_reverse_copy, 1),
    "gather": (t_gather, 2),
    "scatter_perm": (t_scatter_perm, 2),
    "doall_call": (t_doall_call, 1),
    "triangular_gemm": (t_triangular_gemm, 3),
    "gauss_seidel": (t_gauss_seidel, 1),
    "recurrence": (t_recurrence, 1),
    "prefix_sum": (t_prefix_sum, 1),
    "fib_loop": (t_fib_loop, 1),
    "histogram": (t_histogram, 2),
    "scatter_collide": (t_scatter_collide, 2),
    "argmax": (t_argmax, 1),
    "anti_dep": (t_anti_dep, 1),
    "waw_fixed": (t_waw_fixed, 1),
    "flag_search": (t_flag_search, 1),
    "seq_call": (t_seq_call, 1),
    "jacobi_step": (t_jacobi_step, 3),
    "triangular_solve": (t_triangular_solve, 2),
    "wavefront": (t_wavefront, 2),
    "fft_stride": (t_fft_stride, 1),
    "norm_loop": (t_norm_loop, 2),
}
