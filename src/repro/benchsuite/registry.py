"""Application registry and Table II conformance.

``TABLE_II_COUNTS`` is the paper's Table II verbatim; ``build_app`` checks
the composed application against it so any plan drift fails loudly.
"""

from __future__ import annotations

from typing import Dict, List

from repro.benchsuite.apps import compose_app
from repro.benchsuite.base import AppSpec
from repro.errors import DatasetError

#: Table II of the paper: application -> number of for-loops.
TABLE_II_COUNTS: Dict[str, int] = {
    "BT": 184,
    "SP": 252,
    "LU": 173,
    "IS": 25,
    "EP": 10,
    "CG": 32,
    "MG": 74,
    "FT": 37,
    "2mm": 17,
    "jacobi-2d": 10,
    "syr2k": 11,
    "trmm": 9,
    "fib": 2,
    "nqueens": 4,
}

SUITE_OF_APP: Dict[str, str] = {
    "BT": "NPB", "SP": "NPB", "LU": "NPB", "IS": "NPB",
    "EP": "NPB", "CG": "NPB", "MG": "NPB", "FT": "NPB",
    "2mm": "PolyBench", "jacobi-2d": "PolyBench",
    "syr2k": "PolyBench", "trmm": "PolyBench",
    "fib": "BOTS", "nqueens": "BOTS",
}

_APP_SEEDS: Dict[str, int] = {
    name: 1000 + pos for pos, name in enumerate(TABLE_II_COUNTS)
}


def app_names() -> List[str]:
    return list(TABLE_II_COUNTS)


def build_app(name: str, seed_offset: int = 0) -> AppSpec:
    """Compose one application and verify its Table II loop count."""
    if name not in TABLE_II_COUNTS:
        raise DatasetError(
            f"unknown application {name!r}; known: {app_names()}"
        )
    spec = compose_app(
        name, SUITE_OF_APP[name], seed=_APP_SEEDS[name] + seed_offset
    )
    spec.validate(TABLE_II_COUNTS[name])
    return spec


def build_suite(suite: str, seed_offset: int = 0) -> List[AppSpec]:
    apps = [n for n, s in SUITE_OF_APP.items() if s == suite]
    if not apps:
        raise DatasetError(f"unknown suite {suite!r}")
    return [build_app(n, seed_offset) for n in apps]


def build_all_apps(seed_offset: int = 0) -> List[AppSpec]:
    return [build_app(n, seed_offset) for n in app_names()]
