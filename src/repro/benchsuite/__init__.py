"""Synthetic re-creations of the paper's benchmark applications (Table II).

The 14 applications (NPB BT/SP/LU/IS/EP/CG/MG/FT, PolyBench 2mm/jacobi-2d/
syr2k/trmm, BOTS fib/nqueens) are composed from a library of loop-nest
templates whose dependence structures mirror the originals' (stencils,
reductions, triangular solves, recurrences, indirect accesses, task-style
recursion).  Per-application loop counts match Table II exactly, enforced by
a registry check.
"""

from repro.benchsuite.base import AppSpec, LabeledLoop
from repro.benchsuite.templates import TEMPLATES, TemplateContext
from repro.benchsuite.registry import (
    TABLE_II_COUNTS,
    SUITE_OF_APP,
    build_app,
    build_suite,
    build_all_apps,
    app_names,
)

__all__ = [
    "AppSpec", "LabeledLoop",
    "TEMPLATES", "TemplateContext",
    "TABLE_II_COUNTS", "SUITE_OF_APP",
    "build_app", "build_suite", "build_all_apps", "app_names",
]
