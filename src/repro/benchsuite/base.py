"""Benchmark application containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import DatasetError
from repro.ir.ast_nodes import Program, count_loops


@dataclass
class LabeledLoop:
    """One annotated loop of a benchmark application."""

    loop_id: str
    label: int               # 1 = parallelizable (authored OpenMP annotation)
    template: str            # template the loop came from
    program_name: str
    annotation_quirk: bool = False   # deliberately noisy label (cf. IS #452)


@dataclass
class AppSpec:
    """A benchmark application: programs + authored loop labels."""

    name: str
    suite: str
    programs: List[Program] = field(default_factory=list)
    loops: Dict[str, LabeledLoop] = field(default_factory=dict)

    @property
    def loop_count(self) -> int:
        return len(self.loops)

    def validate(self, expected_loops: int) -> None:
        actual_in_programs = sum(count_loops(p) for p in self.programs)
        if actual_in_programs != len(self.loops):
            raise DatasetError(
                f"{self.name}: {actual_in_programs} loops in programs but "
                f"{len(self.loops)} labeled"
            )
        if len(self.loops) != expected_loops:
            raise DatasetError(
                f"{self.name}: built {len(self.loops)} loops, Table II "
                f"requires {expected_loops}"
            )

    def label_counts(self) -> Dict[int, int]:
        counts = {0: 0, 1: 0}
        for loop in self.loops.values():
            counts[loop.label] += 1
        return counts
