"""Application plans: which templates, how many, per benchmark application.

Each plan mirrors the loop-population character of the original application:
BT/SP are stencil-and-solve dominated, LU adds wavefronts and triangular
sweeps (and the call-bearing loops behind the paper's LU.setiv anecdote), IS
is bucket/histogram code, EP is reductions, CG is sparse (indirect) algebra,
MG is multigrid smoothing, FT is strided butterflies; the PolyBench four are
pure polyhedral nests; the BOTS two are small programs around recursive
task functions.  Template call counts are chosen so per-app loop totals
match Table II exactly (checked by the registry).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.benchsuite.base import AppSpec, LabeledLoop
from repro.benchsuite.templates import TEMPLATES, TemplateContext
from repro.errors import DatasetError
from repro.ir.builder import ProgramBuilder

#: template plan per app: list of (template_name, call_count)
APP_PLANS: Dict[str, List[Tuple[str, int]]] = {
    # ---- NPB ----------------------------------------------------------
    "BT": [
        ("stencil2d", 15), ("stencil3", 12), ("stencil5", 8), ("init", 16),
        ("copy", 8), ("scale", 6), ("vadd", 10), ("saxpy", 8), ("matmul", 6),
        ("triangular_solve", 5), ("jacobi_step", 4), ("reduction_sum", 5),
        ("reduction_max", 3),
        ("dot", 6), ("norm_loop", 5), ("doall_call", 4), ("recurrence", 3),
        ("gauss_seidel", 2), ("strided", 5), ("reverse_copy", 4),
        ("argmax", 2), ("fft_stride", 2),
    ],
    "SP": [
        ("stencil2d", 20), ("stencil3", 16), ("stencil5", 10), ("init", 22),
        ("copy", 12), ("scale", 8), ("vadd", 19), ("saxpy", 10), ("matmul", 8),
        ("triangular_solve", 6), ("jacobi_step", 5), ("reduction_sum", 6),
        ("reduction_max", 4),
        ("dot", 8), ("norm_loop", 6), ("doall_call", 5), ("recurrence", 4),
        ("strided", 6), ("reverse_copy", 5), ("fft_stride", 4), ("argmax", 3),
        ("gauss_seidel", 2), ("anti_dep", 1), ("wavefront", 2),
    ],
    "LU": [
        ("stencil2d", 12), ("init", 14), ("copy", 8), ("vadd", 10),
        ("saxpy", 6), ("matmul", 5), ("triangular_solve", 8),
        ("triangular_gemm", 4), ("wavefront", 3), ("jacobi_step", 4),
        ("reduction_sum", 5), ("reduction_max", 3), ("dot", 5), ("doall_call", 5),
        ("recurrence", 4), ("gauss_seidel", 2), ("strided", 4),
        ("reverse_copy", 4), ("norm_loop", 4), ("scale", 4), ("stencil3", 6),
    ],
    "IS": [
        ("histogram", 4), ("scatter_collide", 2), ("gather", 2),
        ("scatter_perm", 2), ("init", 3), ("prefix_sum", 2),
    ],
    "EP": [
        ("reduction_sum", 3), ("dot", 2), ("init", 2), ("doall_call", 1),
        ("argmax", 1), ("reduction_max", 1),
    ],
    "CG": [
        ("gather", 4), ("dot", 4), ("reduction_sum", 3), ("saxpy", 4),
        ("init", 3), ("norm_loop", 2), ("scatter_perm", 1),
        ("recurrence", 1), ("prefix_sum", 1), ("triangular_solve", 1),
    ],
    "MG": [
        ("stencil2d", 10), ("stencil3", 8), ("stencil5", 6),
        ("jacobi_step", 4), ("init", 6), ("copy", 5), ("vadd", 4),
        ("reduction_sum", 2), ("reduction_max", 2), ("norm_loop", 3), ("gauss_seidel", 2),
        ("reverse_copy", 1),
    ],
    "FT": [
        ("fft_stride", 8), ("strided", 4), ("init", 2), ("copy", 3),
        ("scale", 3), ("reduction_sum", 1), ("reduction_max", 1), ("dot", 2), ("matmul", 1),
        ("jacobi_step", 1), ("reverse_copy", 2), ("gather", 2), ("argmax", 1),
    ],
    # ---- PolyBench -------------------------------------------------------
    "2mm": [("matmul", 4), ("init", 3), ("scale", 2)],
    "jacobi-2d": [("jacobi_step", 2), ("stencil2d", 1), ("init", 2)],
    "syr2k": [("triangular_gemm", 2), ("matmul", 1), ("init", 2)],
    "trmm": [("triangular_gemm", 2), ("triangular_solve", 1), ("init", 1)],
    # ---- BOTS ------------------------------------------------------------
    "fib": [("init", 1), ("fib_loop", 1)],
    "nqueens": [("flag_search", 1), ("argmax", 1), ("init", 1),
                ("doall_call", 1)],
}

#: apps whose programs additionally define and call a recursive task function
_RECURSIVE_APPS = {"fib", "nqueens"}

#: fraction of loops whose authored label is flipped (annotation noise; the
#: paper's Section IV-D attributes misclassifications to exactly this)
ANNOTATION_QUIRK_FRACTION = 0.05

#: template calls per generated program
_CALLS_PER_PROGRAM = 5


def _interleave_plan(
    plan: List[Tuple[str, int]], rng: np.random.Generator
) -> List[str]:
    """Flatten a plan into a deterministic shuffled call sequence."""
    calls: List[str] = []
    for name, count in plan:
        if name not in TEMPLATES:
            raise DatasetError(f"unknown template {name!r} in plan")
        calls.extend([name] * count)
    order = rng.permutation(len(calls))
    return [calls[i] for i in order]


def _add_recursive_task(pb: ProgramBuilder, fb, app: str) -> None:
    """Give BOTS programs their recursive task function + a driver call."""
    if app == "fib":
        with pb.function("fib_rec", params=("n",)) as rf:
            with rf.if_block(rf.cmp("<", "n", 2.0)):
                rf.ret(rf.var("n"))
            rf.ret(
                rf.add(
                    rf.call("fib_rec", rf.sub("n", 1.0)),
                    rf.call("fib_rec", rf.sub("n", 2.0)),
                )
            )
        fb.assign("fib_result", fb.call("fib_rec", 8.0))
    else:  # nqueens-style: recursive descent with a depth bound
        pb.array("board", 8)
        with pb.function("place_rec", params=("depth",)) as rf:
            with rf.if_block(rf.cmp(">=", "depth", 4.0)):
                rf.ret(1.0)
            rf.store("board", rf.var("depth"), rf.mul("depth", 2.0))
            rf.ret(rf.call("place_rec", rf.add("depth", 1.0)))
        fb.assign("solutions", fb.call("place_rec", 0.0))


def compose_app(
    app: str,
    suite: str,
    seed: int,
    size: int = 16,
    side: int = 6,
) -> AppSpec:
    """Build the AppSpec for ``app`` deterministically from ``seed``."""
    if app not in APP_PLANS:
        raise DatasetError(f"no plan for application {app!r}")
    rng = np.random.default_rng(seed)
    calls = _interleave_plan(APP_PLANS[app], rng)
    spec = AppSpec(name=app, suite=suite)

    quirk_candidates: List[str] = []
    program_no = 0
    for start in range(0, len(calls), _CALLS_PER_PROGRAM):
        chunk = calls[start : start + _CALLS_PER_PROGRAM]
        program_name = f"{app.lower()}_p{program_no}"
        program_no += 1
        pb = ProgramBuilder(program_name)
        with pb.function("main") as fb:
            ctx = TemplateContext(pb, fb, rng, size=size, side=side)
            if app in _RECURSIVE_APPS and start == 0:
                _add_recursive_task(pb, fb, app)
            for template_name in chunk:
                TEMPLATES[template_name][0](ctx)
        program = pb.build()
        spec.programs.append(program)
        for loop_id, label, template in ctx.emitted:
            spec.loops[loop_id] = LabeledLoop(
                loop_id=loop_id,
                label=label,
                template=template,
                program_name=program_name,
            )
            quirk_candidates.append(loop_id)

    # deterministic annotation noise (cf. the paper's IS loop-452 anecdote)
    n_quirks = int(round(ANNOTATION_QUIRK_FRACTION * len(quirk_candidates)))
    if n_quirks:
        picks = rng.choice(len(quirk_candidates), size=n_quirks, replace=False)
        for pos in picks:
            loop = spec.loops[quirk_candidates[int(pos)]]
            loop.label = 1 - loop.label
            loop.annotation_quirk = True
    return spec
