"""LinearIR: a register-based, LLVM-like CFG intermediate representation.

Design notes
------------

* **Scalar program variables live in memory.**  Every MiniC variable read /
  write lowers to ``ldvar`` / ``stvar`` with address ``(name, 0)``; array
  accesses lower to ``load`` / ``store`` with address ``(array, index)``.
  This mirrors un-promoted LLVM IR (clang -O0 allocas) and gives the dynamic
  profiler a uniform view of all data flow — exactly what DiscoPoP's memory
  instrumentation observes.  The optimization passes may promote loop-local
  temporaries to registers, changing the observable dependence surface the
  same way real compiler flags change DiscoPoP's input.

* **Virtual registers** (``%rN``) hold expression temporaries in function-
  scope SSA (each register assigned exactly once; every use dominated by the
  definition).  Lowering never passes values across blocks in registers —
  all cross-block communication is via memory — so no phi nodes exist; the
  optimization passes (LICM, unrolling) may move or clone definitions as
  long as dominance is preserved, which the verifier checks.

* **Loop pseudo-instructions** ``loopenter`` / ``loopnext`` / ``loopexit``
  bracket every loop so the interpreter can maintain exact iteration vectors
  for loop-carried dependence attribution (DiscoPoP instruments loop entries
  and exits for the same reason).

Instruction operands are :class:`Reg`, :class:`Imm`, or plain strings (symbol
names for memory ops / labels for branches).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import IRError


class Opcode(enum.Enum):
    """LinearIR opcodes."""

    # data movement
    CONST = "const"        # result <- imm
    LDVAR = "ldvar"        # result <- memory[var, 0]
    STVAR = "stvar"        # memory[var, 0] <- value
    LOAD = "load"          # result <- memory[array, index]
    STORE = "store"        # memory[array, index] <- value
    # arithmetic / logic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    MIN = "min"
    MAX = "max"
    NEG = "neg"
    NOT = "not"
    AND = "and"
    OR = "or"
    CMP = "cmp"            # result <- lhs <pred> rhs ; pred in meta
    # calls
    CALL = "call"          # intrinsic math call, result <- fn(args...)
    CALLFN = "callfn"      # user function call (optionally with result)
    # control flow
    BR = "br"              # unconditional branch to label
    CONDBR = "condbr"      # conditional branch cond, true_label, false_label
    RET = "ret"            # return (optional value)
    # loop bracketing pseudo-ops (profiler bookkeeping)
    LOOPENTER = "loopenter"
    LOOPNEXT = "loopnext"
    LOOPEXIT = "loopexit"


#: Opcodes that terminate a basic block.
TERMINATORS = frozenset({Opcode.BR, Opcode.CONDBR, Opcode.RET})

#: Pure arithmetic opcodes: result depends only on operand values.
ARITH_OPS = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.MOD,
    Opcode.MIN, Opcode.MAX, Opcode.NEG, Opcode.NOT, Opcode.AND,
    Opcode.OR, Opcode.CMP,
})

#: Opcodes that read memory.
MEM_READS = frozenset({Opcode.LDVAR, Opcode.LOAD})

#: Opcodes that write memory.
MEM_WRITES = frozenset({Opcode.STVAR, Opcode.STORE})


@dataclass(frozen=True)
class Reg:
    """A virtual register reference."""

    name: str

    def __repr__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Imm:
    """An immediate constant operand."""

    value: float

    def __repr__(self) -> str:
        return f"#{self.value:g}"


Operand = Union[Reg, Imm, str]


@dataclass
class Instr:
    """One LinearIR instruction.

    ``iid`` is unique within the function and is the key the profiler uses in
    dependence edges.  ``line`` is the synthetic source line of the MiniC
    statement the instruction was lowered from; ``loop_id`` is the id of the
    innermost enclosing loop (or None).
    """

    iid: int
    opcode: Opcode
    operands: Tuple[Operand, ...] = ()
    result: Optional[Reg] = None
    meta: Dict[str, object] = field(default_factory=dict)
    line: int = 0
    loop_id: Optional[str] = None

    def reads_memory(self) -> bool:
        return self.opcode in MEM_READS

    def writes_memory(self) -> bool:
        return self.opcode in MEM_WRITES

    @property
    def symbol(self) -> Optional[str]:
        """The memory symbol touched, if this is a memory op."""
        if self.opcode in (Opcode.LDVAR, Opcode.STVAR, Opcode.LOAD, Opcode.STORE):
            return self.operands[0]  # type: ignore[return-value]
        return None


@dataclass
class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    label: str
    instrs: List[Instr] = field(default_factory=list)

    @property
    def terminator(self) -> Optional[Instr]:
        if self.instrs and self.instrs[-1].opcode in TERMINATORS:
            return self.instrs[-1]
        return None

    def successors(self) -> Tuple[str, ...]:
        term = self.terminator
        if term is None:
            return ()
        if term.opcode is Opcode.BR:
            return (term.operands[0],)  # type: ignore[return-value]
        if term.opcode is Opcode.CONDBR:
            return (term.operands[1], term.operands[2])  # type: ignore[return-value]
        return ()


@dataclass
class LoopInfo:
    """Static loop metadata carried from the AST through lowering."""

    loop_id: str
    var: str
    header: str               # label of the header block
    body_entry: str           # label of the first body block
    exit: str                 # label of the exit block
    line: int                 # line of the For statement
    end_line: int             # last line of the loop body
    depth: int                # nesting depth (0 = outermost in function)
    parent: Optional[str]     # enclosing loop id, if any
    function: str = ""


@dataclass
class IRFunction:
    """A lowered function: blocks in layout order plus loop metadata."""

    name: str
    params: Tuple[str, ...]
    blocks: List[BasicBlock]
    loops: Dict[str, LoopInfo] = field(default_factory=dict)

    _block_index: Optional[Dict[str, BasicBlock]] = field(
        default=None, repr=False, compare=False
    )

    def block(self, label: str) -> BasicBlock:
        if self._block_index is None or len(self._block_index) != len(self.blocks):
            self._block_index = {b.label: b for b in self.blocks}
        try:
            return self._block_index[label]
        except KeyError:
            raise IRError(f"function {self.name!r} has no block {label!r}") from None

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name!r} has no blocks")
        return self.blocks[0]

    def instructions(self) -> List[Instr]:
        """All instructions in layout order."""
        out: List[Instr] = []
        for block in self.blocks:
            out.extend(block.instrs)
        return out

    def instr_by_id(self) -> Dict[int, Instr]:
        return {ins.iid: ins for ins in self.instructions()}


@dataclass
class IRProgram:
    """A lowered program."""

    name: str
    functions: Dict[str, IRFunction]
    arrays: Dict[str, int]
    entry: str = "main"

    def function(self, name: str) -> IRFunction:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"IR program {self.name!r} has no function {name!r}") from None

    def all_loops(self) -> Dict[str, LoopInfo]:
        loops: Dict[str, LoopInfo] = {}
        for fn in self.functions.values():
            loops.update(fn.loops)
        return loops

    def instruction_count(self) -> int:
        return sum(len(b.instrs) for fn in self.functions.values() for b in fn.blocks)
