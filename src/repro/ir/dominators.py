"""Dominator analysis on LinearIR CFGs (iterative dataflow algorithm).

Used by the verifier (defs must dominate uses) and by LICM (hoisting is only
legal into a block that dominates the loop body).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.linear import IRFunction


def compute_dominators(fn: IRFunction) -> Dict[str, Set[str]]:
    """Map block label -> set of labels dominating it (including itself).

    Unreachable blocks dominate nothing and are reported as dominated only
    by themselves so the verifier still accepts dead blocks a pass left
    behind (DCE cleans them separately).
    """
    labels = [b.label for b in fn.blocks]
    if not labels:
        return {}
    entry = labels[0]
    preds: Dict[str, List[str]] = {label: [] for label in labels}
    for block in fn.blocks:
        for succ in block.successors():
            # branches to unknown labels are the verifier's concern; ignore
            # them here so it can produce its own diagnostic
            if succ in preds:
                preds[succ].append(block.label)

    # reachable set
    reachable: Set[str] = set()
    stack = [entry]
    succs = {b.label: b.successors() for b in fn.blocks}
    while stack:
        label = stack.pop()
        if label in reachable:
            continue
        reachable.add(label)
        stack.extend(s for s in succs[label] if s in succs)

    all_reachable = set(l for l in labels if l in reachable)
    dom: Dict[str, Set[str]] = {}
    for label in labels:
        if label == entry:
            dom[label] = {entry}
        elif label in reachable:
            dom[label] = set(all_reachable)
        else:
            dom[label] = {label}

    changed = True
    while changed:
        changed = False
        for label in labels:
            if label == entry or label not in reachable:
                continue
            pred_doms = [
                dom[p] for p in preds[label] if p in reachable
            ]
            if not pred_doms:
                continue
            new = set.intersection(*pred_doms)
            new.add(label)
            if new != dom[label]:
                dom[label] = new
                changed = True
    return dom


def dominates(dom: Dict[str, Set[str]], a: str, b: str) -> bool:
    """Does block ``a`` dominate block ``b``?"""
    return a in dom.get(b, ())
