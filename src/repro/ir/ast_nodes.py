"""MiniC: a small structured AST for authoring sequential numeric kernels.

MiniC deliberately resembles the subset of C that dominates NPB / PolyBench /
BOTS kernels: scalar doubles, flat 1-D arrays indexed by affine or computed
expressions, counted ``for`` loops, ``while`` loops, ``if`` statements, and
calls to either math intrinsics or other MiniC functions.

Multi-dimensional arrays are expressed with explicit flattened index
arithmetic (``i * N + j``), matching what the paper's LLVM-IR level pipeline
sees after address lowering.

Every statement node carries a synthetic source ``line`` number assigned by
the builder; the PEG exposes ``<ID, START, END>`` node triples built from
these lines, as in the paper (Section III-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import IRError

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

#: Binary operators supported by MiniC expressions.
BINARY_OPS = (
    "+", "-", "*", "/", "%",
    "<", "<=", ">", ">=", "==", "!=",
    "&&", "||", "min", "max",
)

#: Unary operators.
UNARY_OPS = ("-", "!")

#: Math intrinsics callable from expressions (interpreted natively).
INTRINSICS = ("sqrt", "exp", "log", "sin", "cos", "fabs", "floor", "pow")

#: Operators that are associative+commutative, i.e. eligible for OpenMP-style
#: reduction recognition.
ASSOCIATIVE_OPS = ("+", "*", "min", "max")


class Expr:
    """Base class for MiniC expressions."""

    def children(self) -> Sequence["Expr"]:
        return ()


@dataclass(frozen=True)
class Const(Expr):
    """A numeric literal."""

    value: float

    def __repr__(self) -> str:
        return f"Const({self.value})"


@dataclass(frozen=True)
class Var(Expr):
    """A scalar variable read."""

    name: str

    def __repr__(self) -> str:
        return f"Var({self.name})"


@dataclass(frozen=True)
class Load(Expr):
    """An array element read: ``array[index]``."""

    array: str
    index: Expr

    def children(self) -> Sequence[Expr]:
        return (self.index,)

    def __repr__(self) -> str:
        return f"Load({self.array}[{self.index!r}])"


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operation."""

    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise IRError(f"unknown binary operator {self.op!r}")

    def children(self) -> Sequence[Expr]:
        return (self.lhs, self.rhs)


@dataclass(frozen=True)
class UnOp(Expr):
    """A unary operation."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPS:
            raise IRError(f"unknown unary operator {self.op!r}")

    def children(self) -> Sequence[Expr]:
        return (self.operand,)


@dataclass(frozen=True)
class CallExpr(Expr):
    """A call in expression position.

    ``fn`` is either a math intrinsic (``sqrt`` etc., evaluated natively) or
    the name of another MiniC function with a ``Return``; user calls in
    expression position must be pure of side effects on arrays the caller
    also touches for lowering to stay simple — the profiler still records any
    accesses the callee makes.
    """

    fn: str
    args: Tuple[Expr, ...]

    def children(self) -> Sequence[Expr]:
        return self.args

    @property
    def is_intrinsic(self) -> bool:
        return self.fn in INTRINSICS


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    """Base class for MiniC statements.  ``line`` is a synthetic line number."""

    line: int = 0


@dataclass
class Assign(Stmt):
    """``name = expr`` on a scalar variable."""

    name: str
    expr: Expr
    line: int = 0


@dataclass
class Store(Stmt):
    """``array[index] = expr``."""

    array: str
    index: Expr
    expr: Expr
    line: int = 0


@dataclass
class For(Stmt):
    """A counted loop ``for (var = lo; var < hi; var += step) body``.

    ``loop_id`` is assigned at build time and is stable across lowering; the
    dataset pipeline classifies loops by this id.
    """

    var: str
    lo: Expr
    hi: Expr
    body: List[Stmt]
    step: Expr = field(default_factory=lambda: Const(1.0))
    loop_id: Optional[str] = None
    line: int = 0


@dataclass
class While(Stmt):
    """``while (cond) body``."""

    cond: Expr
    body: List[Stmt]
    line: int = 0


@dataclass
class If(Stmt):
    """``if (cond) then_body else else_body``."""

    cond: Expr
    then_body: List[Stmt]
    else_body: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class CallStmt(Stmt):
    """A call in statement position (side effects through global arrays)."""

    fn: str
    args: Tuple[Expr, ...] = ()
    line: int = 0


@dataclass
class Return(Stmt):
    """``return expr`` (or bare return when ``expr`` is None)."""

    expr: Optional[Expr] = None
    line: int = 0


@dataclass
class Break(Stmt):
    """``break`` out of the innermost loop."""

    line: int = 0


# ---------------------------------------------------------------------------
# Program containers
# ---------------------------------------------------------------------------


@dataclass
class Function:
    """A MiniC function.

    Parameters are scalar; arrays are global and shared across functions (the
    common shape of NPB/PolyBench kernels, where arrays are file-scope
    statics).
    """

    name: str
    params: Tuple[str, ...]
    body: List[Stmt]


@dataclass
class Program:
    """A whole MiniC program: global array declarations plus functions.

    ``arrays`` maps array name -> number of elements.  ``entry`` names the
    function executed by the profiler.
    """

    functions: Dict[str, Function]
    arrays: Dict[str, int]
    entry: str = "main"
    name: str = "program"

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"program {self.name!r} has no function {name!r}") from None


# ---------------------------------------------------------------------------
# AST utilities
# ---------------------------------------------------------------------------


def walk_stmts(body: Sequence[Stmt]):
    """Yield every statement in ``body`` recursively, pre-order."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, For):
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, While):
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, If):
            yield from walk_stmts(stmt.then_body)
            yield from walk_stmts(stmt.else_body)


def walk_exprs(expr: Expr):
    """Yield ``expr`` and all sub-expressions, pre-order."""
    yield expr
    for child in expr.children():
        yield from walk_exprs(child)


def stmt_exprs(stmt: Stmt) -> Sequence[Expr]:
    """The immediate expressions of one statement (non-recursive into bodies)."""
    if isinstance(stmt, Assign):
        return (stmt.expr,)
    if isinstance(stmt, Store):
        return (stmt.index, stmt.expr)
    if isinstance(stmt, For):
        return (stmt.lo, stmt.hi, stmt.step)
    if isinstance(stmt, While):
        return (stmt.cond,)
    if isinstance(stmt, If):
        return (stmt.cond,)
    if isinstance(stmt, CallStmt):
        return tuple(stmt.args)
    if isinstance(stmt, Return):
        return (stmt.expr,) if stmt.expr is not None else ()
    return ()


def loops_in(body: Sequence[Stmt]) -> List[For]:
    """All For loops in ``body``, outermost first (pre-order)."""
    return [s for s in walk_stmts(body) if isinstance(s, For)]


def count_loops(program: Program) -> int:
    """Total number of For loops across all functions of ``program``."""
    return sum(len(loops_in(fn.body)) for fn in program.functions.values())
