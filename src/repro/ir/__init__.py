"""MiniC AST frontend, LinearIR, lowering, and optimization passes.

This subpackage is the compiler substrate standing in for LLVM/clang in the
original paper's pipeline (see DESIGN.md).  Kernels are authored as MiniC
ASTs (:mod:`repro.ir.ast_nodes`, :mod:`repro.ir.builder`), lowered to a
register-based CFG IR (:mod:`repro.ir.linear`, :mod:`repro.ir.lowering`) that
the dynamic profiler interprets and that inst2vec embeds, and transformed by
six optimization pipelines (:mod:`repro.ir.passes`) standing in for the six
clang option builds used for data augmentation in the paper.
"""

from repro.ir.ast_nodes import (
    Assign,
    BinOp,
    Break,
    CallExpr,
    CallStmt,
    Const,
    Expr,
    For,
    Function,
    If,
    Load,
    Program,
    Return,
    Stmt,
    Store,
    UnOp,
    Var,
    While,
)
from repro.ir.builder import ProgramBuilder, FunctionBuilder
from repro.ir.linear import (
    BasicBlock,
    Imm,
    Instr,
    IRFunction,
    IRProgram,
    LoopInfo,
    Opcode,
    Reg,
)
from repro.ir.lowering import lower_program
from repro.ir.printer import print_function, print_program, statement_text
from repro.ir.verify import verify_program

__all__ = [
    "Assign", "BinOp", "Break", "CallExpr", "CallStmt", "Const", "Expr",
    "For", "Function", "If", "Load", "Program", "Return", "Stmt", "Store",
    "UnOp", "Var", "While",
    "ProgramBuilder", "FunctionBuilder",
    "BasicBlock", "Imm", "Instr", "IRFunction", "IRProgram", "LoopInfo",
    "Opcode", "Reg",
    "lower_program",
    "print_function", "print_program", "statement_text",
    "verify_program",
]
