"""Structural verification of LinearIR.

Run after lowering and after every optimization pass in tests; catches the
classic compiler-bug shapes early (dangling branch targets, use of undefined
registers, missing terminators, duplicated iids).
"""

from __future__ import annotations

from typing import Set

from repro.errors import IRError
from repro.ir.linear import (
    Instr,
    IRFunction,
    IRProgram,
    MEM_READS,
    Opcode,
    Reg,
    TERMINATORS,
)


def verify_function(fn: IRFunction, program: IRProgram) -> None:
    """Raise :class:`IRError` if ``fn`` violates a LinearIR invariant.

    LinearIR is SSA at function scope: every register has exactly one
    definition, and each use must be preceded by the definition in the same
    block or be in a block the defining block dominates (so passes like LICM
    may legally move definitions into dominating blocks).
    """
    from repro.ir.dominators import compute_dominators, dominates

    labels = {b.label for b in fn.blocks}
    if len(labels) != len(fn.blocks):
        raise IRError(f"{fn.name}: duplicate block labels")
    dom = compute_dominators(fn)
    # def site of every register: (block label, position)
    def_site: dict = {}
    seen_iids: Set[int] = set()
    for block in fn.blocks:
        if not block.instrs:
            raise IRError(f"{fn.name}/{block.label}: empty basic block")
        if block.terminator is None:
            raise IRError(f"{fn.name}/{block.label}: missing terminator")
        for pos, instr in enumerate(block.instrs):
            if instr.iid in seen_iids:
                raise IRError(f"{fn.name}: duplicate iid {instr.iid}")
            seen_iids.add(instr.iid)
            if instr.opcode in TERMINATORS and pos != len(block.instrs) - 1:
                raise IRError(
                    f"{fn.name}/{block.label}: terminator not at block end"
                )
            if instr.result is not None:
                if instr.result.name in def_site:
                    raise IRError(
                        f"{fn.name}: register %{instr.result.name} "
                        "defined twice (SSA violation)"
                    )
                def_site[instr.result.name] = (block.label, pos)
        for target in block.successors():
            if target not in labels:
                raise IRError(
                    f"{fn.name}/{block.label}: branch to unknown block {target!r}"
                )
    for block in fn.blocks:
        for pos, instr in enumerate(block.instrs):
            for op in instr.operands:
                if not isinstance(op, Reg):
                    continue
                site = def_site.get(op.name)
                if site is None:
                    raise IRError(
                        f"{fn.name}/{block.label}: iid {instr.iid} uses "
                        f"undefined register %{op.name}"
                    )
                def_block, def_pos = site
                if def_block == block.label:
                    if def_pos >= pos:
                        raise IRError(
                            f"{fn.name}/{block.label}: %{op.name} used at "
                            f"position {pos} before its definition at {def_pos}"
                        )
                elif not dominates(dom, def_block, block.label):
                    raise IRError(
                        f"{fn.name}/{block.label}: use of %{op.name} not "
                        f"dominated by its definition in {def_block}"
                    )
            _verify_semantic_operands(fn, program, block.label, instr)


def _verify_semantic_operands(
    fn: IRFunction,
    program: IRProgram,
    label: str,
    instr: Instr,
) -> None:
    if instr.opcode in (Opcode.LOAD, Opcode.STORE):
        array = instr.operands[0]
        if not isinstance(array, str) or array not in program.arrays:
            raise IRError(
                f"{fn.name}/{label}: iid {instr.iid} touches unknown array {array!r}"
            )
    if instr.opcode is Opcode.CALLFN:
        target = instr.operands[0]
        if not isinstance(target, str) or target not in program.functions:
            raise IRError(
                f"{fn.name}/{label}: call to unknown function {target!r}"
            )
    if instr.opcode in MEM_READS and instr.result is None:
        raise IRError(f"{fn.name}/{label}: iid {instr.iid} load without result")
    if instr.opcode in (Opcode.LOOPENTER, Opcode.LOOPNEXT, Opcode.LOOPEXIT):
        loop_id = instr.operands[0]
        if loop_id not in fn.loops:
            raise IRError(
                f"{fn.name}/{label}: loop pseudo-op references unknown loop "
                f"{loop_id!r}"
            )


def verify_program(program: IRProgram) -> None:
    """Verify every function of ``program``; raises on the first violation."""
    if program.entry not in program.functions:
        raise IRError(f"entry function {program.entry!r} not found")
    for fn in program.functions.values():
        verify_function(fn, program)
