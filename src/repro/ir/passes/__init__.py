"""Optimization passes and the six augmentation pipelines.

The paper builds six LLVM-IR variants of every source with six clang
optimization option sets; these pipelines play that role.  Each pass is a
semantics-preserving IRProgram -> IRProgram transform (verified by property
tests: identical interpreter results before and after).
"""

from repro.ir.passes.clone import clone_program
from repro.ir.passes.constfold import constant_fold
from repro.ir.passes.dce import dead_code_elimination
from repro.ir.passes.cse import common_subexpression_elimination
from repro.ir.passes.licm import loop_invariant_code_motion
from repro.ir.passes.strength import strength_reduction
from repro.ir.passes.unroll import unroll_by_two
from repro.ir.passes.pipeline import OPT_PIPELINES, apply_pipeline, pipeline_names

__all__ = [
    "clone_program",
    "constant_fold",
    "dead_code_elimination",
    "common_subexpression_elimination",
    "loop_invariant_code_motion",
    "strength_reduction",
    "unroll_by_two",
    "OPT_PIPELINES",
    "apply_pipeline",
    "pipeline_names",
]
