"""Common subexpression elimination (block-local value numbering).

Within each basic block, repeated pure computations with identical operands
reuse the first result; repeated ``ldvar``/``load`` reuse the earlier value
when no intervening write can have changed it:

* ``ldvar v`` is invalidated by ``stvar v`` (scalars are frame-local, so
  calls cannot clobber them);
* ``load a[i]`` is invalidated by any ``store`` to ``a`` or any ``callfn``
  (the callee may write global arrays).

Replaced registers are rewritten throughout the function (SSA makes the
substitution safe); the dead definitions are left for DCE.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.ir.linear import (
    ARITH_OPS,
    Imm,
    IRFunction,
    IRProgram,
    Opcode,
    Reg,
)
from repro.ir.passes.clone import clone_program


def _operand_key(op) -> Tuple:
    if isinstance(op, Reg):
        return ("r", op.name)
    if isinstance(op, Imm):
        return ("i", op.value)
    return ("s", op)


def _cse_function(fn: IRFunction) -> None:
    rename: Dict[str, Reg] = {}

    for block in fn.blocks:
        available: Dict[Tuple, Reg] = {}
        for instr in block.instrs:
            # apply pending renames first
            if any(
                isinstance(op, Reg) and op.name in rename for op in instr.operands
            ):
                instr.operands = tuple(
                    rename[op.name]
                    if isinstance(op, Reg) and op.name in rename
                    else op
                    for op in instr.operands
                )
            opcode = instr.opcode
            if opcode in ARITH_OPS and instr.result is not None:
                key = (
                    opcode.value,
                    instr.meta.get("pred"),
                    tuple(_operand_key(o) for o in instr.operands),
                )
                prior = available.get(key)
                if prior is not None:
                    rename[instr.result.name] = prior
                else:
                    available[key] = instr.result
            elif opcode is Opcode.LDVAR and instr.result is not None:
                key = ("ldvar", instr.operands[0])
                prior = available.get(key)
                if prior is not None:
                    rename[instr.result.name] = prior
                else:
                    available[key] = instr.result
            elif opcode is Opcode.STVAR:
                available.pop(("ldvar", instr.operands[0]), None)
                # a scalar write also invalidates value-numbered loads of it
            elif opcode is Opcode.LOAD and instr.result is not None:
                key = (
                    "load",
                    instr.operands[0],
                    _operand_key(instr.operands[1]),
                )
                prior = available.get(key)
                if prior is not None:
                    rename[instr.result.name] = prior
                else:
                    available[key] = instr.result
            elif opcode is Opcode.STORE:
                array = instr.operands[0]
                for key in [k for k in available if k[0] == "load" and k[1] == array]:
                    del available[key]
            elif opcode is Opcode.CALLFN:
                for key in [k for k in available if k[0] == "load"]:
                    del available[key]

    if rename:
        # flush renames everywhere (uses may sit in later blocks)
        for block in fn.blocks:
            for instr in block.instrs:
                if any(
                    isinstance(op, Reg) and op.name in rename
                    for op in instr.operands
                ):
                    instr.operands = tuple(
                        rename[op.name]
                        if isinstance(op, Reg) and op.name in rename
                        else op
                        for op in instr.operands
                    )


def common_subexpression_elimination(program: IRProgram) -> IRProgram:
    """Return a copy of ``program`` with block-local CSE applied."""
    out = clone_program(program)
    for fn in out.functions.values():
        _cse_function(fn)
    return out
