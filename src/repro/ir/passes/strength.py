"""Strength reduction and algebraic identity simplification.

* ``x * 2`` / ``2 * x``  ->  ``x + x``
* ``x * 1`` / ``1 * x`` / ``x / 1`` / ``x + 0`` / ``0 + x`` / ``x - 0``
  -> forwarded to ``x`` (dead definition left for DCE)

Like real -O pipelines, this changes instruction mixes (and therefore the
inst2vec token streams of the augmented variants) without changing values.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ir.linear import Imm, Instr, IRFunction, IRProgram, Opcode, Reg
from repro.ir.passes.clone import clone_program


def _imm_is(op, value: float) -> bool:
    return isinstance(op, Imm) and op.value == value


def _forward_target(instr: Instr) -> Optional[Reg]:
    """If ``instr`` is an identity operation, the operand it forwards."""
    a, b = (instr.operands + (None, None))[:2]
    opcode = instr.opcode
    if opcode is Opcode.MUL:
        if _imm_is(b, 1.0) and isinstance(a, Reg):
            return a
        if _imm_is(a, 1.0) and isinstance(b, Reg):
            return b
    elif opcode is Opcode.DIV:
        if _imm_is(b, 1.0) and isinstance(a, Reg):
            return a
    elif opcode is Opcode.ADD:
        if _imm_is(b, 0.0) and isinstance(a, Reg):
            return a
        if _imm_is(a, 0.0) and isinstance(b, Reg):
            return b
    elif opcode is Opcode.SUB:
        if _imm_is(b, 0.0) and isinstance(a, Reg):
            return a
    return None


def _strength_function(fn: IRFunction) -> None:
    rename: Dict[str, Reg] = {}
    for block in fn.blocks:
        for instr in block.instrs:
            if any(
                isinstance(op, Reg) and op.name in rename for op in instr.operands
            ):
                instr.operands = tuple(
                    rename[op.name]
                    if isinstance(op, Reg) and op.name in rename
                    else op
                    for op in instr.operands
                )
            if instr.opcode is Opcode.MUL and instr.result is not None:
                a, b = instr.operands
                if _imm_is(b, 2.0) and isinstance(a, Reg):
                    instr.opcode = Opcode.ADD
                    instr.operands = (a, a)
                    instr.meta["op"] = "+"
                    continue
                if _imm_is(a, 2.0) and isinstance(b, Reg):
                    instr.opcode = Opcode.ADD
                    instr.operands = (b, b)
                    instr.meta["op"] = "+"
                    continue
            target = _forward_target(instr)
            if target is not None and instr.result is not None:
                resolved = rename.get(target.name, target)
                rename[instr.result.name] = resolved
    if rename:
        for block in fn.blocks:
            for instr in block.instrs:
                if any(
                    isinstance(op, Reg) and op.name in rename
                    for op in instr.operands
                ):
                    instr.operands = tuple(
                        rename[op.name]
                        if isinstance(op, Reg) and op.name in rename
                        else op
                        for op in instr.operands
                    )


def strength_reduction(program: IRProgram) -> IRProgram:
    """Return a copy of ``program`` with strength reduction applied."""
    out = clone_program(program)
    for fn in out.functions.values():
        _strength_function(fn)
    return out
