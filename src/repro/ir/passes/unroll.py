"""Loop unrolling by two (innermost, straight-line bodies).

Transforms::

    header: test -> body | exit
    body:   B ; br latch
    latch:  v += step ; loopnext ; br header

into::

    header: test -> body | exit
    body:   B ; br latch
    latch:  v += step ; loopnext ; br guard
    guard:  test' -> body2 | header
    body2:  B' ; br latch2
    latch2: v += step ; loopnext ; br header

where primed blocks are register-renamed, fresh-iid clones.  The guard
re-tests the bound between the two copies, so any trip count (including odd
and zero) executes identically; ``loopnext`` still fires once per logical
iteration, keeping the profiler's iteration vectors exact.

Only loops whose body is a single block with no nested loops, no breaks, and
a direct branch to the latch are unrolled; everything else is left alone
(the pipeline still differs through its other passes).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.linear import BasicBlock, Instr, IRFunction, IRProgram, Opcode, Reg
from repro.ir.passes.clone import clone_program


def _max_values(fn: IRFunction) -> (int, int):
    max_iid = -1
    max_reg = -1
    for block in fn.blocks:
        for instr in block.instrs:
            max_iid = max(max_iid, instr.iid)
            if instr.result is not None and instr.result.name.startswith("r"):
                suffix = instr.result.name[1:]
                if suffix.isdigit():
                    max_reg = max(max_reg, int(suffix))
    return max_iid, max_reg


class _Renamer:
    def __init__(self, next_iid: int, next_reg: int) -> None:
        self.next_iid = next_iid
        self.next_reg = next_reg
        self.mapping: Dict[str, Reg] = {}

    def clone(self, instr: Instr) -> Instr:
        operands = tuple(
            self.mapping.get(op.name, op) if isinstance(op, Reg) else op
            for op in instr.operands
        )
        result = instr.result
        if result is not None:
            fresh = Reg(f"r{self.next_reg}")
            self.next_reg += 1
            self.mapping[result.name] = fresh
            result = fresh
        cloned = Instr(
            iid=self.next_iid,
            opcode=instr.opcode,
            operands=operands,
            result=result,
            meta=dict(instr.meta),
            line=instr.line,
            loop_id=instr.loop_id,
        )
        self.next_iid += 1
        return cloned


def _unrollable(fn: IRFunction, loop_id) -> bool:
    info = fn.loops[loop_id]
    if any(other.parent == loop_id for other in fn.loops.values()):
        return False  # has nested loops
    if not info.var:
        return False  # while loops keep their shape
    body = fn.block(info.body_entry)
    term = body.terminator
    if term is None or term.opcode is not Opcode.BR:
        return False
    latch_label = term.operands[0]
    if latch_label in (info.exit, info.header):
        return False
    # body must be straight-line: single block branching to the latch, and
    # the latch must be the canonical increment block ending at the header.
    latch = fn.block(latch_label)
    latch_term = latch.terminator
    if latch_term is None or latch_term.opcode is not Opcode.BR:
        return False
    if latch_term.operands[0] != info.header:
        return False
    if not any(i.opcode is Opcode.LOOPNEXT for i in latch.instrs):
        return False
    # no other block may branch into the latch or body (no breaks/continues)
    for block in fn.blocks:
        if block.label in (info.body_entry,):
            continue
        for succ in block.successors():
            if succ == latch_label and block.label != info.body_entry:
                return False
    return True


def _unroll_loop(fn: IRFunction, loop_id: str) -> None:
    info = fn.loops[loop_id]
    header = fn.block(info.header)
    body = fn.block(info.body_entry)
    latch = fn.block(body.terminator.operands[0])

    max_iid, max_reg = _max_values(fn)
    renamer = _Renamer(max_iid + 1, max_reg + 1)

    guard_label = f"{info.header}_u2g"
    body2_label = f"{info.body_entry}_u2b"
    latch2_label = f"{latch.label}_u2l"

    # guard: clone of the header with the branch retargeted
    guard_instrs: List[Instr] = []
    for instr in header.instrs:
        if instr.opcode is Opcode.CONDBR:
            cond = instr.operands[0]
            cond = renamer.mapping.get(cond.name, cond) if isinstance(cond, Reg) else cond
            guard_instrs.append(
                Instr(
                    iid=renamer.next_iid,
                    opcode=Opcode.CONDBR,
                    operands=(cond, body2_label, info.header),
                    meta=dict(instr.meta),
                    line=instr.line,
                    loop_id=loop_id,
                )
            )
            renamer.next_iid += 1
        else:
            guard_instrs.append(renamer.clone(instr))

    body2_instrs: List[Instr] = []
    for instr in body.instrs:
        if instr.opcode is Opcode.BR:
            body2_instrs.append(
                Instr(
                    iid=renamer.next_iid,
                    opcode=Opcode.BR,
                    operands=(latch2_label,),
                    line=instr.line,
                    loop_id=loop_id,
                )
            )
            renamer.next_iid += 1
        else:
            body2_instrs.append(renamer.clone(instr))

    latch2_instrs: List[Instr] = []
    for instr in latch.instrs:
        if instr.opcode is Opcode.BR:
            latch2_instrs.append(
                Instr(
                    iid=renamer.next_iid,
                    opcode=Opcode.BR,
                    operands=(info.header,),
                    line=instr.line,
                    loop_id=loop_id,
                )
            )
            renamer.next_iid += 1
        else:
            latch2_instrs.append(renamer.clone(instr))

    # retarget the original latch to the guard
    latch.instrs[-1] = Instr(
        iid=renamer.next_iid,
        opcode=Opcode.BR,
        operands=(guard_label,),
        line=latch.instrs[-1].line,
        loop_id=loop_id,
    )

    position = fn.blocks.index(latch) + 1
    fn.blocks[position:position] = [
        BasicBlock(guard_label, guard_instrs),
        BasicBlock(body2_label, body2_instrs),
        BasicBlock(latch2_label, latch2_instrs),
    ]
    fn._block_index = None  # invalidate cache


def unroll_by_two(program: IRProgram) -> IRProgram:
    """Return a copy of ``program`` with eligible innermost loops unrolled."""
    out = clone_program(program)
    for fn in out.functions.values():
        for loop_id in list(fn.loops):
            if _unrollable(fn, loop_id):
                _unroll_loop(fn, loop_id)
    return out
