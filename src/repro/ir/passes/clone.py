"""Deep cloning of LinearIR (passes never mutate their input program)."""

from __future__ import annotations

from typing import Dict

from repro.ir.linear import BasicBlock, Instr, IRFunction, IRProgram, LoopInfo


def clone_instr(instr: Instr) -> Instr:
    return Instr(
        iid=instr.iid,
        opcode=instr.opcode,
        operands=tuple(instr.operands),
        result=instr.result,
        meta=dict(instr.meta),
        line=instr.line,
        loop_id=instr.loop_id,
    )


def clone_function(fn: IRFunction) -> IRFunction:
    blocks = [
        BasicBlock(b.label, [clone_instr(i) for i in b.instrs]) for b in fn.blocks
    ]
    loops: Dict[str, LoopInfo] = {
        lid: LoopInfo(
            loop_id=info.loop_id,
            var=info.var,
            header=info.header,
            body_entry=info.body_entry,
            exit=info.exit,
            line=info.line,
            end_line=info.end_line,
            depth=info.depth,
            parent=info.parent,
            function=info.function,
        )
        for lid, info in fn.loops.items()
    }
    return IRFunction(fn.name, fn.params, blocks, loops)


def clone_program(program: IRProgram) -> IRProgram:
    return IRProgram(
        name=program.name,
        functions={n: clone_function(f) for n, f in program.functions.items()},
        arrays=dict(program.arrays),
        entry=program.entry,
    )
