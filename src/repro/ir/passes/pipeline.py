"""The six optimization pipelines standing in for the paper's six clang
option builds (Section IV-A, "Transformed dataset").

Each pipeline is a named sequence of semantics-preserving passes.  Applying
all six to one kernel yields six structurally distinct LinearIR variants —
different instruction mixes, different CU shapes, different dependence
surfaces — with identical run-time behaviour and identical loop labels.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.errors import ConfigError
from repro.ir.linear import IRProgram
from repro.ir.passes.clone import clone_program
from repro.ir.passes.constfold import constant_fold
from repro.ir.passes.cse import common_subexpression_elimination
from repro.ir.passes.dce import dead_code_elimination
from repro.ir.passes.licm import loop_invariant_code_motion
from repro.ir.passes.strength import strength_reduction
from repro.ir.passes.unroll import unroll_by_two

Pass = Callable[[IRProgram], IRProgram]

#: The six pipelines (analogues of -O0 ... -O2-ish clang option sets).
OPT_PIPELINES: Dict[str, Tuple[Pass, ...]] = {
    "O0": (),
    "O1-fold": (constant_fold,),
    "O1-dce": (constant_fold, dead_code_elimination),
    "O2-cse": (constant_fold, common_subexpression_elimination,
               dead_code_elimination),
    "O2-licm": (loop_invariant_code_motion, constant_fold, strength_reduction,
                dead_code_elimination),
    "O2-unroll": (unroll_by_two, constant_fold,
                  common_subexpression_elimination, dead_code_elimination),
}


def pipeline_names() -> List[str]:
    return list(OPT_PIPELINES)


def apply_pipeline(program: IRProgram, name: str) -> IRProgram:
    """Apply the named pipeline to a copy of ``program``."""
    try:
        passes = OPT_PIPELINES[name]
    except KeyError:
        raise ConfigError(
            f"unknown pipeline {name!r}; choose from {pipeline_names()}"
        ) from None
    out = clone_program(program)
    for pipeline_pass in passes:
        out = pipeline_pass(out)
    return out
