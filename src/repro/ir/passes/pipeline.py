"""The six optimization pipelines standing in for the paper's six clang
option builds (Section IV-A, "Transformed dataset").

Each pipeline is a named sequence of semantics-preserving passes.  Applying
all six to one kernel yields six structurally distinct LinearIR variants —
different instruction mixes, different CU shapes, different dependence
surfaces — with identical run-time behaviour and identical loop labels.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.ir.linear import IRProgram
from repro.ir.passes.clone import clone_program
from repro.ir.passes.constfold import constant_fold
from repro.ir.passes.cse import common_subexpression_elimination
from repro.ir.passes.dce import dead_code_elimination
from repro.ir.passes.licm import loop_invariant_code_motion
from repro.ir.passes.strength import strength_reduction
from repro.ir.passes.unroll import unroll_by_two

Pass = Callable[[IRProgram], IRProgram]

#: The six pipelines (analogues of -O0 ... -O2-ish clang option sets).
OPT_PIPELINES: Dict[str, Tuple[Pass, ...]] = {
    "O0": (),
    "O1-fold": (constant_fold,),
    "O1-dce": (constant_fold, dead_code_elimination),
    "O2-cse": (constant_fold, common_subexpression_elimination,
               dead_code_elimination),
    "O2-licm": (loop_invariant_code_motion, constant_fold, strength_reduction,
                dead_code_elimination),
    "O2-unroll": (unroll_by_two, constant_fold,
                  common_subexpression_elimination, dead_code_elimination),
}


def pipeline_names() -> List[str]:
    return list(OPT_PIPELINES)


#: environment flag: when set to a non-empty value other than "0", every
#: pass application is followed by a full ``ir.verify`` run.  The test
#: suite sets it (tests/conftest.py) so every optimization variant used in
#: dataset assembly is verified; production builds skip the overhead.
VERIFY_ENV = "REPRO_VERIFY_PASSES"


def _verify_from_env() -> bool:
    value = os.environ.get(VERIFY_ENV, "")
    return bool(value) and value != "0"


def apply_pipeline(
    program: IRProgram, name: str, verify: Optional[bool] = None
) -> IRProgram:
    """Apply the named pipeline to a copy of ``program``.

    ``verify=True`` re-runs :func:`repro.ir.verify.verify_program` after
    every pass, attributing the failure to the pass that produced the bad
    IR; ``None`` (default) consults the :data:`VERIFY_ENV` environment
    flag.
    """
    try:
        passes = OPT_PIPELINES[name]
    except KeyError:
        raise ConfigError(
            f"unknown pipeline {name!r}; choose from {pipeline_names()}"
        ) from None
    if verify is None:
        verify = _verify_from_env()
    out = clone_program(program)
    for pipeline_pass in passes:
        out = pipeline_pass(out)
        if verify:
            from repro.errors import IRError
            from repro.ir.verify import verify_program

            try:
                verify_program(out)
            except IRError as exc:
                raise IRError(
                    f"pipeline {name!r}: pass "
                    f"{getattr(pipeline_pass, '__name__', pipeline_pass)!r} "
                    f"produced invalid IR: {exc}"
                ) from exc
    return out
