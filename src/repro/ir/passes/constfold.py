"""Constant folding with block-local constant propagation.

Folds pure arithmetic whose operands are all immediates, records the folded
register as an immediate, and rewrites later uses.  Division/modulo by a
constant zero is left unfolded (the interpreter raises at runtime, and we
must not change observable behaviour).  Folding is per-block; since lowering
only materializes immediates locally this captures everything in practice.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ir.linear import Imm, Instr, IRFunction, IRProgram, Opcode, Reg
from repro.ir.passes.clone import clone_program


def _fold(instr: Instr) -> Optional[float]:
    ops = instr.operands
    values = []
    for op in ops:
        if not isinstance(op, Imm):
            return None
        values.append(op.value)
    opcode = instr.opcode
    if opcode is Opcode.ADD:
        return values[0] + values[1]
    if opcode is Opcode.SUB:
        return values[0] - values[1]
    if opcode is Opcode.MUL:
        return values[0] * values[1]
    if opcode is Opcode.DIV:
        return values[0] / values[1] if values[1] != 0.0 else None
    if opcode is Opcode.MOD:
        # Euclidean semantics, matching the interpreter (Python's %)
        return values[0] % values[1] if values[1] != 0.0 else None
    if opcode is Opcode.MIN:
        return min(values)
    if opcode is Opcode.MAX:
        return max(values)
    if opcode is Opcode.NEG:
        return -values[0]
    if opcode is Opcode.NOT:
        return 0.0 if values[0] != 0.0 else 1.0
    if opcode is Opcode.AND:
        return 1.0 if values[0] != 0.0 and values[1] != 0.0 else 0.0
    if opcode is Opcode.OR:
        return 1.0 if values[0] != 0.0 or values[1] != 0.0 else 0.0
    if opcode is Opcode.CMP:
        pred = instr.meta.get("pred")
        lhs, rhs = values
        result = {
            "lt": lhs < rhs,
            "le": lhs <= rhs,
            "gt": lhs > rhs,
            "ge": lhs >= rhs,
            "eq": lhs == rhs,
            "ne": lhs != rhs,
        }.get(pred)
        if result is None:
            return None
        return 1.0 if result else 0.0
    return None


def _fold_function(fn: IRFunction) -> None:
    for block in fn.blocks:
        consts: Dict[str, float] = {}
        new_instrs = []
        for instr in block.instrs:
            # substitute known-constant registers
            if any(
                isinstance(op, Reg) and op.name in consts for op in instr.operands
            ):
                instr.operands = tuple(
                    Imm(consts[op.name])
                    if isinstance(op, Reg) and op.name in consts
                    else op
                    for op in instr.operands
                )
            folded = _fold(instr)
            if folded is not None and instr.result is not None:
                # Record the constant and keep the (now trivially dead)
                # definition: a use in another block may still reference the
                # register after LICM has run.  DCE removes it when unused.
                consts[instr.result.name] = folded
            new_instrs.append(instr)
        block.instrs = new_instrs


def constant_fold(program: IRProgram) -> IRProgram:
    """Return a constant-folded copy of ``program``."""
    out = clone_program(program)
    for fn in out.functions.values():
        _fold_function(fn)
    return out
