"""Loop-invariant code motion (header-restricted, fault-safe).

Hoists invariant computations from a loop's *header* block into its
pre-header.  Restricting motion to the header keeps the pass strictly
semantics-preserving without speculation analysis: header instructions
execute at least once per loop entry, so executing them exactly once in the
pre-header can neither introduce nor hide a fault.  In practice this hoists
the per-iteration re-evaluation of loop bounds (``ldvar n`` chains), which
is the dominant LICM effect on the kernels we model — and it visibly changes
the dependence surface DiscoPoP-style profiling sees, which is what the
augmentation pipelines need.

Invariance rules inside the header:

* pure arithmetic whose register operands are defined outside the loop or by
  already-hoisted instructions;
* ``ldvar v`` where no ``stvar v`` occurs anywhere in the loop (scalars are
  frame-local, so calls cannot clobber them);
* ``load a[i]`` where ``i`` is invariant, no store to ``a`` occurs in the
  loop, and the loop contains no calls (callees may write global arrays).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.linear import (
    ARITH_OPS,
    Instr,
    IRFunction,
    IRProgram,
    Opcode,
    Reg,
)
from repro.ir.passes.clone import clone_program
from repro.profiler.static_info import loop_block_sets


def _find_preheader(fn: IRFunction, loop_id: str) -> Optional[Instr]:
    """The LOOPENTER instruction of ``loop_id`` (hoist insertion point)."""
    for block in fn.blocks:
        for instr in block.instrs:
            if instr.opcode is Opcode.LOOPENTER and instr.operands[0] == loop_id:
                return instr
    return None


def _licm_function(fn: IRFunction) -> None:
    block_sets = loop_block_sets(fn)
    blocks_by_label = {b.label: b for b in fn.blocks}

    for loop_id, info in fn.loops.items():
        loop_blocks = block_sets.get(loop_id, set())
        header = blocks_by_label.get(info.header)
        if header is None:
            continue

        stored_scalars: Set[str] = set()
        stored_arrays: Set[str] = set()
        has_call = False
        defs_in_loop: Set[str] = set()
        for label in loop_blocks:
            for instr in blocks_by_label[label].instrs:
                if instr.opcode is Opcode.STVAR:
                    stored_scalars.add(instr.operands[0])
                elif instr.opcode is Opcode.STORE:
                    stored_arrays.add(instr.operands[0])
                elif instr.opcode is Opcode.CALLFN:
                    has_call = True
                if instr.result is not None:
                    defs_in_loop.add(instr.result.name)

        hoisted: List[Instr] = []
        hoisted_regs: Set[str] = set()
        remaining: List[Instr] = []
        for instr in header.instrs:
            if _is_invariant(
                instr,
                defs_in_loop,
                hoisted_regs,
                stored_scalars,
                stored_arrays,
                has_call,
            ):
                hoisted.append(instr)
                if instr.result is not None:
                    hoisted_regs.add(instr.result.name)
            else:
                remaining.append(instr)
        if not hoisted:
            continue
        header.instrs = remaining

        # insert before the LOOPENTER of this loop
        enter = _find_preheader(fn, loop_id)
        if enter is None:  # defensive: malformed loop, undo
            header.instrs = hoisted + remaining
            continue
        parent = info.parent
        for instr in hoisted:
            instr.loop_id = parent
        for block in fn.blocks:
            if enter in block.instrs:
                pos = block.instrs.index(enter)
                block.instrs[pos:pos] = hoisted
                break


def _is_invariant(
    instr: Instr,
    defs_in_loop: Set[str],
    hoisted_regs: Set[str],
    stored_scalars: Set[str],
    stored_arrays: Set[str],
    has_call: bool,
) -> bool:
    def operands_invariant() -> bool:
        for op in instr.operands:
            if isinstance(op, Reg):
                if op.name in defs_in_loop and op.name not in hoisted_regs:
                    return False
        return True

    if instr.opcode in ARITH_OPS or instr.opcode is Opcode.CONST:
        return operands_invariant()
    if instr.opcode is Opcode.LDVAR:
        return instr.operands[0] not in stored_scalars
    if instr.opcode is Opcode.LOAD:
        return (
            not has_call
            and instr.operands[0] not in stored_arrays
            and operands_invariant()
        )
    return False


def loop_invariant_code_motion(program: IRProgram) -> IRProgram:
    """Return a copy of ``program`` with header-restricted LICM applied."""
    out = clone_program(program)
    for fn in out.functions.values():
        _licm_function(fn)
    return out
