"""Dead code elimination.

Removes pure instructions (arithmetic, comparisons, loads) whose results are
never used anywhere in the function, iterating to a fixpoint.  Memory writes,
calls, terminators, and loop pseudo-ops always survive.  Removing dead loads
changes the *observable dependence surface* without changing semantics —
exactly the effect different clang -O levels have on DiscoPoP's input, which
is the point of the augmentation pipelines.
"""

from __future__ import annotations

from typing import Set

from repro.ir.linear import ARITH_OPS, IRFunction, IRProgram, Opcode, Reg
from repro.ir.passes.clone import clone_program

_REMOVABLE = ARITH_OPS | {Opcode.LDVAR, Opcode.LOAD, Opcode.CONST}


def _dce_function(fn: IRFunction) -> None:
    while True:
        used: Set[str] = set()
        for block in fn.blocks:
            for instr in block.instrs:
                for op in instr.operands:
                    if isinstance(op, Reg):
                        used.add(op.name)
        removed = 0
        for block in fn.blocks:
            kept = []
            for instr in block.instrs:
                if (
                    instr.opcode in _REMOVABLE
                    and instr.result is not None
                    and instr.result.name not in used
                ):
                    removed += 1
                    continue
                kept.append(instr)
            block.instrs = kept
        if removed == 0:
            return


def dead_code_elimination(program: IRProgram) -> IRProgram:
    """Return a copy of ``program`` with dead pure instructions removed."""
    out = clone_program(program)
    for fn in out.functions.values():
        _dce_function(fn)
    return out
