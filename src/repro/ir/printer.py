"""Textual rendering of LinearIR.

Two renderings are provided:

* :func:`statement_text` — the *normalized* single-instruction string used as
  the inst2vec token (identifiers abstracted, like inst2vec's preprocessing
  of LLVM IR statements);
* :func:`print_function` / :func:`print_program` — human-readable dumps with
  concrete registers and symbols, used in tests and examples.
"""

from __future__ import annotations

from typing import List

from repro.ir.linear import (
    BasicBlock,
    Imm,
    Instr,
    IRFunction,
    IRProgram,
    Opcode,
    Operand,
    Reg,
)


def _operand_str(op: Operand) -> str:
    if isinstance(op, Reg):
        return f"%{op.name}"
    if isinstance(op, Imm):
        return f"{op.value:g}"
    return str(op)


def _operand_token(op: Operand) -> str:
    """Normalized operand for vocabulary purposes: registers and symbols are
    abstracted to kinds, small integer immediates are kept (they carry
    semantic signal, e.g. stride 1 vs 2), other immediates become <imm>."""
    if isinstance(op, Reg):
        return "<reg>"
    if isinstance(op, Imm):
        if float(op.value).is_integer() and abs(op.value) <= 4:
            return f"{int(op.value)}"
        return "<imm>"
    return "<sym>"


def statement_text(instr: Instr) -> str:
    """Normalized statement string for one instruction (the inst2vec token)."""
    opcode = instr.opcode.value
    if instr.opcode is Opcode.CMP:
        opcode = f"cmp.{instr.meta.get('pred', '??')}"
    elif instr.opcode is Opcode.CALL or instr.opcode is Opcode.CALLFN:
        # Keep intrinsic names (they are few and meaningful); abstract user
        # function names so the vocabulary stays program-independent.
        target = instr.operands[0] if instr.operands else "?"
        name = target if instr.opcode is Opcode.CALL else "<fn>"
        rest = " ".join(_operand_token(a) for a in instr.operands[1:])
        return f"{opcode} {name} {rest}".rstrip()
    elif instr.opcode in (Opcode.BR, Opcode.CONDBR):
        # Branch targets are control flow, not semantics; drop labels.
        kinds = " ".join(
            _operand_token(o) for o in instr.operands if isinstance(o, (Reg, Imm))
        )
        return f"{opcode} {kinds}".rstrip()
    elif instr.opcode in (Opcode.LOOPENTER, Opcode.LOOPNEXT, Opcode.LOOPEXIT):
        return opcode
    operands = " ".join(_operand_token(o) for o in instr.operands)
    return f"{opcode} {operands}".rstrip()


def instr_str(instr: Instr) -> str:
    """Concrete, human-readable rendering of one instruction."""
    parts: List[str] = []
    if instr.result is not None:
        parts.append(f"%{instr.result.name} =")
    opcode = instr.opcode.value
    if instr.opcode is Opcode.CMP:
        opcode = f"cmp.{instr.meta.get('pred', '??')}"
    parts.append(opcode)
    parts.extend(_operand_str(o) for o in instr.operands)
    text = " ".join(parts)
    return f"{text}  ; iid={instr.iid} line={instr.line}"


def print_block(block: BasicBlock) -> str:
    lines = [f"{block.label}:"]
    lines.extend(f"  {instr_str(i)}" for i in block.instrs)
    return "\n".join(lines)


def print_function(fn: IRFunction) -> str:
    header = f"func @{fn.name}({', '.join(fn.params)})"
    body = "\n".join(print_block(b) for b in fn.blocks)
    return f"{header} {{\n{body}\n}}"


def print_program(program: IRProgram) -> str:
    decls = "\n".join(f"array @{n}[{s}]" for n, s in sorted(program.arrays.items()))
    fns = "\n\n".join(print_function(f) for f in program.functions.values())
    return f"; program {program.name}\n{decls}\n\n{fns}\n"
