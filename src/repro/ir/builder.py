"""Fluent builders for authoring MiniC programs.

The benchmark suite (``repro.benchsuite``) authors hundreds of kernels; the
builder keeps that code compact, assigns synthetic source line numbers, and
allocates stable loop ids.

Example::

    pb = ProgramBuilder("demo")
    pb.array("a", 64)
    with pb.function("main") as fb:
        with fb.loop("i", 0, 64) as i:
            fb.store("a", i, fb.mul(i, Const(2.0)))
    program = pb.build()
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import IRError
from repro.ir.ast_nodes import (
    Assign,
    BinOp,
    Break,
    CallExpr,
    CallStmt,
    Const,
    Expr,
    For,
    Function,
    If,
    Load,
    Program,
    Return,
    Stmt,
    Store,
    UnOp,
    Var,
    While,
)

ExprLike = Union[Expr, float, int, str]


def as_expr(value: ExprLike) -> Expr:
    """Coerce a Python number / variable name / Expr into an Expr."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return Const(1.0 if value else 0.0)
    if isinstance(value, (int, float)):
        return Const(float(value))
    if isinstance(value, str):
        return Var(value)
    raise IRError(f"cannot convert {value!r} to a MiniC expression")


class ProgramBuilder:
    """Builds a :class:`~repro.ir.ast_nodes.Program`."""

    def __init__(self, name: str = "program", entry: str = "main") -> None:
        self.name = name
        self.entry = entry
        self._arrays: Dict[str, int] = {}
        self._functions: Dict[str, Function] = {}
        self._next_line = 1
        self._next_loop = 0

    # -- declarations -----------------------------------------------------

    def array(self, name: str, size: int) -> str:
        """Declare a global array with ``size`` elements."""
        if size <= 0:
            raise IRError(f"array {name!r} must have positive size, got {size}")
        if name in self._arrays and self._arrays[name] != size:
            raise IRError(f"array {name!r} redeclared with different size")
        self._arrays[name] = int(size)
        return name

    def function(self, name: str, params: Sequence[str] = ()) -> "FunctionBuilder":
        """Open a function builder (usable as a context manager)."""
        if name in self._functions:
            raise IRError(f"function {name!r} already defined")
        return FunctionBuilder(self, name, tuple(params))

    # -- internal id allocation -------------------------------------------

    def _alloc_line(self) -> int:
        line = self._next_line
        self._next_line += 1
        return line

    def _alloc_loop_id(self, fn_name: str) -> str:
        loop_id = f"{self.name}:{fn_name}:L{self._next_loop}"
        self._next_loop += 1
        return loop_id

    def _install(self, fn: Function) -> None:
        self._functions[fn.name] = fn

    # -- finalize -----------------------------------------------------------

    def build(self) -> Program:
        if self.entry not in self._functions:
            raise IRError(
                f"program {self.name!r} is missing entry function {self.entry!r}"
            )
        return Program(
            functions=dict(self._functions),
            arrays=dict(self._arrays),
            entry=self.entry,
            name=self.name,
        )


class FunctionBuilder:
    """Builds one function; statements append to the innermost open scope."""

    def __init__(self, program: ProgramBuilder, name: str, params: Tuple[str, ...]):
        self._pb = program
        self.name = name
        self.params = params
        self._scopes: List[List[Stmt]] = [[]]

    # -- context management -------------------------------------------------

    def __enter__(self) -> "FunctionBuilder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()

    def close(self) -> None:
        if len(self._scopes) != 1:
            raise IRError(f"function {self.name!r} closed with open blocks")
        self._pb._install(Function(self.name, self.params, self._scopes[0]))

    # -- expression helpers ---------------------------------------------------

    @staticmethod
    def const(value: float) -> Const:
        return Const(float(value))

    @staticmethod
    def var(name: str) -> Var:
        return Var(name)

    @staticmethod
    def load(array: str, index: ExprLike) -> Load:
        return Load(array, as_expr(index))

    @staticmethod
    def add(a: ExprLike, b: ExprLike) -> BinOp:
        return BinOp("+", as_expr(a), as_expr(b))

    @staticmethod
    def sub(a: ExprLike, b: ExprLike) -> BinOp:
        return BinOp("-", as_expr(a), as_expr(b))

    @staticmethod
    def mul(a: ExprLike, b: ExprLike) -> BinOp:
        return BinOp("*", as_expr(a), as_expr(b))

    @staticmethod
    def div(a: ExprLike, b: ExprLike) -> BinOp:
        return BinOp("/", as_expr(a), as_expr(b))

    @staticmethod
    def mod(a: ExprLike, b: ExprLike) -> BinOp:
        return BinOp("%", as_expr(a), as_expr(b))

    @staticmethod
    def cmp(op: str, a: ExprLike, b: ExprLike) -> BinOp:
        return BinOp(op, as_expr(a), as_expr(b))

    @staticmethod
    def call(fn: str, *args: ExprLike) -> CallExpr:
        return CallExpr(fn, tuple(as_expr(a) for a in args))

    @staticmethod
    def neg(a: ExprLike) -> UnOp:
        return UnOp("-", as_expr(a))

    # -- statements ----------------------------------------------------------

    def _append(self, stmt: Stmt) -> Stmt:
        stmt.line = self._pb._alloc_line()
        self._scopes[-1].append(stmt)
        return stmt

    def assign(self, name: str, expr: ExprLike) -> Stmt:
        return self._append(Assign(name, as_expr(expr)))

    def store(self, array: str, index: ExprLike, expr: ExprLike) -> Stmt:
        return self._append(Store(array, as_expr(index), as_expr(expr)))

    def call_stmt(self, fn: str, *args: ExprLike) -> Stmt:
        return self._append(CallStmt(fn, tuple(as_expr(a) for a in args)))

    def ret(self, expr: Optional[ExprLike] = None) -> Stmt:
        return self._append(Return(None if expr is None else as_expr(expr)))

    def brk(self) -> Stmt:
        return self._append(Break())

    # -- structured blocks -----------------------------------------------------

    def loop(
        self,
        var: str,
        lo: ExprLike,
        hi: ExprLike,
        step: ExprLike = 1,
    ) -> "_LoopScope":
        """Open a counted loop scope; yields the loop variable as a Var."""
        stmt = For(
            var=var,
            lo=as_expr(lo),
            hi=as_expr(hi),
            step=as_expr(step),
            body=[],
            loop_id=self._pb._alloc_loop_id(self.name),
        )
        self._append(stmt)
        return _LoopScope(self, stmt)

    def while_loop(self, cond: ExprLike) -> "_WhileScope":
        stmt = While(cond=as_expr(cond), body=[])
        self._append(stmt)
        return _WhileScope(self, stmt)

    def if_block(self, cond: ExprLike) -> "_IfScope":
        stmt = If(cond=as_expr(cond), then_body=[], else_body=[])
        self._append(stmt)
        return _IfScope(self, stmt)

    # -- scope plumbing ----------------------------------------------------------

    def _push(self, body: List[Stmt]) -> None:
        self._scopes.append(body)

    def _pop(self) -> None:
        if len(self._scopes) <= 1:
            raise IRError("scope underflow in FunctionBuilder")
        self._scopes.pop()


class _LoopScope:
    def __init__(self, fb: FunctionBuilder, stmt: For) -> None:
        self._fb = fb
        self.stmt = stmt

    def __enter__(self) -> Var:
        self._fb._push(self.stmt.body)
        return Var(self.stmt.var)

    def __exit__(self, exc_type, exc, tb) -> None:
        self._fb._pop()


class _WhileScope:
    def __init__(self, fb: FunctionBuilder, stmt: While) -> None:
        self._fb = fb
        self.stmt = stmt

    def __enter__(self) -> While:
        self._fb._push(self.stmt.body)
        return self.stmt

    def __exit__(self, exc_type, exc, tb) -> None:
        self._fb._pop()


class _IfScope:
    """``with fb.if_block(cond) as blk: ...`` builds the then-branch.

    After that block closes, open the else-branch with::

        with blk.otherwise():
            ...
    """

    def __init__(self, fb: FunctionBuilder, stmt: If) -> None:
        self._fb = fb
        self.stmt = stmt

    def __enter__(self) -> "_IfScope":
        self._fb._push(self.stmt.then_body)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._fb._pop()

    def otherwise(self) -> "_ElseScope":
        return _ElseScope(self._fb, self.stmt)


class _ElseScope:
    def __init__(self, fb: FunctionBuilder, stmt: If) -> None:
        self._fb = fb
        self.stmt = stmt

    def __enter__(self) -> "_ElseScope":
        self._fb._push(self.stmt.else_body)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._fb._pop()
