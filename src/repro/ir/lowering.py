"""Lowering from MiniC AST to LinearIR.

The lowering mirrors what clang -O0 produces for the corresponding C: every
program variable lives in memory, expression temporaries get fresh virtual
registers, and loops become the canonical pre-header / header / body / latch
/ exit block structure.  Loop pseudo-instructions bracket every loop so the
profiler can maintain exact iteration vectors (see :mod:`repro.ir.linear`).

Loop shape emitted for ``for (v = lo; v < hi; v += step)``::

    <pre>:    eval lo; stvar v; loopenter L; br header
    header:   rv = ldvar v; rhi = eval hi; rc = cmp lt rv rhi
              condbr rc, body, exit
    body:     ... ; br latch
    latch:    rv = ldvar v; rn = add rv, step; stvar v; loopnext L; br header
    exit:     loopexit L ; ...

``hi`` is re-evaluated each iteration exactly as C semantics require; LICM
(:mod:`repro.ir.passes.licm`) hoists it when invariant, giving the six
augmentation pipelines genuinely different IR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import LoweringError
from repro.ir import ast_nodes as ast
from repro.ir.linear import (
    BasicBlock,
    Imm,
    Instr,
    IRFunction,
    IRProgram,
    LoopInfo,
    Opcode,
    Operand,
    Reg,
)

_BINOP_OPCODES = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.MOD,
    "min": Opcode.MIN,
    "max": Opcode.MAX,
    "&&": Opcode.AND,
    "||": Opcode.OR,
}

_CMP_PREDS = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge", "==": "eq", "!=": "ne"}


@dataclass
class _LoopCtx:
    info: LoopInfo
    latch: str
    exit: str


class _FunctionLowering:
    """Stateful lowering of one function."""

    def __init__(self, fn: ast.Function, program: ast.Program) -> None:
        self.fn = fn
        self.program = program
        self.blocks: List[BasicBlock] = []
        self.loops: Dict[str, LoopInfo] = {}
        self._cur: Optional[BasicBlock] = None
        self._next_reg = 0
        self._next_label = 0
        self._next_iid = 0
        self._next_while = 0
        self._loop_stack: List[_LoopCtx] = []
        self._cur_line = 0

    # -- allocation ---------------------------------------------------------

    def _reg(self) -> Reg:
        reg = Reg(f"r{self._next_reg}")
        self._next_reg += 1
        return reg

    def _label(self, hint: str) -> str:
        label = f"{hint}{self._next_label}"
        self._next_label += 1
        return label

    def _new_block(self, hint: str) -> BasicBlock:
        block = BasicBlock(self._label(hint))
        self.blocks.append(block)
        return block

    def _set_block(self, block: BasicBlock) -> None:
        self._cur = block

    # -- emission ----------------------------------------------------------

    def emit(
        self,
        opcode: Opcode,
        operands: Tuple[Operand, ...] = (),
        result: Optional[Reg] = None,
        **meta: object,
    ) -> Instr:
        if self._cur is None:
            raise LoweringError("emission outside of a basic block")
        if self._cur.terminator is not None:
            # Unreachable code after break/return inside the same MiniC block;
            # drop it silently the way a real compiler's CFG construction does.
            return Instr(-1, opcode, operands, result, dict(meta))
        instr = Instr(
            iid=self._next_iid,
            opcode=opcode,
            operands=operands,
            result=result,
            meta=dict(meta),
            line=self._cur_line,
            loop_id=self._loop_stack[-1].info.loop_id if self._loop_stack else None,
        )
        self._next_iid += 1
        self._cur.instrs.append(instr)
        return instr

    # -- expressions --------------------------------------------------------

    def lower_expr(self, expr: ast.Expr) -> Operand:
        if isinstance(expr, ast.Const):
            return Imm(expr.value)
        if isinstance(expr, ast.Var):
            reg = self._reg()
            self.emit(Opcode.LDVAR, (expr.name,), reg)
            return reg
        if isinstance(expr, ast.Load):
            index = self.lower_expr(expr.index)
            reg = self._reg()
            self.emit(Opcode.LOAD, (expr.array, index), reg)
            return reg
        if isinstance(expr, ast.BinOp):
            return self._lower_binop(expr)
        if isinstance(expr, ast.UnOp):
            operand = self.lower_expr(expr.operand)
            reg = self._reg()
            opcode = Opcode.NEG if expr.op == "-" else Opcode.NOT
            self.emit(opcode, (operand,), reg)
            return reg
        if isinstance(expr, ast.CallExpr):
            args = tuple(self.lower_expr(a) for a in expr.args)
            reg = self._reg()
            if expr.is_intrinsic:
                self.emit(Opcode.CALL, (expr.fn,) + args, reg)
            else:
                if expr.fn not in self.program.functions:
                    raise LoweringError(f"call to undefined function {expr.fn!r}")
                self.emit(Opcode.CALLFN, (expr.fn,) + args, reg)
            return reg
        raise LoweringError(f"cannot lower expression {expr!r}")

    def _lower_binop(self, expr: ast.BinOp) -> Operand:
        lhs = self.lower_expr(expr.lhs)
        rhs = self.lower_expr(expr.rhs)
        reg = self._reg()
        if expr.op in _CMP_PREDS:
            self.emit(Opcode.CMP, (lhs, rhs), reg, pred=_CMP_PREDS[expr.op])
        elif expr.op in _BINOP_OPCODES:
            self.emit(_BINOP_OPCODES[expr.op], (lhs, rhs), reg, op=expr.op)
        else:
            raise LoweringError(f"cannot lower operator {expr.op!r}")
        return reg

    # -- statements -----------------------------------------------------------

    def lower_body(self, body: List[ast.Stmt]) -> None:
        for stmt in body:
            self._cur_line = stmt.line
            self.lower_stmt(stmt)

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.lower_expr(stmt.expr)
            self.emit(Opcode.STVAR, (stmt.name, value))
        elif isinstance(stmt, ast.Store):
            index = self.lower_expr(stmt.index)
            value = self.lower_expr(stmt.expr)
            self.emit(Opcode.STORE, (stmt.array, index, value))
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.CallStmt):
            args = tuple(self.lower_expr(a) for a in stmt.args)
            if stmt.fn in ast.INTRINSICS:
                self.emit(Opcode.CALL, (stmt.fn,) + args, self._reg())
            elif stmt.fn in self.program.functions:
                self.emit(Opcode.CALLFN, (stmt.fn,) + args)
            else:
                raise LoweringError(f"call to undefined function {stmt.fn!r}")
        elif isinstance(stmt, ast.Return):
            value = self.lower_expr(stmt.expr) if stmt.expr is not None else None
            self.emit(Opcode.RET, (value,) if value is not None else ())
        elif isinstance(stmt, ast.Break):
            if not self._loop_stack:
                raise LoweringError("break outside of a loop")
            self.emit(Opcode.BR, (self._loop_stack[-1].exit,))
        else:
            raise LoweringError(f"cannot lower statement {stmt!r}")

    def _lower_for(self, stmt: ast.For) -> None:
        loop_id = stmt.loop_id or f"{self.program.name}:{self.fn.name}:anonL{stmt.line}"
        header = self._new_block("header")
        body = self._new_block("body")
        latch = self._new_block("latch")
        exit_block = self._new_block("exit")

        end_line = stmt.line
        for inner in ast.walk_stmts(stmt.body):
            end_line = max(end_line, inner.line)

        info = LoopInfo(
            loop_id=loop_id,
            var=stmt.var,
            header=header.label,
            body_entry=body.label,
            exit=exit_block.label,
            line=stmt.line,
            end_line=end_line,
            depth=len(self._loop_stack),
            parent=self._loop_stack[-1].info.loop_id if self._loop_stack else None,
            function=self.fn.name,
        )
        self.loops[loop_id] = info

        # pre-header: init induction variable, enter the loop
        lo = self.lower_expr(stmt.lo)
        self.emit(Opcode.STVAR, (stmt.var, lo))
        self.emit(Opcode.LOOPENTER, (loop_id,))
        self.emit(Opcode.BR, (header.label,))

        self._loop_stack.append(_LoopCtx(info, latch.label, exit_block.label))

        # header: test v < hi
        self._set_block(header)
        var_reg = self._reg()
        self.emit(Opcode.LDVAR, (stmt.var,), var_reg)
        hi = self.lower_expr(stmt.hi)
        cond = self._reg()
        self.emit(Opcode.CMP, (var_reg, hi), cond, pred="lt")
        self.emit(Opcode.CONDBR, (cond, body.label, exit_block.label))

        # body
        self._set_block(body)
        self.lower_body(stmt.body)
        self.emit(Opcode.BR, (latch.label,))

        # latch: v += step
        self._set_block(latch)
        self._cur_line = stmt.line
        var_reg2 = self._reg()
        self.emit(Opcode.LDVAR, (stmt.var,), var_reg2)
        step = self.lower_expr(stmt.step)
        next_reg = self._reg()
        self.emit(Opcode.ADD, (var_reg2, step), next_reg, op="+")
        self.emit(Opcode.STVAR, (stmt.var, next_reg))
        self.emit(Opcode.LOOPNEXT, (loop_id,))
        self.emit(Opcode.BR, (header.label,))

        self._loop_stack.pop()

        # exit
        self._set_block(exit_block)
        self.emit(Opcode.LOOPEXIT, (loop_id,))

    def _lower_while(self, stmt: ast.While) -> None:
        loop_id = f"{self.program.name}:{self.fn.name}:W{self._next_while}"
        self._next_while += 1
        header = self._new_block("whdr")
        body = self._new_block("wbody")
        exit_block = self._new_block("wexit")

        end_line = stmt.line
        for inner in ast.walk_stmts(stmt.body):
            end_line = max(end_line, inner.line)

        info = LoopInfo(
            loop_id=loop_id,
            var="",
            header=header.label,
            body_entry=body.label,
            exit=exit_block.label,
            line=stmt.line,
            end_line=end_line,
            depth=len(self._loop_stack),
            parent=self._loop_stack[-1].info.loop_id if self._loop_stack else None,
            function=self.fn.name,
        )
        self.loops[loop_id] = info

        self.emit(Opcode.LOOPENTER, (loop_id,))
        self.emit(Opcode.BR, (header.label,))

        self._loop_stack.append(_LoopCtx(info, header.label, exit_block.label))

        self._set_block(header)
        cond = self.lower_expr(stmt.cond)
        self.emit(Opcode.CONDBR, (cond, body.label, exit_block.label))

        self._set_block(body)
        self.lower_body(stmt.body)
        self.emit(Opcode.LOOPNEXT, (loop_id,))
        self.emit(Opcode.BR, (header.label,))

        self._loop_stack.pop()

        self._set_block(exit_block)
        self.emit(Opcode.LOOPEXIT, (loop_id,))

    def _lower_if(self, stmt: ast.If) -> None:
        then_block = self._new_block("then")
        join_block = self._new_block("join")
        else_block = self._new_block("else") if stmt.else_body else join_block

        cond = self.lower_expr(stmt.cond)
        self.emit(Opcode.CONDBR, (cond, then_block.label, else_block.label))

        self._set_block(then_block)
        self.lower_body(stmt.then_body)
        self.emit(Opcode.BR, (join_block.label,))

        if stmt.else_body:
            self._set_block(else_block)
            self.lower_body(stmt.else_body)
            self.emit(Opcode.BR, (join_block.label,))

        self._set_block(join_block)

    # -- driver ----------------------------------------------------------------

    def run(self) -> IRFunction:
        entry = self._new_block("entry")
        self._set_block(entry)
        self.lower_body(self.fn.body)
        if self._cur is not None and self._cur.terminator is None:
            self.emit(Opcode.RET, ())
        # Any block left unterminated (e.g. exit of a trailing loop) returns.
        for block in self.blocks:
            if block.terminator is None:
                block.instrs.append(
                    Instr(self._next_iid, Opcode.RET, (), None, {}, 0, None)
                )
                self._next_iid += 1
        fn = IRFunction(self.fn.name, self.fn.params, self.blocks, self.loops)
        # Block order places exits after bodies; move blocks into reverse
        # post-ish layout order already guaranteed by construction.
        return fn


def lower_function(fn: ast.Function, program: ast.Program) -> IRFunction:
    """Lower one MiniC function to LinearIR."""
    return _FunctionLowering(fn, program).run()


def lower_program(program: ast.Program) -> IRProgram:
    """Lower a whole MiniC program to LinearIR."""
    functions = {
        name: lower_function(fn, program) for name, fn in program.functions.items()
    }
    return IRProgram(
        name=program.name,
        functions=functions,
        arrays=dict(program.arrays),
        entry=program.entry,
    )
