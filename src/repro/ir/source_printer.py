"""C-like source rendering of MiniC programs.

Gives examples, documentation, and suggestion reports something readable to
show next to loop ids and pragma lines — the inverse direction of the
(authoring-only) builder API.
"""

from __future__ import annotations

from typing import List

from repro.ir import ast_nodes as ast
from repro.ir.ast_nodes import Program

_PRECEDENCE = {
    "||": 1, "&&": 2,
    "==": 3, "!=": 3, "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6, "%": 6,
}


def expr_to_source(expr: ast.Expr, parent_prec: int = 0) -> str:
    if isinstance(expr, ast.Const):
        value = expr.value
        return str(int(value)) if float(value).is_integer() else f"{value:g}"
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.Load):
        return f"{expr.array}[{expr_to_source(expr.index)}]"
    if isinstance(expr, ast.UnOp):
        inner = expr_to_source(expr.operand, 7)
        return f"{expr.op}{inner}"
    if isinstance(expr, ast.CallExpr):
        args = ", ".join(expr_to_source(a) for a in expr.args)
        return f"{expr.fn}({args})"
    if isinstance(expr, ast.BinOp):
        if expr.op in ("min", "max"):
            return (
                f"{expr.op}({expr_to_source(expr.lhs)}, "
                f"{expr_to_source(expr.rhs)})"
            )
        prec = _PRECEDENCE.get(expr.op, 5)
        lhs = expr_to_source(expr.lhs, prec)
        rhs = expr_to_source(expr.rhs, prec + 1)
        text = f"{lhs} {expr.op} {rhs}"
        return f"({text})" if prec < parent_prec else text
    return "<?>"


def _stmt_lines(stmt: ast.Stmt, indent: int, annotations) -> List[str]:
    pad = "    " * indent
    if isinstance(stmt, ast.Assign):
        return [f"{pad}{stmt.name} = {expr_to_source(stmt.expr)};"]
    if isinstance(stmt, ast.Store):
        return [
            f"{pad}{stmt.array}[{expr_to_source(stmt.index)}] = "
            f"{expr_to_source(stmt.expr)};"
        ]
    if isinstance(stmt, ast.For):
        lines = []
        note = annotations.get(stmt.loop_id) if annotations else None
        if note:
            lines.append(f"{pad}{note}")
        header = (
            f"{pad}for ({stmt.var} = {expr_to_source(stmt.lo)}; "
            f"{stmt.var} < {expr_to_source(stmt.hi)}; "
            f"{stmt.var} += {expr_to_source(stmt.step)}) {{"
        )
        lines.append(header)
        for inner in stmt.body:
            lines.extend(_stmt_lines(inner, indent + 1, annotations))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ast.While):
        lines = [f"{pad}while ({expr_to_source(stmt.cond)}) {{"]
        for inner in stmt.body:
            lines.extend(_stmt_lines(inner, indent + 1, annotations))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ast.If):
        lines = [f"{pad}if ({expr_to_source(stmt.cond)}) {{"]
        for inner in stmt.then_body:
            lines.extend(_stmt_lines(inner, indent + 1, annotations))
        if stmt.else_body:
            lines.append(f"{pad}}} else {{")
            for inner in stmt.else_body:
                lines.extend(_stmt_lines(inner, indent + 1, annotations))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ast.CallStmt):
        args = ", ".join(expr_to_source(a) for a in stmt.args)
        return [f"{pad}{stmt.fn}({args});"]
    if isinstance(stmt, ast.Return):
        if stmt.expr is None:
            return [f"{pad}return;"]
        return [f"{pad}return {expr_to_source(stmt.expr)};"]
    if isinstance(stmt, ast.Break):
        return [f"{pad}break;"]
    return [f"{pad}/* ? */"]


def program_to_source(program: Program, annotations=None) -> str:
    """Render a MiniC program as C-like source.

    ``annotations`` optionally maps loop_id -> a line to print immediately
    above the loop (e.g. an OpenMP pragma from
    :mod:`repro.analysis.suggestions`).
    """
    lines: List[str] = [f"/* program: {program.name} */"]
    for name, size in sorted(program.arrays.items()):
        lines.append(f"double {name}[{size}];")
    for fn in program.functions.values():
        params = ", ".join(f"double {p}" for p in fn.params)
        lines.append("")
        lines.append(f"double {fn.name}({params}) {{")
        for stmt in fn.body:
            lines.extend(_stmt_lines(stmt, 1, annotations or {}))
        lines.append("}")
    return "\n".join(lines)
