"""Execution validation of advice plans by simulated interleaving.

The validator extracts the advised loop into a self-contained *kernel
program*, runs it sequentially on the stock interpreter as the reference,
then applies the plan's transformation for each requested thread count
and demands equivalence twice over:

1. the transformed program run *sequentially* must already match the
   reference (the transformation itself must be semantics-preserving),
2. every simulated interleaving — the systematic round-robin schedule
   plus one seeded adversarial schedule per requested seed — must match
   the reference too.

Equivalence is **bitwise** for every array element except the live-out
slots of reduction accumulators, which the ordered merge reassociates;
those may differ by at most ``max_ulp`` units in the last place
(default 4).  Any mismatch *refutes* the plan: :meth:`AdvicePlan.with_validation`
downgrades it (``advised=False``, no pragma), so a refuted plan is never
emitted.  Loops the machinery cannot execute (symbolic bounds,
non-straight-line bodies) come back ``unvalidated`` — advice stands on
its static/model tier alone, clearly labeled.

Kernel harness
--------------

Live-out scalars of the loop (assignment targets plus the induction
variable) are spilled to a synthetic ``advout`` array after the loop, so
scalar corruption is visible through array state — the interpreter's
scalars are frame-local and unobservable after the run.  ``advout`` is
appended *last* to the arrays table so the seeded initialization draws
for the program's real arrays are unchanged.  Free scalars the loop
reads get deterministic synthetic values: 0.0 when they appear in
subscripts or bounds (keeping indices in range), else ``0.5 + 0.37*j``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import AdvisorError, InterpreterError
from repro.ir import ast_nodes as ast
from repro.ir.lowering import lower_program
from repro.ir.verify import verify_program
from repro.profiler.interpreter import Interpreter
from repro.advisor.plan import (
    AdvicePlan,
    ValidationRecord,
    VALIDATION_REFUTED,
    VALIDATION_UNVALIDATED,
    VALIDATION_VALIDATED,
)
from repro.advisor.scheduler import (
    SCHEDULE_ADVERSARIAL,
    SCHEDULE_ROUNDROBIN,
    ScheduleSpec,
    run_interleaved,
)
from repro.advisor.transform import apply_plan, clone_stmt, find_loop

#: name of the synthetic live-out spill array
OUT_ARRAY = "advout"

DEFAULT_THREADS = (2, 4)
DEFAULT_SEEDS = (0, 1, 2)
DEFAULT_MAX_ULP = 4.0


# ---------------------------------------------------------------------------
# float comparison
# ---------------------------------------------------------------------------


def _ordered_bits(x: float) -> int:
    """Map a float64 to an ordered integer: adjacent floats differ by 1."""
    (i,) = struct.unpack("<q", struct.pack("<d", x))
    return i if i >= 0 else 0x8000000000000000 - i


def ulp_diff(a: float, b: float) -> float:
    """Distance in units-in-the-last-place; inf when either is a NaN."""
    if a != a or b != b:
        return 0.0 if (a != a and b != b) else float("inf")
    return float(abs(_ordered_bits(a) - _ordered_bits(b)))


def bitwise_equal(a: float, b: float) -> bool:
    return struct.pack("<d", a) == struct.pack("<d", b)


def compare_states(
    ref: Dict[str, List[float]],
    got: Dict[str, List[float]],
    reduction_slots: Sequence[int],
    max_ulp: float,
) -> Optional[str]:
    """First mismatch under the policy, or None when equivalent.

    Bitwise equality everywhere, except ``advout`` elements listed in
    ``reduction_slots`` which tolerate ``max_ulp`` ULPs of reassociation.
    """
    slots = set(reduction_slots)
    for name in ref:
        ref_vals, got_vals = ref[name], got.get(name)
        if got_vals is None or len(got_vals) != len(ref_vals):
            return f"array {name!r} missing or resized"
        for i, (a, b) in enumerate(zip(ref_vals, got_vals)):
            if name == OUT_ARRAY and i in slots:
                diff = ulp_diff(a, b)
                if diff > max_ulp:
                    return (
                        f"{name}[{i}] (reduction slot): {a!r} vs {b!r} "
                        f"({diff:.0f} ulp > {max_ulp:g})"
                    )
            elif not bitwise_equal(a, b):
                return f"{name}[{i}]: {a!r} vs {b!r} (bitwise)"
    return None


# ---------------------------------------------------------------------------
# Kernel extraction
# ---------------------------------------------------------------------------


@dataclass
class KernelSpec:
    """A self-contained single-loop program plus its live-out layout."""

    program: ast.Program
    loop_id: str
    liveouts: Tuple[str, ...]          # advout slot j holds liveouts[j]
    reduction_slots: Tuple[int, ...]   # advout slots holding reduction accs
    scalar_inits: Dict[str, float]


def _vars_in(expr: ast.Expr) -> Set[str]:
    return {n.name for n in ast.walk_exprs(expr) if isinstance(n, ast.Var)}


def build_kernel(program: ast.Program, plan: AdvicePlan) -> KernelSpec:
    """Extract ``plan``'s loop into a standalone harness program."""
    fn_name, loop = find_loop(program, plan.loop_id)

    bound_vars: Set[str] = set()
    for e in (loop.lo, loop.hi, loop.step):
        bound_vars |= _vars_in(e)
    index_vars: Set[str] = set()
    read_vars: Set[str] = set()
    targets: List[str] = []
    for stmt in ast.walk_stmts(loop.body):
        for expr in ast.stmt_exprs(stmt):
            read_vars |= _vars_in(expr)
        if isinstance(stmt, ast.Store):
            index_vars |= _vars_in(stmt.index)
        if isinstance(stmt, ast.Assign) and stmt.name not in targets:
            targets.append(stmt.name)
        if isinstance(stmt, ast.For):
            for e in (stmt.lo, stmt.hi, stmt.step):
                read_vars |= _vars_in(e)
        for expr in ast.stmt_exprs(stmt):
            for node in ast.walk_exprs(expr):
                if isinstance(node, ast.Load):
                    index_vars |= _vars_in(node.index)

    inner_vars = {
        s.var for s in ast.walk_stmts(loop.body) if isinstance(s, ast.For)
    }
    free = sorted(
        (read_vars | bound_vars) - {loop.var} - inner_vars
    )
    scalar_inits: Dict[str, float] = {}
    for j, name in enumerate(free):
        if name in index_vars or name in bound_vars:
            scalar_inits[name] = 0.0
        else:
            scalar_inits[name] = 0.5 + 0.37 * j

    liveouts = tuple(sorted(set(targets) | {loop.var}))
    slot = {name: j for j, name in enumerate(liveouts)}
    reduction_slots = tuple(
        slot[v] for v in plan.reduction_vars if v in slot
    )

    prelude: List[ast.Stmt] = [
        ast.Assign(name, ast.Const(value), 0)
        for name, value in scalar_inits.items()
    ]
    epilogue: List[ast.Stmt] = [
        ast.Store(OUT_ARRAY, ast.Const(float(j)), ast.Var(name), 0)
        for j, name in enumerate(liveouts)
    ]
    body = prelude + [clone_stmt(loop)] + epilogue
    arrays = dict(program.arrays)
    arrays[OUT_ARRAY] = max(1, len(liveouts))  # appended LAST: keeps the
    # rng draws for the program's real arrays identical to the original
    kernel = ast.Program(
        functions={fn_name: ast.Function(fn_name, (), body)},
        arrays=arrays,
        entry=fn_name,
        name=f"{program.name}__advkernel",
    )
    return KernelSpec(
        program=kernel,
        loop_id=plan.loop_id,
        liveouts=liveouts,
        reduction_slots=reduction_slots,
        scalar_inits=scalar_inits,
    )


def _run_sequential(program: ast.Program, array_rng) -> Dict[str, List[float]]:
    """Lower + verify + interpret; final array state."""
    ir = lower_program(program)
    verify_program(ir)
    interp = Interpreter(ir, record=False, rng=array_rng)
    interp.run()
    return {k: list(v) for k, v in interp.arrays.items()}


def _kernel_context_blockers(
    kernel: KernelSpec, array_rng
) -> Optional[List[str]]:
    """Dependences the *synthetic* kernel context introduced, if any.

    An advised plan's loop is oracle-parallel in its real program.  The
    harness replaces loop-invariant context scalars with synthetic
    values, which can collapse an index space (``arr[i*k]`` with ``k``
    forced to 0) and manufacture overlaps the real program never has.
    Refuting the plan over those would be dishonest, so the validator
    profiles the kernel itself and bails to ``unvalidated`` when the
    kernel's own oracle disagrees with the real one.  Scalar races from
    a *bad plan* are unaffected — the oracle judges the loop (with
    privatization), not the plan.
    """
    from repro.analysis.oracle import classify_loop

    ir = lower_program(kernel.program)
    verify_program(ir)
    interp = Interpreter(ir, record=True, rng=array_rng)
    report = interp.run()
    oracle = classify_loop(ir, report, kernel.loop_id)
    if oracle.parallel:
        return None
    return list(oracle.blockers) or ["kernel-context dependence"]


# ---------------------------------------------------------------------------
# Validation driver
# ---------------------------------------------------------------------------


def validate_plan(
    program: ast.Program,
    plan: AdvicePlan,
    threads: Sequence[int] = DEFAULT_THREADS,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    max_ulp: float = DEFAULT_MAX_ULP,
    array_rng: int = 0,
) -> AdvicePlan:
    """Attach an execution verdict to ``plan``.

    Returns the plan with ``validation`` set to ``validated``,
    ``refuted`` (which also strips the advice), or ``unvalidated`` when
    the loop cannot be run through the machinery.
    """
    if not plan.advised:
        return plan.with_validation(ValidationRecord(
            status=VALIDATION_UNVALIDATED,
            detail="plan is not advised; nothing to validate",
        ))

    specs = [ScheduleSpec(SCHEDULE_ROUNDROBIN)] + [
        ScheduleSpec(SCHEDULE_ADVERSARIAL, seed=s) for s in seeds
    ]
    schedule_labels = tuple(s.label for s in specs)

    def record(status: str, detail: str) -> AdvicePlan:
        return plan.with_validation(ValidationRecord(
            status=status,
            threads=tuple(threads),
            seeds=tuple(seeds),
            schedules=schedule_labels,
            max_ulp=max_ulp,
            detail=detail,
        ))

    try:
        kernel = build_kernel(program, plan)
    except AdvisorError as exc:
        return record(VALIDATION_UNVALIDATED, f"kernel extraction failed: {exc}")

    try:
        blockers = _kernel_context_blockers(kernel, array_rng)
    except Exception as exc:  # noqa: BLE001 — see reference handler below
        return record(
            VALIDATION_UNVALIDATED, f"reference execution failed: {exc}"
        )
    if blockers is not None:
        return record(
            VALIDATION_UNVALIDATED,
            "synthetic kernel context introduces dependences: "
            + "; ".join(blockers[:2]),
        )

    try:
        ref = _run_sequential(kernel.program, array_rng)
    except Exception as exc:  # noqa: BLE001 — any reference failure
        # (interpreter fault, lowering error) means the loop cannot be
        # execution-validated; advice falls back to its static tier
        return record(
            VALIDATION_UNVALIDATED, f"reference execution failed: {exc}"
        )

    for t in threads:
        try:
            transformed = apply_plan(kernel.program, plan, t)
        except AdvisorError as exc:
            return record(VALIDATION_UNVALIDATED, f"not transformable: {exc}")

        try:
            seq_state = _run_sequential(transformed.program, array_rng)
        except InterpreterError as exc:
            return record(
                VALIDATION_REFUTED,
                f"transformed program faults sequentially at T={t}: {exc}",
            )
        mismatch = compare_states(
            ref, seq_state, kernel.reduction_slots, max_ulp
        )
        if mismatch is not None:
            return record(
                VALIDATION_REFUTED,
                f"transform alters sequential semantics at T={t}: {mismatch}",
            )

        for spec in specs:
            try:
                run = run_interleaved(transformed, spec, array_rng=array_rng)
            except AdvisorError as exc:
                return record(
                    VALIDATION_REFUTED,
                    f"runtime fault under {spec.label} at T={t}: {exc}",
                )
            mismatch = compare_states(
                ref, run.arrays, kernel.reduction_slots, max_ulp
            )
            if mismatch is not None:
                return record(
                    VALIDATION_REFUTED,
                    f"schedule {spec.label} at T={t} diverges: {mismatch}",
                )

    return record(
        VALIDATION_VALIDATED,
        f"equivalent under {len(specs)} schedules x T in "
        f"{{{', '.join(str(t) for t in threads)}}}",
    )
