"""High-level advisor entry points: per-program and per-app advice runs.

``advise_program`` is the whole pipeline for one MiniC program: lower +
profile, fuse verdicts into :class:`AdvicePlan` objects, then execution-
validate each advised plan by simulated interleaving.  ``advise_app``
maps it over a benchmark application and aggregates a Table-IV-style
summary row (advised / validated / refuted per app).

``self_check`` exercises the machinery on three hand-authored kernels
with *known* correct outcomes — a sum reduction the scheduler must
validate, a privatizable temporary it must validate, and a deliberately
broken plan (the same temporary left shared) it must refute.  The CLI
runs it on every ``repro advise`` invocation and the benchmark gates on
it: a validator that cannot refute a planted race proves nothing when it
validates everything else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.ast_nodes import Program
from repro.ir.builder import ProgramBuilder
from repro.ir.lowering import lower_program
from repro.ir.verify import verify_program
from repro.profiler.interpreter import profile_program
from repro.advisor.plan import (
    AdvicePlan,
    Clause,
    TIER_MODEL_ONLY,
    TIER_PROVER_CONFIRMED,
    VALIDATION_REFUTED,
    VALIDATION_UNVALIDATED,
    VALIDATION_VALIDATED,
    build_advice_plans,
)
from repro.advisor.validate import (
    DEFAULT_MAX_ULP,
    DEFAULT_SEEDS,
    DEFAULT_THREADS,
    validate_plan,
)


def advise_program(
    program: Program,
    model_verdicts: Optional[Dict[str, int]] = None,
    threads: Sequence[int] = DEFAULT_THREADS,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    max_ulp: float = DEFAULT_MAX_ULP,
    validate: bool = True,
    array_rng: int = 0,
) -> Dict[str, AdvicePlan]:
    """Build and (optionally) execution-validate plans for every loop."""
    ir = lower_program(program)
    verify_program(ir)
    report = profile_program(ir)
    plans = build_advice_plans(program, ir, report, model_verdicts)
    if not validate:
        return plans
    return {
        loop_id: validate_plan(
            program, plan, threads=threads, seeds=seeds,
            max_ulp=max_ulp, array_rng=array_rng,
        )
        for loop_id, plan in plans.items()
    }


@dataclass
class AppAdvice:
    """One application's advice run: plans plus the Table-IV tallies."""

    app: str
    plans: Dict[str, AdvicePlan] = field(default_factory=dict)

    @property
    def loops(self) -> int:
        return len(self.plans)

    @property
    def advised(self) -> int:
        return sum(1 for p in self.plans.values() if p.advised)

    @property
    def validated(self) -> int:
        return sum(
            1 for p in self.plans.values()
            if p.validation.status == VALIDATION_VALIDATED
        )

    @property
    def refuted(self) -> int:
        return sum(
            1 for p in self.plans.values()
            if p.validation.status == VALIDATION_REFUTED
        )

    @property
    def unvalidated(self) -> int:
        return sum(
            1 for p in self.plans.values()
            if p.advised
            and p.validation.status == VALIDATION_UNVALIDATED
        )

    @property
    def prover_confirmed(self) -> int:
        return sum(
            1 for p in self.plans.values()
            if p.advised and p.tier == TIER_PROVER_CONFIRMED
        )

    @property
    def model_only(self) -> int:
        return sum(
            1 for p in self.plans.values()
            if p.advised and p.tier == TIER_MODEL_ONLY
        )


def advise_app(
    spec,
    model_verdicts: Optional[Dict[str, int]] = None,
    threads: Sequence[int] = DEFAULT_THREADS,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    max_ulp: float = DEFAULT_MAX_ULP,
    validate: bool = True,
    array_rng: int = 0,
) -> AppAdvice:
    """Advise every program of one benchmark application."""
    advice = AppAdvice(app=spec.name)
    for program in spec.programs:
        advice.plans.update(advise_program(
            program, model_verdicts,
            threads=threads, seeds=seeds, max_ulp=max_ulp,
            validate=validate, array_rng=array_rng,
        ))
    return advice


TABLE_HEADER = (
    f"{'app':<12} {'loops':>5} {'advised':>7} {'prover':>6} "
    f"{'model':>5} {'validated':>9} {'refuted':>7} {'unvalid':>7}"
)


def render_table(advices: Sequence[AppAdvice]) -> str:
    """Table-IV-style per-application advisor report."""
    lines = [TABLE_HEADER, "-" * len(TABLE_HEADER)]
    total = AppAdvice(app="total")
    for a in advices:
        lines.append(
            f"{a.app:<12} {a.loops:>5} {a.advised:>7} {a.prover_confirmed:>6} "
            f"{a.model_only:>5} {a.validated:>9} {a.refuted:>7} "
            f"{a.unvalidated:>7}"
        )
        total.plans.update(a.plans)
    lines.append("-" * len(TABLE_HEADER))
    lines.append(
        f"{'total':<12} {total.loops:>5} {total.advised:>7} "
        f"{total.prover_confirmed:>6} {total.model_only:>5} "
        f"{total.validated:>9} {total.refuted:>7} {total.unvalidated:>7}"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Self-check kernels
# ---------------------------------------------------------------------------


def build_reduction_demo() -> Program:
    """``s += a[i] * a[i]`` — must validate with ``reduction(+: s)``."""
    pb = ProgramBuilder("advdemo_red")
    pb.array("a", 24)
    with pb.function("main") as fb:
        with fb.loop("i", 0, 24) as i:
            loaded = fb.load("a", i)
            fb.assign("s", fb.add(fb.var("s"), fb.mul(loaded, loaded)))
    return pb.build()


def build_privatization_demo() -> Program:
    """``t = 2*a[i]; b[i] = t + 1`` — must validate with ``private(t)``."""
    pb = ProgramBuilder("advdemo_priv")
    pb.array("a", 24)
    pb.array("b", 24)
    with pb.function("main") as fb:
        with fb.loop("i", 0, 24) as i:
            fb.assign("t", fb.mul(fb.load("a", i), fb.const(2.0)))
            fb.store("b", i, fb.add(fb.var("t"), fb.const(1.0)))
    return pb.build()


def build_racy_demo() -> Tuple[Program, AdvicePlan]:
    """The privatization kernel with a deliberately broken plan.

    The plan claims plain DOALL parallelism and omits ``private(t)``, so
    under any interleaved schedule the shared temporary is clobbered
    between its write and its read.  The scheduler must refute it.
    """
    pb = ProgramBuilder("advdemo_racy")
    pb.array("a", 24)
    pb.array("b", 24)
    with pb.function("main") as fb:
        with fb.loop("i", 0, 24) as i:
            fb.assign("t", fb.mul(fb.load("a", i), fb.const(2.0)))
            fb.store("b", i, fb.add(fb.var("t"), fb.const(1.0)))
    program = pb.build()
    loop_id = "advdemo_racy:main:L0"
    plan = AdvicePlan(
        loop_id=loop_id,
        program=program.name,
        function="main",
        line=1,
        pattern="doall",
        advised=True,
        tier=TIER_MODEL_ONLY,
        clauses=(Clause(kind="parallel_for", provenance=("model:mvgnn",)),),
        pragma="#pragma omp parallel for",
        rationale="deliberately unprivatized temporary (self-check)",
    )
    return program, plan


@dataclass
class SelfCheckResult:
    """Outcome of the three known-answer validator probes."""

    reduction_validated: bool
    privatization_validated: bool
    racy_refuted: bool
    details: Tuple[str, ...] = ()

    @property
    def passed(self) -> bool:
        return (
            self.reduction_validated
            and self.privatization_validated
            and self.racy_refuted
        )


def self_check(
    threads: Sequence[int] = DEFAULT_THREADS,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    max_ulp: float = DEFAULT_MAX_ULP,
) -> SelfCheckResult:
    """Known-answer probes: validate two good kernels, refute one race."""
    details: List[str] = []

    def one_plan(program: Program) -> AdvicePlan:
        plans = advise_program(
            program, threads=threads, seeds=seeds, max_ulp=max_ulp
        )
        (plan,) = plans.values()
        return plan

    red = one_plan(build_reduction_demo())
    red_ok = (
        red.validation.status == VALIDATION_VALIDATED
        and bool(red.reduction_vars)
    )
    details.append(f"reduction demo: {red.validation.status} ({red.pragma})")

    priv = one_plan(build_privatization_demo())
    priv_ok = (
        priv.validation.status == VALIDATION_VALIDATED
        and "t" in priv.private_vars
    )
    details.append(
        f"privatization demo: {priv.validation.status} ({priv.pragma})"
    )

    racy_program, racy_plan = build_racy_demo()
    racy = validate_plan(
        racy_program, racy_plan,
        threads=threads, seeds=seeds, max_ulp=max_ulp,
    )
    racy_ok = (
        racy.validation.status == VALIDATION_REFUTED and not racy.advised
    )
    details.append(
        f"racy demo: {racy.validation.status} ({racy.validation.detail})"
    )

    return SelfCheckResult(
        reduction_validated=red_ok,
        privatization_validated=priv_ok,
        racy_refuted=racy_ok,
        details=tuple(details),
    )
