"""Typed advice plans: model verdict + prover + analysis evidence, fused.

An :class:`AdvicePlan` is the advisor's unit of output — one per candidate
loop — recording *what* transformation is advised (parallel-for,
``reduction(op: var)`` clauses, privatization of named scalars), *who*
supported each clause (the provenance list), and *how much* to trust it
(the confidence tier):

``prover_confirmed``
    The static dependence prover (:mod:`repro.lint.static_dep`) proved the
    loop parallel under the oracle's semantics.
``model_only``
    The MV-GNN (or, without a model, the dynamic oracle) says parallel but
    the prover returned ``UNKNOWN`` — exactly the gap execution validation
    (:mod:`repro.advisor.validate`) exists to close.
``prover_refuted``
    The prover proved a blocking carried dependence; the plan is
    downgraded (``advised=False``) no matter what the model said, and is
    never emitted as an actionable pragma.

Plans serialize to plain JSON-ready dicts (:meth:`AdvicePlan.to_wire` /
:func:`plan_from_wire`) with deterministic field content, so the CLI
report, the on-disk artifacts linted by rule ``AD001``, and the
``POST /v1/advise`` endpoint all carry byte-identical plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.oracle import classify_loop
from repro.analysis.patterns import classify_all_patterns
from repro.analysis.reduction import find_reductions
from repro.analysis.suggestions import (
    _bare,
    _is_inner_induction,
    clause_strings,
    render_pragma,
)
from repro.errors import AdvisorError
from repro.ir import ast_nodes as ast
from repro.ir.linear import IRProgram
from repro.lint.static_dep import StaticVerdict, static_loop_verdicts
from repro.profiler.report import ProfileReport

#: Confidence tiers, in decreasing trust order.
TIER_PROVER_CONFIRMED = "prover_confirmed"
TIER_MODEL_ONLY = "model_only"
TIER_PROVER_REFUTED = "prover_refuted"
TIERS = (TIER_PROVER_CONFIRMED, TIER_MODEL_ONLY, TIER_PROVER_REFUTED)

#: Validation states an :class:`AdvicePlan` can carry.
VALIDATION_PENDING = "pending"
VALIDATION_VALIDATED = "validated"
VALIDATION_REFUTED = "refuted"
VALIDATION_UNVALIDATED = "unvalidated"


@dataclass(frozen=True)
class Clause:
    """One transformation clause with its evidence provenance.

    ``kind`` is ``"parallel_for"`` (var/operator None), ``"reduction"``
    (var = accumulator, operator = ``+``/``*``/``min``/``max``/``-``), or
    ``"private"`` (var = scalar name).  ``provenance`` names the views
    and provers that support the clause (``model:mvgnn``,
    ``oracle:dynamic``, ``prover:static_dep``, ``analysis:reduction``,
    ``analysis:privatization``).
    """

    kind: str
    var: Optional[str] = None
    operator: Optional[str] = None
    provenance: Tuple[str, ...] = ()

    def render(self) -> Optional[str]:
        """The OpenMP clause text (None for the bare parallel-for)."""
        if self.kind == "reduction":
            return f"reduction({self.operator}: {self.var})"
        if self.kind == "private":
            return f"private({self.var})"
        return None

    def to_wire(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "var": self.var,
            "operator": self.operator,
            "provenance": list(self.provenance),
        }


@dataclass(frozen=True)
class ValidationRecord:
    """Outcome of simulated-interleaving validation for one plan."""

    status: str = VALIDATION_PENDING
    threads: Tuple[int, ...] = ()
    seeds: Tuple[int, ...] = ()
    schedules: Tuple[str, ...] = ()
    max_ulp: float = 4.0
    detail: str = ""

    def to_wire(self) -> Dict[str, object]:
        return {
            "status": self.status,
            "threads": list(self.threads),
            "seeds": list(self.seeds),
            "schedules": list(self.schedules),
            "max_ulp": self.max_ulp,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class AdvicePlan:
    """One loop's fused, execution-checkable parallelization plan."""

    loop_id: str
    program: str
    function: str
    line: int
    pattern: str                      # ParallelPattern value string
    advised: bool
    tier: str
    clauses: Tuple[Clause, ...] = ()
    pragma: Optional[str] = None      # None when not advised
    static_verdict: str = StaticVerdict.UNKNOWN.value
    static_reasons: Tuple[str, ...] = ()
    model_label: Optional[int] = None
    oracle_label: int = 0
    rationale: str = ""
    validation: ValidationRecord = field(default_factory=ValidationRecord)

    @property
    def reduction_vars(self) -> Tuple[str, ...]:
        return tuple(
            c.var for c in self.clauses if c.kind == "reduction"
        )

    @property
    def reduction_ops(self) -> Dict[str, str]:
        return {
            c.var: c.operator for c in self.clauses if c.kind == "reduction"
        }

    @property
    def private_vars(self) -> Tuple[str, ...]:
        return tuple(c.var for c in self.clauses if c.kind == "private")

    def with_validation(
        self, record: ValidationRecord
    ) -> "AdvicePlan":
        """Attach a validation outcome; a refuted plan is *downgraded* —
        ``advised`` drops to False and the pragma is withdrawn, so a plan
        the scheduler disproved can never be emitted as actionable."""
        if record.status == VALIDATION_REFUTED:
            return replace(
                self, advised=False, pragma=None, validation=record
            )
        return replace(self, validation=record)

    def to_wire(self) -> Dict[str, object]:
        return {
            "loop_id": self.loop_id,
            "program": self.program,
            "function": self.function,
            "line": self.line,
            "pattern": self.pattern,
            "advised": self.advised,
            "tier": self.tier,
            "clauses": [c.to_wire() for c in self.clauses],
            "pragma": self.pragma,
            "static_verdict": self.static_verdict,
            "static_reasons": list(self.static_reasons),
            "model_label": self.model_label,
            "oracle_label": self.oracle_label,
            "rationale": self.rationale,
            "validation": self.validation.to_wire(),
        }


def plan_from_wire(obj: Mapping) -> AdvicePlan:
    """Inverse of :meth:`AdvicePlan.to_wire`; raises AdvisorError on junk."""
    try:
        clauses = tuple(
            Clause(
                kind=str(c["kind"]),
                var=c.get("var"),
                operator=c.get("operator"),
                provenance=tuple(c.get("provenance", ())),
            )
            for c in obj.get("clauses", ())
        )
        v = obj.get("validation", {})
        validation = ValidationRecord(
            status=str(v.get("status", VALIDATION_PENDING)),
            threads=tuple(int(t) for t in v.get("threads", ())),
            seeds=tuple(int(s) for s in v.get("seeds", ())),
            schedules=tuple(str(s) for s in v.get("schedules", ())),
            max_ulp=float(v.get("max_ulp", 4.0)),
            detail=str(v.get("detail", "")),
        )
        model_label = obj.get("model_label")
        return AdvicePlan(
            loop_id=str(obj["loop_id"]),
            program=str(obj["program"]),
            function=str(obj["function"]),
            line=int(obj["line"]),
            pattern=str(obj["pattern"]),
            advised=bool(obj["advised"]),
            tier=str(obj["tier"]),
            clauses=clauses,
            pragma=obj.get("pragma"),
            static_verdict=str(obj.get("static_verdict", "unknown")),
            static_reasons=tuple(obj.get("static_reasons", ())),
            model_label=None if model_label is None else int(model_label),
            oracle_label=int(obj.get("oracle_label", 0)),
            rationale=str(obj.get("rationale", "")),
            validation=validation,
        )
    except (AttributeError, KeyError, TypeError, ValueError) as exc:
        raise AdvisorError(f"malformed plan wire object: {exc}") from exc


# ---------------------------------------------------------------------------
# Plan construction
# ---------------------------------------------------------------------------


def build_advice_plans(
    program: ast.Program,
    ir_program: IRProgram,
    report: ProfileReport,
    model_verdicts: Optional[Mapping[str, int]] = None,
) -> Dict[str, AdvicePlan]:
    """Fuse verdicts, proofs, and analysis evidence into per-loop plans.

    ``model_verdicts`` maps loop ids to MV-GNN labels
    (:meth:`~repro.runtime.engine.Engine.predict_many` output); loops it
    omits — and every loop when it is None — fall back to the dynamic
    oracle's verdict, with provenance recorded accordingly.  Validation is
    *not* run here; plans come back ``pending`` and
    :func:`repro.advisor.validate.validate_plan` fills the record in.
    """
    patterns = classify_all_patterns(program, ir_program, report)
    statics = static_loop_verdicts(program)
    loops = ir_program.all_loops()

    plans: Dict[str, AdvicePlan] = {}
    for loop_id, result in patterns.items():
        oracle = result.oracle
        info = loops[loop_id]
        static = statics.get(loop_id)
        static_verdict = (
            static.verdict if static is not None else StaticVerdict.UNKNOWN
        )
        static_reasons = tuple(static.reasons) if static is not None else ()
        range_facts = tuple(static.range_facts) if static is not None else ()
        # range-assisted verdicts name their evidence alongside the proof
        static_reasons = static_reasons + tuple(
            f"range: {fact}" for fact in range_facts
        )

        model_label = (
            None if model_verdicts is None else model_verdicts.get(loop_id)
        )
        verdict_parallel = (
            bool(model_label) if model_label is not None else oracle.parallel
        )
        verdict_source = (
            "model:mvgnn" if model_label is not None else "oracle:dynamic"
        )

        if static_verdict is StaticVerdict.PROVABLY_SERIAL:
            tier = TIER_PROVER_REFUTED
        elif static_verdict is StaticVerdict.PROVABLY_PARALLEL:
            tier = TIER_PROVER_CONFIRMED
        else:
            tier = TIER_MODEL_ONLY

        advised = (
            verdict_parallel
            and result.parallelizable
            and tier != TIER_PROVER_REFUTED
        )

        clauses: Tuple[Clause, ...] = ()
        pragma: Optional[str] = None
        if advised:
            clauses = _build_clauses(
                ir_program, loop_id, oracle, verdict_source, tier,
                range_backed=bool(range_facts),
            )
            pragma = render_pragma(
                clause_strings(ir_program, loop_id, oracle)
            )

        if not verdict_parallel:
            rationale = f"{verdict_source} verdict: not parallel"
        elif tier == TIER_PROVER_REFUTED:
            rationale = "prover refuted: " + "; ".join(static_reasons[:1])
        elif not result.parallelizable:
            rationale = (
                f"{verdict_source} says parallel but pattern is "
                f"{result.pattern.value}: not corroborated"
            )
        else:
            rationale = f"{result.pattern.value}: " + "; ".join(
                result.evidence[:1]
            )

        plans[loop_id] = AdvicePlan(
            loop_id=loop_id,
            program=program.name,
            function=info.function,
            line=info.line,
            pattern=result.pattern.value,
            advised=advised,
            tier=tier,
            clauses=clauses,
            pragma=pragma,
            static_verdict=static_verdict.value,
            static_reasons=static_reasons,
            model_label=model_label,
            oracle_label=int(oracle.parallel),
            rationale=rationale,
        )
    return plans


def _build_clauses(
    ir_program: IRProgram,
    loop_id: str,
    oracle,
    verdict_source: str,
    tier: str,
    range_backed: bool = False,
) -> Tuple[Clause, ...]:
    """Clause objects in the same deterministic order as the rendered
    pragma (:func:`repro.analysis.suggestions.clause_strings`)."""
    base_prov = (verdict_source,)
    if tier == TIER_PROVER_CONFIRMED:
        base_prov = base_prov + ("prover:static_dep",)
        if range_backed:
            base_prov = base_prov + ("prover:ranges",)
    clauses: List[Clause] = [Clause("parallel_for", provenance=base_prov)]

    loop_info = ir_program.all_loops()[loop_id]
    fn = ir_program.function(loop_info.function)
    reductions = find_reductions(fn, loop_id)
    for scoped in sorted(oracle.reductions, key=_bare):
        info = reductions.get(scoped)
        clauses.append(Clause(
            "reduction",
            var=_bare(scoped),
            operator=info.operator if info else "+",
            provenance=("analysis:reduction", "oracle:dynamic"),
        ))
    for name in sorted({
        _bare(scoped)
        for scoped in oracle.privatized
        if not _is_inner_induction(ir_program, loop_id, _bare(scoped))
    }):
        clauses.append(Clause(
            "private",
            var=name,
            provenance=("analysis:privatization", "oracle:dynamic"),
        ))
    return tuple(clauses)


def loop_oracle(ir_program: IRProgram, report: ProfileReport, loop_id: str):
    """Convenience: the oracle result the plan builder used for one loop."""
    return classify_loop(ir_program, report, loop_id)
