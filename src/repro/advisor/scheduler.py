"""Simulated parallel interleaving of a transformed advisor program.

Runs the chunk loops produced by :func:`repro.advisor.transform.apply_plan`
as T logical threads over *shared* program state, interleaving them at
memory-access granularity.  Privatization safety comes from the renaming
the transformer performed: each chunk's induction variable, privatized
scalars, and reduction partials are distinct names, so only genuinely
shared accesses (array elements, un-privatized scalars) can race.  A plan
that privatized too little therefore produces a visibly different result
under an interleaved schedule — which is exactly the evidence the
validator wants.

Execution model
---------------

Each chunk runs as a coroutine that yields a ``(phase, shared)`` token
around every scalar/array write: ``("pre", shared)`` after the right-hand
side (and index) has been evaluated but *before* the write commits, and
``("post", shared)`` after it commits.  The pre-token models the classic
lost-update window of a read-modify-write; the post-token is where
another thread can observe a torn protocol (write-then-read-elsewhere).

Two schedule families drive the coroutines:

* ``roundrobin`` — deterministic, systematic: control rotates to the next
  runnable thread after **every committed shared write**.  This is the
  single most race-revealing static schedule for straight-line bodies —
  every shared store is immediately followed by a different thread's
  accesses.
* ``adversarial`` — a seeded ``np.random.default_rng(seed)`` picks
  uniformly among runnable threads at **every** yield point.  Same seed,
  same schedule, same trace — determinism the test suite asserts.

Evaluation semantics mirror :class:`repro.profiler.interpreter.Interpreter`
exactly (Python floats, ``int()`` index truncation, Euclidean ``%``,
non-short-circuit ``&&``/``||``, 1.0/0.0 comparisons, the same clamped
intrinsics, scalars defaulting to 0.0 on first read), so a data-race-free
interleaved run is *bitwise* identical to the sequential interpreter run
modulo the ordered reduction merge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import AdvisorError
from repro.ir import ast_nodes as ast
from repro.profiler.interpreter import _INTRINSICS
from repro.utils.rng import ensure_rng
from repro.advisor.transform import TransformResult

#: yield-token phases
PRE, POST = "pre", "post"

SCHEDULE_ROUNDROBIN = "roundrobin"
SCHEDULE_ADVERSARIAL = "adversarial"
SCHEDULES = (SCHEDULE_ROUNDROBIN, SCHEDULE_ADVERSARIAL)


@dataclass(frozen=True)
class ScheduleSpec:
    """One interleaving policy: a family plus (for adversarial) a seed."""

    kind: str
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in SCHEDULES:
            raise AdvisorError(f"unknown schedule kind {self.kind!r}")
        if self.kind == SCHEDULE_ADVERSARIAL and self.seed is None:
            raise AdvisorError("adversarial schedule requires a seed")

    @property
    def label(self) -> str:
        if self.seed is None:
            return self.kind
        return f"{self.kind}:{self.seed}"


@dataclass
class InterleavedRun:
    """Final state plus the scheduling trace of one interleaved execution."""

    arrays: Dict[str, List[float]]
    scalars: Dict[str, float]
    trace: Tuple[int, ...]       # chunk index advanced at each micro-step
    schedule: str                # ScheduleSpec.label
    return_value: Optional[float] = None


# ---------------------------------------------------------------------------
# Expression evaluation (mirrors the LinearIR interpreter bit for bit)
# ---------------------------------------------------------------------------


def eval_expr(
    expr: ast.Expr,
    scalars: Dict[str, float],
    arrays: Dict[str, List[float]],
) -> float:
    """Evaluate ``expr`` against shared state, interpreter-identically."""
    if isinstance(expr, ast.Const):
        return float(expr.value)
    if isinstance(expr, ast.Var):
        value = scalars.get(expr.name)
        if value is None:
            value = scalars[expr.name] = 0.0
        return value
    if isinstance(expr, ast.Load):
        index = int(eval_expr(expr.index, scalars, arrays))
        array = arrays[expr.array]
        if index < 0 or index >= len(array):
            raise AdvisorError(
                f"load {expr.array}[{index}] out of bounds (size {len(array)})"
            )
        return array[index]
    if isinstance(expr, ast.BinOp):
        lhs = eval_expr(expr.lhs, scalars, arrays)
        rhs = eval_expr(expr.rhs, scalars, arrays)
        op = expr.op
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            if rhs == 0.0:
                raise AdvisorError("division by zero")
            return lhs / rhs
        if op == "%":
            if rhs == 0.0:
                raise AdvisorError("modulo by zero")
            return lhs % rhs
        if op == "min":
            return min(lhs, rhs)
        if op == "max":
            return max(lhs, rhs)
        if op == "<":
            return 1.0 if lhs < rhs else 0.0
        if op == "<=":
            return 1.0 if lhs <= rhs else 0.0
        if op == ">":
            return 1.0 if lhs > rhs else 0.0
        if op == ">=":
            return 1.0 if lhs >= rhs else 0.0
        if op == "==":
            return 1.0 if lhs == rhs else 0.0
        if op == "!=":
            return 1.0 if lhs != rhs else 0.0
        if op == "&&":
            return 1.0 if lhs != 0.0 and rhs != 0.0 else 0.0
        if op == "||":
            return 1.0 if lhs != 0.0 or rhs != 0.0 else 0.0
        raise AdvisorError(f"unhandled binary operator {op!r}")
    if isinstance(expr, ast.UnOp):
        value = eval_expr(expr.operand, scalars, arrays)
        if expr.op == "-":
            return -value
        return 0.0 if value != 0.0 else 1.0
    if isinstance(expr, ast.CallExpr):
        intrinsic = _INTRINSICS.get(expr.fn)
        if intrinsic is None:
            raise AdvisorError(
                f"call to non-intrinsic {expr.fn!r} in scheduled code"
            )
        values = [eval_expr(a, scalars, arrays) for a in expr.args]
        try:
            return float(intrinsic(*values))
        except (ValueError, OverflowError) as exc:
            raise AdvisorError(
                f"intrinsic {expr.fn} failed on {values}: {exc}"
            ) from exc
    raise AdvisorError(f"unhandled expression {type(expr).__name__}")


# ---------------------------------------------------------------------------
# Chunk coroutines
# ---------------------------------------------------------------------------


def _chunk_coroutine(
    chunk,
    scalars: Dict[str, float],
    arrays: Dict[str, List[float]],
) -> Iterator[Tuple[str, bool]]:
    """Run one chunk loop, yielding around every write.

    ``shared`` in the yielded token is False for writes to the chunk's own
    renamed (private) names — those can never race — and True for array
    stores and writes to any other scalar.
    """
    private = set(chunk.private_names)
    loop = chunk.loop
    var = loop.var
    scalars[var] = eval_expr(loop.lo, scalars, arrays)
    while True:
        hi = eval_expr(loop.hi, scalars, arrays)
        if not scalars[var] < hi:
            break
        for stmt in loop.body:
            if isinstance(stmt, ast.Assign):
                value = eval_expr(stmt.expr, scalars, arrays)
                shared = stmt.name not in private
                yield (PRE, shared)
                scalars[stmt.name] = value
                yield (POST, shared)
            elif isinstance(stmt, ast.Store):
                index = int(eval_expr(stmt.index, scalars, arrays))
                value = eval_expr(stmt.expr, scalars, arrays)
                array = arrays[stmt.array]
                if index < 0 or index >= len(array):
                    raise AdvisorError(
                        f"store {stmt.array}[{index}] out of bounds "
                        f"(size {len(array)})"
                    )
                yield (PRE, True)
                array[index] = value
                yield (POST, True)
            else:
                raise AdvisorError(
                    f"non-straight-line statement {type(stmt).__name__} "
                    f"in chunk {chunk.loop.loop_id}"
                )
        step = eval_expr(loop.step, scalars, arrays)
        scalars[var] = scalars[var] + step


def _run_region(
    chunks,
    scalars: Dict[str, float],
    arrays: Dict[str, List[float]],
    spec: ScheduleSpec,
    trace: List[int],
) -> None:
    """Interleave the chunk coroutines under ``spec`` until all finish."""
    threads: Dict[int, Iterator[Tuple[str, bool]]] = {
        c.index: _chunk_coroutine(c, scalars, arrays) for c in chunks
    }
    alive: List[int] = sorted(threads)
    if not alive:
        return

    def advance(tid: int) -> Optional[Tuple[str, bool]]:
        trace.append(tid)
        try:
            return next(threads[tid])
        except StopIteration:
            return None

    if spec.kind == SCHEDULE_ADVERSARIAL:
        rng = np.random.default_rng(spec.seed)
        while alive:
            tid = alive[int(rng.integers(len(alive)))]
            token = advance(tid)
            if token is None:
                alive.remove(tid)
    else:
        # systematic round-robin: keep running one thread until it commits
        # a shared write, then hand control to the next runnable thread
        pos = 0
        while alive:
            tid = alive[pos % len(alive)]
            while True:
                token = advance(tid)
                if token is None:
                    pos = alive.index(tid)
                    alive.remove(tid)
                    break
                phase, shared = token
                if phase == POST and shared:
                    pos = alive.index(tid) + 1
                    break


# ---------------------------------------------------------------------------
# Sequential statements outside the parallel region
# ---------------------------------------------------------------------------


class _ReturnSignal(Exception):
    """Internal: a top-level Return ends the entry function."""

    def __init__(self, value: float) -> None:
        super().__init__(value)
        self.value = value


class _BreakSignal(Exception):
    """Internal: Break unwinds to the innermost enclosing loop."""


def _exec_seq(
    stmt: ast.Stmt,
    scalars: Dict[str, float],
    arrays: Dict[str, List[float]],
) -> None:
    if isinstance(stmt, ast.Assign):
        scalars[stmt.name] = eval_expr(stmt.expr, scalars, arrays)
    elif isinstance(stmt, ast.Store):
        index = int(eval_expr(stmt.index, scalars, arrays))
        value = eval_expr(stmt.expr, scalars, arrays)
        array = arrays[stmt.array]
        if index < 0 or index >= len(array):
            raise AdvisorError(
                f"store {stmt.array}[{index}] out of bounds (size {len(array)})"
            )
        array[index] = value
    elif isinstance(stmt, ast.For):
        scalars[stmt.var] = eval_expr(stmt.lo, scalars, arrays)
        try:
            while scalars[stmt.var] < eval_expr(stmt.hi, scalars, arrays):
                for inner in stmt.body:
                    _exec_seq(inner, scalars, arrays)
                scalars[stmt.var] = scalars[stmt.var] + eval_expr(
                    stmt.step, scalars, arrays
                )
        except _BreakSignal:
            pass
    elif isinstance(stmt, ast.If):
        branch = (
            stmt.then_body
            if eval_expr(stmt.cond, scalars, arrays) != 0.0
            else stmt.else_body
        )
        for inner in branch:
            _exec_seq(inner, scalars, arrays)
    elif isinstance(stmt, ast.While):
        try:
            while eval_expr(stmt.cond, scalars, arrays) != 0.0:
                for inner in stmt.body:
                    _exec_seq(inner, scalars, arrays)
        except _BreakSignal:
            pass
    elif isinstance(stmt, ast.Return):
        raise _ReturnSignal(eval_expr(stmt.expr, scalars, arrays))
    elif isinstance(stmt, ast.Break):
        raise _BreakSignal()
    else:
        raise AdvisorError(
            f"statement {type(stmt).__name__} not supported outside the "
            "parallel region"
        )


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def run_interleaved(
    result: TransformResult,
    spec: ScheduleSpec,
    array_rng=0,
) -> InterleavedRun:
    """Execute a transformed program with its chunk region interleaved.

    Everything outside the chunk loops runs sequentially with
    interpreter-identical semantics; the chunk loops run as logical
    threads under ``spec``.  ``array_rng`` seeds array initialization
    exactly like the interpreter, so results are directly comparable.
    """
    program = result.program
    rng = ensure_rng(array_rng)
    arrays: Dict[str, List[float]] = {
        name: list(rng.random(size)) for name, size in program.arrays.items()
    }
    scalars: Dict[str, float] = {}
    trace: List[int] = []
    chunk_loops = {id(c.loop): c for c in result.chunks}

    entry = program.functions[program.entry]
    body = list(entry.body)
    i = 0
    ran_region = False
    return_value: Optional[float] = None
    while i < len(body):
        stmt = body[i]
        if id(stmt) in chunk_loops:
            # the consecutive run of chunk loops is one parallel region
            region = []
            while i < len(body) and id(body[i]) in chunk_loops:
                region.append(chunk_loops[id(body[i])])
                i += 1
            _run_region(region, scalars, arrays, spec, trace)
            ran_region = True
        else:
            try:
                _exec_seq(stmt, scalars, arrays)
            except _ReturnSignal as sig:
                return_value = sig.value
                break
            i += 1
    if result.chunks and not ran_region:
        raise AdvisorError(
            f"chunk loops of {result.loop_id} not found at the top level of "
            f"entry function {program.entry!r}"
        )
    return InterleavedRun(
        arrays=arrays,
        scalars=scalars,
        trace=tuple(trace),
        schedule=spec.label,
        return_value=return_value,
    )
