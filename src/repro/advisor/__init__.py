"""Execution-validated parallelization advisor.

Fuses three verdict sources — the MV-GNN model, the ``static_dep``
prover, and the dynamic oracle's reduction/privatization evidence — into
typed :class:`AdvicePlan` objects, applies each plan to the MiniC AST as
an explicit chunked transformation, and *proves or refutes* the plan by
running the transformed loop under simulated adversarial interleavings
(see docs/ADVISOR.md).
"""

from repro.advisor.plan import (
    AdvicePlan,
    Clause,
    ValidationRecord,
    TIER_MODEL_ONLY,
    TIER_PROVER_CONFIRMED,
    TIER_PROVER_REFUTED,
    TIERS,
    VALIDATION_PENDING,
    VALIDATION_REFUTED,
    VALIDATION_UNVALIDATED,
    VALIDATION_VALIDATED,
    build_advice_plans,
    plan_from_wire,
)
from repro.advisor.transform import (
    Chunk,
    TransformResult,
    apply_plan,
    chunk_ranges,
    clone_program,
    concrete_bounds,
    find_loop,
)
from repro.advisor.scheduler import (
    InterleavedRun,
    SCHEDULE_ADVERSARIAL,
    SCHEDULE_ROUNDROBIN,
    SCHEDULES,
    ScheduleSpec,
    run_interleaved,
)
from repro.advisor.validate import (
    DEFAULT_MAX_ULP,
    DEFAULT_SEEDS,
    DEFAULT_THREADS,
    KernelSpec,
    bitwise_equal,
    build_kernel,
    compare_states,
    ulp_diff,
    validate_plan,
)
from repro.advisor.driver import (
    AppAdvice,
    SelfCheckResult,
    advise_app,
    advise_program,
    build_privatization_demo,
    build_racy_demo,
    build_reduction_demo,
    render_table,
    self_check,
)

__all__ = [
    "AdvicePlan", "Clause", "ValidationRecord",
    "TIER_MODEL_ONLY", "TIER_PROVER_CONFIRMED", "TIER_PROVER_REFUTED",
    "TIERS",
    "VALIDATION_PENDING", "VALIDATION_REFUTED", "VALIDATION_UNVALIDATED",
    "VALIDATION_VALIDATED",
    "build_advice_plans", "plan_from_wire",
    "Chunk", "TransformResult", "apply_plan", "chunk_ranges",
    "clone_program", "concrete_bounds", "find_loop",
    "InterleavedRun", "SCHEDULE_ADVERSARIAL", "SCHEDULE_ROUNDROBIN",
    "SCHEDULES", "ScheduleSpec", "run_interleaved",
    "DEFAULT_MAX_ULP", "DEFAULT_SEEDS", "DEFAULT_THREADS",
    "KernelSpec", "bitwise_equal", "build_kernel", "compare_states",
    "ulp_diff", "validate_plan",
    "AppAdvice", "SelfCheckResult", "advise_app", "advise_program",
    "build_privatization_demo", "build_racy_demo", "build_reduction_demo",
    "render_table", "self_check",
]
