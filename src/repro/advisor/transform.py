"""Apply an :class:`~repro.advisor.plan.AdvicePlan` to a MiniC program.

The transformation makes the plan's parallelism *explicit in the AST*:
the advised loop is split into T contiguous iteration chunks (one per
logical thread), each chunk gets its own renamed induction variable,
per-chunk copies of every privatized scalar (initialized from the shared
value, so a *wrongly* privatized read-first scalar still diverges under
interleaving), and per-chunk reduction partials initialized to the
operator identity.  After the chunks an ordered merge folds the partials
into the shared accumulator in chunk order, live-out privatized scalars
copy back from the last executing chunk, and the induction variable gets
its sequential exit value.

The transformed program is still a plain MiniC :class:`Program`: it
round-trips through :mod:`repro.ir.source_printer`, lowers through
:mod:`repro.ir.lowering`, and runs on the stock interpreter — running it
*sequentially* must reproduce the original program's outputs (bitwise,
modulo reduction reassociation), which the validator checks before any
interleaving runs.  The chunk structure is what the simulated
interleaving scheduler (:mod:`repro.advisor.scheduler`) executes in
parallel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import AdvisorError
from repro.ir import ast_nodes as ast
from repro.advisor.plan import AdvicePlan

#: reduction operator -> identity element for the per-chunk partial
REDUCTION_IDENTITY = {
    "+": 0.0,
    "-": 0.0,           # "-" accumulates into the "+" class (s = s - x)
    "*": 1.0,
    "min": math.inf,
    "max": -math.inf,
}


@dataclass(frozen=True)
class Chunk:
    """One logical thread's slice of the iteration space."""

    index: int
    lo: int                       # first induction value of the chunk
    hi: int                       # exclusive bound (chunk loop condition)
    trips: int
    loop: ast.For                 # the renamed chunk loop
    rename: Dict[str, str]        # original scalar -> thread-local name

    @property
    def private_names(self) -> Tuple[str, ...]:
        return tuple(self.rename.values())


@dataclass
class TransformResult:
    """The transformed program plus the structure the scheduler needs."""

    program: ast.Program
    loop_id: str
    threads: int
    chunks: List[Chunk]           # non-empty chunks, in iteration order
    pre_stmts: List[ast.Stmt]     # privatized/partial initialization
    post_stmts: List[ast.Stmt]    # ordered merge + copy-back + exit value


# ---------------------------------------------------------------------------
# AST cloning / renaming (exprs are frozen and shareable; stmts are not)
# ---------------------------------------------------------------------------


def rename_expr(expr: ast.Expr, rename: Dict[str, str]) -> ast.Expr:
    """Rebuild ``expr`` with scalar reads renamed per ``rename``."""
    if isinstance(expr, ast.Var):
        new = rename.get(expr.name)
        return ast.Var(new) if new is not None else expr
    if isinstance(expr, ast.Load):
        return ast.Load(expr.array, rename_expr(expr.index, rename))
    if isinstance(expr, ast.BinOp):
        return ast.BinOp(
            expr.op,
            rename_expr(expr.lhs, rename),
            rename_expr(expr.rhs, rename),
        )
    if isinstance(expr, ast.UnOp):
        return ast.UnOp(expr.op, rename_expr(expr.operand, rename))
    if isinstance(expr, ast.CallExpr):
        return ast.CallExpr(
            expr.fn, tuple(rename_expr(a, rename) for a in expr.args)
        )
    return expr  # Const


def clone_stmt(stmt: ast.Stmt, rename: Optional[Dict[str, str]] = None) -> ast.Stmt:
    """Deep-copy one statement, optionally renaming scalars throughout."""
    r = rename or {}
    if isinstance(stmt, ast.Assign):
        return ast.Assign(
            r.get(stmt.name, stmt.name), rename_expr(stmt.expr, r), stmt.line
        )
    if isinstance(stmt, ast.Store):
        return ast.Store(
            stmt.array, rename_expr(stmt.index, r),
            rename_expr(stmt.expr, r), stmt.line,
        )
    if isinstance(stmt, ast.For):
        return ast.For(
            var=r.get(stmt.var, stmt.var),
            lo=rename_expr(stmt.lo, r),
            hi=rename_expr(stmt.hi, r),
            body=[clone_stmt(s, rename) for s in stmt.body],
            step=rename_expr(stmt.step, r),
            loop_id=stmt.loop_id,
            line=stmt.line,
        )
    if isinstance(stmt, ast.While):
        return ast.While(
            rename_expr(stmt.cond, r),
            [clone_stmt(s, rename) for s in stmt.body], stmt.line,
        )
    if isinstance(stmt, ast.If):
        return ast.If(
            rename_expr(stmt.cond, r),
            [clone_stmt(s, rename) for s in stmt.then_body],
            [clone_stmt(s, rename) for s in stmt.else_body],
            stmt.line,
        )
    if isinstance(stmt, ast.CallStmt):
        return ast.CallStmt(
            stmt.fn, tuple(rename_expr(a, r) for a in stmt.args), stmt.line
        )
    if isinstance(stmt, ast.Return):
        return ast.Return(
            rename_expr(stmt.expr, r) if stmt.expr is not None else None,
            stmt.line,
        )
    if isinstance(stmt, ast.Break):
        return ast.Break(stmt.line)
    raise AdvisorError(f"cannot clone statement {type(stmt).__name__}")


def clone_program(program: ast.Program) -> ast.Program:
    """Deep-copy a program (statement-level; frozen exprs are shared)."""
    return ast.Program(
        functions={
            name: ast.Function(
                fn.name, fn.params, [clone_stmt(s) for s in fn.body]
            )
            for name, fn in program.functions.items()
        },
        arrays=dict(program.arrays),
        entry=program.entry,
        name=program.name,
    )


# ---------------------------------------------------------------------------
# Eligibility checks
# ---------------------------------------------------------------------------


def concrete_bounds(loop: ast.For) -> Optional[Tuple[int, int, int]]:
    """(lo, hi, step) when all three are integer constants with step > 0.

    The public twin of the prover's internal iteration-space check: the
    transformer chunks the iteration space at plan-application time, so
    symbolic bounds are out of scope (the plan stays ``unvalidated``).
    """
    vals = []
    for e in (loop.lo, loop.hi, loop.step):
        if not isinstance(e, ast.Const) or not float(e.value).is_integer():
            return None
        vals.append(int(e.value))
    lo, hi, step = vals
    if step <= 0:
        return None
    return lo, hi, step


def straight_line_reason(loop: ast.For) -> Optional[str]:
    """Why ``loop`` cannot be transformed, or None when it can.

    The transformer handles straight-line bodies (``Assign``/``Store``
    with intrinsic-only calls) — the same restriction the static prover
    applies, because both need a closed-form view of every iteration.
    """
    for stmt in loop.body:
        if isinstance(stmt, ast.Assign):
            if stmt.name == loop.var:
                return "body assigns the induction variable"
        elif not isinstance(stmt, ast.Store):
            return f"non-straight-line statement {type(stmt).__name__}"
        for expr in ast.stmt_exprs(stmt):
            for node in ast.walk_exprs(expr):
                if isinstance(node, ast.CallExpr) and not node.is_intrinsic:
                    return f"call to non-intrinsic {node.fn!r}"
    return None


def find_loop(program: ast.Program, loop_id: str) -> Tuple[str, ast.For]:
    """(function name, For node) for ``loop_id``; raises when absent."""
    for name, fn in program.functions.items():
        for stmt in ast.walk_stmts(fn.body):
            if isinstance(stmt, ast.For) and stmt.loop_id == loop_id:
                return name, stmt
    raise AdvisorError(
        f"program {program.name!r} has no loop {loop_id!r}"
    )


# ---------------------------------------------------------------------------
# The transformation
# ---------------------------------------------------------------------------


def chunk_ranges(lo: int, hi: int, step: int, threads: int) -> List[Tuple[int, int, int]]:
    """Balanced contiguous (chunk_lo, chunk_hi, trips) per thread.

    Iteration i takes value ``lo + i*step``; thread k receives a
    contiguous run of iterations, earlier threads one extra when the trip
    count does not divide evenly — OpenMP static scheduling.  Empty
    chunks are omitted.
    """
    trips = max(0, -(-(hi - lo) // step))
    base, extra = divmod(trips, threads)
    out: List[Tuple[int, int, int]] = []
    start = 0
    for k in range(threads):
        size = base + (1 if k < extra else 0)
        if size <= 0:
            continue
        end = start + size
        out.append((lo + start * step, lo + end * step, size))
        start = end
    return out


def apply_plan(
    program: ast.Program, plan: AdvicePlan, threads: int
) -> TransformResult:
    """Clone ``program`` with the plan's loop split into ``threads`` chunks.

    Raises :class:`AdvisorError` when the loop is ineligible (symbolic
    bounds, non-straight-line body, unknown reduction operator) — the
    validator reports those as ``unvalidated`` rather than guessing.
    """
    if threads < 1:
        raise AdvisorError(f"threads must be >= 1, got {threads}")
    cloned = clone_program(program)
    fn_name, loop = find_loop(cloned, plan.loop_id)
    reason = straight_line_reason(loop)
    if reason is not None:
        raise AdvisorError(f"{plan.loop_id}: {reason}")
    bounds = concrete_bounds(loop)
    if bounds is None:
        raise AdvisorError(
            f"{plan.loop_id}: non-constant iteration space"
        )
    lo, hi, step = bounds
    trips = max(0, -(-(hi - lo) // step))

    reduction_ops = plan.reduction_ops
    for var, op in reduction_ops.items():
        if op not in REDUCTION_IDENTITY:
            raise AdvisorError(
                f"{plan.loop_id}: unknown reduction operator {op!r} on {var!r}"
            )
    private_vars = tuple(plan.private_vars)

    pre_stmts: List[ast.Stmt] = []
    post_stmts: List[ast.Stmt] = []
    chunks: List[Chunk] = []
    for k, (clo, chi, csize) in enumerate(chunk_ranges(lo, hi, step, threads)):
        rename: Dict[str, str] = {loop.var: f"{loop.var}__t{k}"}
        for var in private_vars:
            rename[var] = f"{var}__t{k}"
        for var in reduction_ops:
            rename[var] = f"{var}__r{k}"
        chunk_loop = ast.For(
            var=rename[loop.var],
            lo=ast.Const(float(clo)),
            hi=ast.Const(float(chi)),
            body=[clone_stmt(s, rename) for s in loop.body],
            step=ast.Const(float(step)),
            loop_id=f"{plan.loop_id}@t{k}",
            line=loop.line,
        )
        # privatized copies start from the shared value (firstprivate
        # semantics): harmless for write-first scalars, and it makes a
        # wrongly privatized read-first scalar visibly diverge instead of
        # accidentally matching the sequential run
        for var in private_vars:
            pre_stmts.append(ast.Assign(rename[var], ast.Var(var), loop.line))
        for var, op in reduction_ops.items():
            pre_stmts.append(ast.Assign(
                rename[var], ast.Const(REDUCTION_IDENTITY[op]), loop.line
            ))
        chunks.append(Chunk(
            index=k, lo=clo, hi=chi, trips=csize,
            loop=chunk_loop, rename=rename,
        ))

    # ordered reduction merge: partials fold into the shared accumulator
    # in chunk (= iteration) order, so the reassociation is deterministic
    for var, op in reduction_ops.items():
        for chunk in chunks:
            partial = ast.Var(chunk.rename[var])
            if op in ("+", "-"):
                merged = ast.BinOp("+", ast.Var(var), partial)
            else:
                merged = ast.BinOp(op, ast.Var(var), partial)
            post_stmts.append(ast.Assign(var, merged, loop.line))
    # live-out privatized scalars take the last chunk's final value (the
    # sequential last iteration lives there); straight-line bodies write
    # them on every iteration, so the copy-back is well-defined
    if chunks:
        last = chunks[-1]
        for var in private_vars:
            post_stmts.append(ast.Assign(
                var, ast.Var(last.rename[var]), loop.line
            ))
    # the induction variable's sequential exit value
    post_stmts.append(ast.Assign(
        loop.var, ast.Const(float(lo + trips * step)), loop.line
    ))

    replacement: List[ast.Stmt] = (
        list(pre_stmts) + [c.loop for c in chunks] + list(post_stmts)
    )
    _replace_stmt(cloned.functions[fn_name].body, loop, replacement)
    return TransformResult(
        program=cloned,
        loop_id=plan.loop_id,
        threads=threads,
        chunks=chunks,
        pre_stmts=pre_stmts,
        post_stmts=post_stmts,
    )


def _replace_stmt(
    body: List[ast.Stmt], target: ast.Stmt, replacement: List[ast.Stmt]
) -> bool:
    """Splice ``replacement`` in place of ``target`` wherever it nests."""
    for i, stmt in enumerate(body):
        if stmt is target:
            body[i:i + 1] = replacement
            return True
        if isinstance(stmt, ast.For) or isinstance(stmt, ast.While):
            if _replace_stmt(stmt.body, target, replacement):
                return True
        elif isinstance(stmt, ast.If):
            if _replace_stmt(stmt.then_body, target, replacement):
                return True
            if _replace_stmt(stmt.else_body, target, replacement):
                return True
    return False
