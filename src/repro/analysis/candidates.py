"""Shared enumeration of parallelization-candidate loops.

Every consumer that walks a MiniC program looking for ``For`` loops to
analyze — pattern classification (:mod:`repro.analysis.patterns`), pragma
suggestion (:mod:`repro.analysis.suggestions`), the static dependence
prover behind lint DS005 (:mod:`repro.lint.static_dep`), and the
execution-validated advisor (:mod:`repro.advisor`) — must agree on which
loops exist and which induction variables enclose each of them.  Before
this module each walked the AST with its own recursion; a divergence
(e.g. one walker forgetting loops under ``If`` arms) would silently give
two layers different loop universes.  Now they all iterate one generator.

Candidates are yielded in pre-order (outer loops before their children),
per function in program declaration order — the same order loop ids are
allocated by the builder, so reports keyed by candidate order are stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from repro.ir import ast_nodes as ast


@dataclass(frozen=True)
class CandidateLoop:
    """One ``For`` loop eligible for parallelization analysis.

    ``enclosing`` lists the induction variables of the loops *around* this
    one (outermost first) — loop-invariant symbols during one execution of
    the candidate, which the static prover and the advisor's kernel
    harness both need.
    """

    function: str
    loop: ast.For
    enclosing: Tuple[str, ...]

    @property
    def loop_id(self) -> str:
        return self.loop.loop_id  # callers filter anonymous loops upstream


def iter_parallel_candidate_loops(
    program: ast.Program,
) -> Iterator[CandidateLoop]:
    """Yield every ``For`` loop of ``program`` that carries a ``loop_id``.

    Loops without an id cannot be matched to samples, oracle results, or
    stored plans, so they are skipped (their *children* are still visited;
    an anonymous wrapper must not hide labeled inner loops).
    """
    for fn in program.functions.values():
        yield from _walk(fn.name, fn.body, ())


def _walk(
    fn_name: str, body: Sequence[ast.Stmt], enclosing: Tuple[str, ...]
) -> Iterator[CandidateLoop]:
    for stmt in body:
        if isinstance(stmt, ast.For):
            if stmt.loop_id is not None:
                yield CandidateLoop(fn_name, stmt, enclosing)
            yield from _walk(fn_name, stmt.body, enclosing + (stmt.var,))
        elif isinstance(stmt, ast.While):
            yield from _walk(fn_name, stmt.body, enclosing)
        elif isinstance(stmt, ast.If):
            yield from _walk(fn_name, stmt.then_body, enclosing)
            yield from _walk(fn_name, stmt.else_body, enclosing)
