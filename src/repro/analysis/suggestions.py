"""OpenMP pragma suggestions — the end-user artifact DiscoPoP emits.

Turns a pattern classification plus the oracle's variable evidence into a
ready-to-paste ``#pragma omp`` line per parallelizable loop, with
``reduction(op: var)`` and ``private(var)`` clauses filled in, mirroring
DiscoPoP's "automatic construct selection and variable classification"
(Norouzi et al., ICS 2019 — reference [25] of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.oracle import classify_loop
from repro.analysis.patterns import (
    ParallelPattern,
    PatternResult,
    classify_all_patterns,
)
from repro.analysis.reduction import find_reductions
from repro.ir.ast_nodes import Program
from repro.ir.linear import IRProgram
from repro.profiler.report import ProfileReport


@dataclass
class Suggestion:
    """One loop's parallelization suggestion."""

    loop_id: str
    line: int                    # source line of the For statement
    pattern: ParallelPattern
    pragma: Optional[str]        # None when not parallelizable
    rationale: str

    def render(self) -> str:
        if self.pragma is None:
            return f"line {self.line:4d}: (sequential) {self.rationale}"
        return f"line {self.line:4d}: {self.pragma}   // {self.rationale}"


def _bare(scoped: str) -> str:
    return scoped.split("::", 1)[-1]


def clause_strings(
    ir_program: IRProgram, loop_id: str, oracle
) -> List[str]:
    """Deterministically ordered OpenMP clauses for one parallel loop.

    Ordering contract (advisor plan goldens and pragma output depend on
    it): every ``reduction(op: var)`` clause first, sorted by bare
    accumulator name, then at most one ``private(...)`` clause whose
    variable list is sorted and deduplicated.  Shared between
    :func:`suggest_for_loop` and :func:`repro.advisor.plan.build_advice_plans`
    so the CLI suggestion text and the advisor's rendered pragma can never
    drift apart.
    """
    clauses: List[str] = []
    if oracle.reductions:
        loop_info = ir_program.all_loops()[loop_id]
        fn = ir_program.function(loop_info.function)
        reductions = find_reductions(fn, loop_id)
        for scoped in sorted(oracle.reductions, key=_bare):
            info = reductions.get(scoped)
            operator = info.operator if info else "+"
            clauses.append(f"reduction({operator}: {_bare(scoped)})")
    private = sorted({
        _bare(scoped)
        for scoped in oracle.privatized
        if not _is_inner_induction(ir_program, loop_id, _bare(scoped))
    })
    if private:
        clauses.append(f"private({', '.join(private)})")
    return clauses


def render_pragma(clauses: List[str]) -> str:
    """``#pragma omp parallel for`` plus the (already ordered) clauses."""
    pragma = "#pragma omp parallel for"
    if clauses:
        pragma += " " + " ".join(clauses)
    return pragma


def suggest_for_loop(
    program: Program,
    ir_program: IRProgram,
    report: ProfileReport,
    result: PatternResult,
) -> Suggestion:
    loop_info = ir_program.all_loops()[result.loop_id]
    oracle = result.oracle

    if not result.parallelizable:
        rationale = (
            "pipeline-parallelizable (wavefront), not DoALL"
            if result.pattern is ParallelPattern.PIPELINE
            else "; ".join(oracle.blockers[:2]) or "carried dependences"
        )
        return Suggestion(
            loop_id=result.loop_id,
            line=loop_info.line,
            pattern=result.pattern,
            pragma=None,
            rationale=rationale,
        )

    pragma = render_pragma(clause_strings(ir_program, result.loop_id, oracle))
    rationale = f"{result.pattern.value}: {'; '.join(result.evidence[:1])}"
    return Suggestion(
        loop_id=result.loop_id,
        line=loop_info.line,
        pattern=result.pattern,
        pragma=pragma,
        rationale=rationale,
    )


def _is_inner_induction(
    ir_program: IRProgram, loop_id: str, var: str
) -> bool:
    """Inner-loop counters are implicitly private in OpenMP for-loops."""
    for info in ir_program.all_loops().values():
        if info.parent == loop_id and info.var == var:
            return True
        # deeper descendants too
        parent = info.parent
        while parent is not None:
            if parent == loop_id and info.var == var:
                return True
            parent = ir_program.all_loops()[parent].parent
    return False


def suggest_parallelization(
    program: Program, ir_program: IRProgram, report: ProfileReport
) -> Dict[str, Suggestion]:
    """Pragma suggestions for every For loop, keyed by loop id."""
    patterns = classify_all_patterns(program, ir_program, report)
    return {
        loop_id: suggest_for_loop(program, ir_program, report, result)
        for loop_id, result in patterns.items()
    }


def render_report(suggestions: Dict[str, Suggestion]) -> str:
    """Human-readable suggestion listing, ordered by source line."""
    ordered = sorted(suggestions.values(), key=lambda s: s.line)
    return "\n".join(s.render() for s in ordered)
