"""Loop analysis: Table I features, reduction/privatization recognition, and
the ground-truth parallelizability oracle."""

from repro.analysis.critical_path import critical_path_length, dependence_dag
from repro.analysis.reduction import ReductionInfo, find_reductions
from repro.analysis.privatization import privatizable_scalars
from repro.analysis.oracle import OracleResult, classify_loop, classify_all_loops
from repro.analysis.features import (
    LoopFeatures,
    attach_node_features,
    loop_features,
    FEATURE_NAMES,
)
from repro.analysis.patterns import (
    ParallelPattern,
    PatternResult,
    classify_pattern,
    classify_all_patterns,
)
from repro.analysis.suggestions import (
    Suggestion,
    clause_strings,
    render_pragma,
    suggest_parallelization,
    render_report,
)
from repro.analysis.candidates import (
    CandidateLoop,
    iter_parallel_candidate_loops,
)
from repro.analysis.ranges import (
    RANGE_ANALYSIS_VERSION,
    Interval,
    ProgramRanges,
    analyze_program,
    check_soundness,
    harvest_enclosing_bounds,
)

__all__ = [
    "critical_path_length", "dependence_dag",
    "ReductionInfo", "find_reductions",
    "privatizable_scalars",
    "OracleResult", "classify_loop", "classify_all_loops",
    "LoopFeatures", "attach_node_features", "loop_features", "FEATURE_NAMES",
    "ParallelPattern", "PatternResult", "classify_pattern",
    "classify_all_patterns",
    "Suggestion", "clause_strings", "render_pragma",
    "suggest_parallelization", "render_report",
    "CandidateLoop", "iter_parallel_candidate_loops",
    "RANGE_ANALYSIS_VERSION", "Interval", "ProgramRanges",
    "analyze_program", "check_soundness", "harvest_enclosing_bounds",
]
