"""Ground-truth parallelizability oracle.

Decides DoALL parallelizability of each loop from the exact dynamic
dependence profile plus reduction/privatization recognition:

* dependences on the loop's own induction variable are ignored (it becomes
  the parallel loop index);
* carried RAW on a recognized scalar reduction accumulator is allowed
  (OpenMP ``reduction`` clause);
* carried WAR/WAW on scalars without carried RAW is allowed (``private``);
* any other carried dependence — flow dependences on arrays, unrecognized
  scalar recurrences, array WAR/WAW — blocks parallelization.

This is the labeling function the dataset pipeline uses where the original
benchmarks' OpenMP annotations are the paper's ground truth; the tool
baselines in :mod:`repro.tools` are deliberately *imperfect* approximations
of this oracle, mirroring the accuracy gaps in Table III.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import ProfilingError
from repro.ir.linear import IRProgram
from repro.analysis.privatization import privatizable_scalars
from repro.analysis.reduction import find_reductions
from repro.profiler.report import DepKind, ProfileReport


@dataclass
class OracleResult:
    """Classification of one loop with supporting evidence."""

    loop_id: str
    parallel: bool
    executed: bool                       # loop body actually ran
    blockers: List[str] = field(default_factory=list)
    reductions: List[str] = field(default_factory=list)
    privatized: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.parallel


def classify_loop(
    program: IRProgram,
    report: ProfileReport,
    loop_id: str,
    allowed_reduction_ops: Optional[Set[str]] = None,
) -> OracleResult:
    """Classify one loop; raises if the loop id is unknown.

    ``allowed_reduction_ops`` restricts which reduction operators are
    recognized (tools model their gaps with it — e.g. DiscoPoP's classic
    recognizer covers ``+``/``*`` but not ``min``/``max``); None = all.
    """
    loops = program.all_loops()
    if loop_id not in loops:
        raise ProfilingError(f"unknown loop {loop_id!r} in {program.name!r}")
    info = loops[loop_id]
    fn = program.function(info.function)
    stats = report.loop_stats.get(loop_id)
    executed = stats is not None and stats.total_iterations > 0

    reductions = find_reductions(fn, loop_id)
    if allowed_reduction_ops is not None:
        reductions = {
            sym: red
            for sym, red in reductions.items()
            if red.operator in allowed_reduction_ops
        }
    array_names = set(program.arrays)
    private = privatizable_scalars(report, loop_id, array_names)

    own_induction = f"{info.function}::{info.var}" if info.var else None
    blockers: List[str] = []
    used_reductions: Set[str] = set()
    used_private: Set[str] = set()

    for symbol, kinds in report.symbols_carried_by(loop_id).items():
        if symbol == own_induction:
            continue
        is_scalar = symbol not in array_names
        if DepKind.RAW in kinds:
            if is_scalar and symbol in reductions:
                used_reductions.add(symbol)
                continue
            blockers.append(f"carried RAW on {symbol}")
        else:
            if is_scalar and symbol in private:
                used_private.add(symbol)
                continue
            kind_names = ",".join(sorted(k.value for k in kinds))
            blockers.append(f"carried {kind_names} on {symbol}")

    return OracleResult(
        loop_id=loop_id,
        parallel=not blockers,
        executed=executed,
        blockers=blockers,
        reductions=sorted(used_reductions),
        privatized=sorted(used_private),
    )


def classify_all_loops(
    program: IRProgram, report: ProfileReport
) -> Dict[str, OracleResult]:
    """Classify every loop of ``program``."""
    return {
        loop_id: classify_loop(program, report, loop_id)
        for loop_id in program.all_loops()
    }
