"""Critical path length (CFL) of a loop's dependence graph.

The CFL is the length of the longest chain of dependent instructions inside
one iteration of the loop — the serial core that bounds the speedup any
parallelization can achieve (Kremlin's "self-parallelism" uses the same
quantity).  We build a DAG over the loop's instructions from

* register def-use edges within basic blocks, and
* loop-independent RAW memory dependences observed by the profiler,

and take the longest path (unit instruction weights).  Carried dependences
are excluded — they relate *different* iterations and would create cycles in
the per-iteration view.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.ir.linear import IRFunction, Opcode, Reg
from repro.profiler.report import DepKind, InstrKey, ProfileReport
from repro.profiler.static_info import loop_block_sets

_PSEUDO = {Opcode.LOOPENTER, Opcode.LOOPNEXT, Opcode.LOOPEXIT}


def dependence_dag(
    fn: IRFunction, loop_id: str, report: ProfileReport
) -> Tuple[List[InstrKey], Dict[InstrKey, List[InstrKey]]]:
    """Nodes and forward adjacency of the per-iteration dependence DAG."""
    blocks = loop_block_sets(fn).get(loop_id, set())
    nodes: List[InstrKey] = []
    node_set: Set[InstrKey] = set()
    adj: Dict[InstrKey, List[InstrKey]] = {}
    for block in fn.blocks:
        if block.label not in blocks:
            continue
        reg_def: Dict[str, InstrKey] = {}
        for instr in block.instrs:
            if instr.opcode in _PSEUDO:
                continue
            key = (fn.name, instr.iid)
            nodes.append(key)
            node_set.add(key)
            adj.setdefault(key, [])
            for op in instr.operands:
                if isinstance(op, Reg):
                    src = reg_def.get(op.name)
                    if src is not None:
                        adj.setdefault(src, []).append(key)
            if instr.result is not None:
                reg_def[instr.result.name] = key
    # loop-independent RAW memory dependences inside the loop
    for (src, dst, kind), dep in report.deps.items():
        if kind is not DepKind.RAW or dep.independent == 0:
            continue
        if src in node_set and dst in node_set and src != dst:
            adj[src].append(dst)
    return nodes, adj


def critical_path_length(
    fn: IRFunction, loop_id: str, report: ProfileReport
) -> int:
    """Longest dependence chain (in instructions) within one loop iteration."""
    nodes, adj = dependence_dag(fn, loop_id, report)
    if not nodes:
        return 0
    # Longest path via DFS with memoization; cycles (possible when aggregated
    # loop-independent deps from different control paths disagree) are broken
    # by ignoring back edges to nodes on the current stack.
    memo: Dict[InstrKey, int] = {}
    on_stack: Set[InstrKey] = set()

    order: List[Tuple[InstrKey, int]] = []

    def depth(key: InstrKey) -> int:
        cached = memo.get(key)
        if cached is not None:
            return cached
        # iterative DFS to avoid recursion limits on long blocks
        stack: List[Tuple[InstrKey, int]] = [(key, 0)]
        while stack:
            node, state = stack[-1]
            if state == 0:
                if node in memo:
                    stack.pop()
                    continue
                on_stack.add(node)
                stack[-1] = (node, 1)
                for succ in adj.get(node, ()):
                    if succ not in memo and succ not in on_stack:
                        stack.append((succ, 0))
            else:
                best = 0
                for succ in adj.get(node, ()):
                    if succ in memo:
                        best = max(best, memo[succ])
                memo[node] = 1 + best
                on_stack.discard(node)
                stack.pop()
        return memo[key]

    return max(depth(node) for node in nodes)


def graph_width(
    fn: IRFunction, loop_id: str, report: ProfileReport
) -> float:
    """Mean available parallelism of the per-iteration DAG: work / CFL."""
    nodes, _ = dependence_dag(fn, loop_id, report)
    cfl = critical_path_length(fn, loop_id, report)
    if cfl == 0:
        return 0.0
    return len(nodes) / cfl
