"""Parallel-pattern classification (the paper's first future-work item).

"Modifying our resulting classification to specify distinct parallel
patterns.  By classifying the type of parallelism present in a region,
parallelism frameworks can improve generated parallel code."

Beyond the binary label, this module assigns each loop one of the classic
algorithm-structure patterns (Huda et al., IPDPS 2016 — the DiscoPoP
pattern-detection line of work):

=============  ==============================================================
DOALL          independent iterations, no carried dependences of interest
REDUCTION      parallel after privatizing recognized accumulators
STENCIL        DoALL whose array reads use multiple constant offsets around
               the written index (neighborhood exchange)
GATHER         DoALL with indirect (subscript-of-subscript) reads
PIPELINE       a regular carried flow dependence with constant distance
               (parallelizable by pipelining / wavefront, not by DoALL)
SEQUENTIAL     anything else with blocking carried dependences
=============  ==============================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.oracle import OracleResult, classify_loop
from repro.errors import ProfilingError
from repro.ir import ast_nodes as ast
from repro.ir.ast_nodes import Program
from repro.ir.linear import IRProgram
from repro.profiler.report import DepKind, ProfileReport
from repro.tools.affine import normalize_affine


class ParallelPattern(enum.Enum):
    DOALL = "doall"
    REDUCTION = "reduction"
    STENCIL = "stencil"
    GATHER = "gather"
    PIPELINE = "pipeline"
    SEQUENTIAL = "sequential"


@dataclass
class PatternResult:
    """Pattern classification of one loop."""

    loop_id: str
    pattern: ParallelPattern
    oracle: OracleResult
    evidence: List[str]

    @property
    def parallelizable(self) -> bool:
        return self.pattern in (
            ParallelPattern.DOALL,
            ParallelPattern.REDUCTION,
            ParallelPattern.STENCIL,
            ParallelPattern.GATHER,
        )


def _find_loop_ast(program: Program, loop_id: str) -> Optional[ast.For]:
    for fn in program.functions.values():
        for stmt in ast.walk_stmts(fn.body):
            if isinstance(stmt, ast.For) and stmt.loop_id == loop_id:
                return stmt
    return None


def _access_shapes(
    loop: ast.For, enclosing_vars: Set[str]
) -> Tuple[Set[Tuple[str, float]], bool, Set[str]]:
    """(read offsets around the induction variable, any indirect read,
    written arrays).

    A read offset is recorded for reads ``a[v + c]`` whose subscript is
    affine with unit coefficient on the loop variable.
    """
    offsets: Set[Tuple[str, float]] = set()
    indirect = False
    written: Set[str] = set()
    loop_vars = enclosing_vars | {loop.var}

    for stmt in ast.walk_stmts(loop.body):
        exprs = list(ast.stmt_exprs(stmt))
        if isinstance(stmt, ast.Store):
            written.add(stmt.array)
        for expr in exprs:
            for node in ast.walk_exprs(expr):
                if not isinstance(node, ast.Load):
                    continue
                form = normalize_affine(node.index, loop_vars)
                if form is None:
                    if any(
                        isinstance(inner, ast.Load)
                        for inner in ast.walk_exprs(node.index)
                    ):
                        indirect = True
                    continue
                if form.term_coeff(loop.var) == 1.0:
                    offsets.add((node.array, form.const))
    return offsets, indirect, written


def _carried_flow_distance(
    loop: ast.For, report: ProfileReport, loop_id: str, arrays: Set[str]
) -> Optional[float]:
    """Constant dependence distance of a regular carried flow dependence.

    Detected syntactically: the loop writes ``a[v]`` and reads ``a[v - d]``
    with constant d > 0, and the profiler confirms a carried RAW on ``a``.
    """
    carried_arrays = {
        symbol
        for symbol, kinds in report.symbols_carried_by(loop_id).items()
        if symbol in arrays and DepKind.RAW in kinds
    }
    if not carried_arrays:
        return None
    offsets, _indirect, written = _access_shapes(loop, set())
    for array in carried_arrays:
        if array not in written:
            continue
        distances = {
            -const for (arr, const) in offsets if arr == array and const < 0
        }
        if len(distances) == 1:
            return float(next(iter(distances)))
    return None


def classify_pattern(
    program: Program,
    ir_program: IRProgram,
    report: ProfileReport,
    loop_id: str,
) -> PatternResult:
    """Classify the parallel pattern of one For loop."""
    oracle = classify_loop(ir_program, report, loop_id)
    loop = _find_loop_ast(program, loop_id)
    if loop is None:
        raise ProfilingError(f"no AST loop for {loop_id!r}")

    evidence: List[str] = []
    arrays = set(program.arrays)

    if oracle.parallel:
        if oracle.reductions:
            evidence.append(f"reduction accumulators: {oracle.reductions}")
            return PatternResult(
                loop_id, ParallelPattern.REDUCTION, oracle, evidence
            )
        offsets, indirect, written = _access_shapes(loop, set())
        if indirect:
            evidence.append("indirect subscript reads")
            return PatternResult(
                loop_id, ParallelPattern.GATHER, oracle, evidence
            )
        neighborhoods = {}
        for array, const in offsets:
            neighborhoods.setdefault(array, set()).add(const)
        stencil_arrays = [
            array
            for array, consts in neighborhoods.items()
            if len(consts) >= 2 and any(c != 0.0 for c in consts)
        ]
        if stencil_arrays:
            evidence.append(
                f"multi-offset neighborhood reads on {sorted(stencil_arrays)}"
            )
            return PatternResult(
                loop_id, ParallelPattern.STENCIL, oracle, evidence
            )
        evidence.append("independent iterations")
        return PatternResult(loop_id, ParallelPattern.DOALL, oracle, evidence)

    distance = _carried_flow_distance(loop, report, loop_id, arrays)
    if distance is not None:
        evidence.append(f"regular flow dependence, distance {distance:g}")
        return PatternResult(
            loop_id, ParallelPattern.PIPELINE, oracle, evidence
        )
    evidence.extend(oracle.blockers[:2])
    return PatternResult(loop_id, ParallelPattern.SEQUENTIAL, oracle, evidence)


def classify_all_patterns(
    program: Program, ir_program: IRProgram, report: ProfileReport
) -> Dict[str, PatternResult]:
    """Pattern classification for every For loop of ``program``."""
    from repro.analysis.candidates import iter_parallel_candidate_loops

    return {
        cand.loop_id: classify_pattern(
            program, ir_program, report, cand.loop_id
        )
        for cand in iter_parallel_candidate_loops(program)
    }
