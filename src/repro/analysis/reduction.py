"""Static reduction recognition on LinearIR.

A scalar ``v`` is a recognized reduction of loop ``L`` when the loop body
contains exactly one store to ``v``, whose stored value is computed from a
load of ``v`` through associative/commutative update operators only
(``+ - * min max`` — the OpenMP reduction operator set we model), and every
read of ``v`` inside the loop is that chain's load.  Such loops are
parallelizable with a ``reduction`` clause even though they carry a RAW
dependence — exactly the pattern on the right of the paper's Fig. 1.

Array reductions (histogramming) are deliberately *not* recognized: the
OpenMP versions of the modeled benchmarks handle those with atomics or
per-thread buckets, and both the paper's labels and DiscoPoP treat the plain
loop as not (trivially) parallelizable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.ir.linear import IRFunction, Opcode, Reg
from repro.profiler.static_info import loop_block_sets

#: opcodes allowed on the accumulator update chain
_REDUCTION_OPS = {Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.MIN, Opcode.MAX}

_OP_NAMES = {
    Opcode.ADD: "+",
    Opcode.SUB: "-",
    Opcode.MUL: "*",
    Opcode.MIN: "min",
    Opcode.MAX: "max",
}


@dataclass(frozen=True)
class ReductionInfo:
    """One recognized reduction accumulator."""

    symbol: str        # bare variable name
    scoped: str        # "fn::var" — the profiler's scoped symbol
    operator: str      # "+", "*", "min", "max", "-"
    loop_id: str


def find_reductions(fn: IRFunction, loop_id: str) -> Dict[str, ReductionInfo]:
    """Recognized reduction accumulators of ``loop_id``, keyed by scoped symbol."""
    blocks = loop_block_sets(fn).get(loop_id, set())
    if not blocks:
        return {}

    loads: Dict[str, List] = {}    # var -> [(block, instr)]
    stores: Dict[str, List] = {}
    # def map register -> producing instr, per block
    for block in fn.blocks:
        if block.label not in blocks:
            continue
        for instr in block.instrs:
            if instr.opcode is Opcode.LDVAR:
                loads.setdefault(instr.operands[0], []).append((block, instr))
            elif instr.opcode is Opcode.STVAR:
                stores.setdefault(instr.operands[0], []).append((block, instr))

    out: Dict[str, ReductionInfo] = {}
    for var, store_list in stores.items():
        var_loads = loads.get(var, [])
        # every store must pair with exactly one load in its own block and
        # form a valid update chain; unrolled loops legitimately contain the
        # update twice (one per body copy), so multiple pairs are fine as
        # long as *all* of them are valid and agree on the operator class
        if len(var_loads) != len(store_list):
            continue
        loads_by_block: Dict[int, List] = {}
        for load_block, load in var_loads:
            loads_by_block.setdefault(id(load_block), []).append(load)
        operators = set()
        valid = True
        for block, store in store_list:
            block_loads = loads_by_block.get(id(block), [])
            if len(block_loads) != 1:
                valid = False
                break
            operator = _trace_chain(block, store, block_loads[0])
            if operator is None:
                valid = False
                break
            operators.add(operator)
        if not valid or len(operators) != 1:
            continue
        scoped = f"{fn.name}::{var}"
        out[scoped] = ReductionInfo(
            symbol=var,
            scoped=scoped,
            operator=next(iter(operators)),
            loop_id=loop_id,
        )
    return out


def _trace_chain(block, store, load) -> Optional[str]:
    """Check the stored value flows from ``load`` through reduction ops only.

    Returns the outermost update operator, or None if the chain is invalid.
    The accumulator may appear exactly once on the chain; every op on the
    spine from load to store must be a reduction op, and for the
    non-commutative ``-`` the accumulator must be the left operand.
    """
    defs = {}
    for instr in block.instrs:
        if instr.result is not None:
            defs[instr.result.name] = instr
    value_op = store.operands[1]
    if not isinstance(value_op, Reg):
        return None
    load_reg = load.result.name

    # Walk the spine: the chain of producers from the stored register down to
    # the load register; at each step exactly one operand continues the spine.
    current = defs.get(value_op.name)
    operator: Optional[str] = None
    for _ in range(64):  # spine length bound: no kernel update is deeper
        if current is None:
            return None
        if current is load:
            return operator if operator is not None else None
        if current.opcode not in _REDUCTION_OPS:
            return None
        # All spine ops must belong to one reduction class: +/- mix freely
        # (both reassociate as a sum), but * / min / max must be pure —
        # s = (s + a) * b is not a reduction.
        op_name = _OP_NAMES[current.opcode]
        op_class = "+" if op_name in ("+", "-") else op_name
        if operator is None:
            operator = op_class
        elif operator != op_class:
            return None
        spine_next = None
        for pos, op in enumerate(current.operands):
            if not isinstance(op, Reg):
                continue
            producer = defs.get(op.name)
            if producer is None:
                continue
            if _reaches(defs, producer, load):
                if spine_next is not None:
                    return None  # accumulator appears twice (s = s + s)
                if current.opcode is Opcode.SUB and pos != 0:
                    return None  # s = x - s is not a reduction
                spine_next = producer
        if spine_next is None:
            return None
        current = spine_next
    return None


def _reaches(defs, instr, target) -> bool:
    """Does ``instr``'s value depend (through registers) on ``target``?"""
    stack = [instr]
    seen = set()
    while stack:
        node = stack.pop()
        if node is target:
            return True
        if id(node) in seen:
            continue
        seen.add(id(node))
        for op in node.operands:
            if isinstance(op, Reg):
                producer = defs.get(op.name)
                if producer is not None:
                    stack.append(producer)
    return False
