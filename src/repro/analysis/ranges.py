"""Value-range abstract interpretation over LinearIR.

Two cooperating layers:

* **Interval domain** (:class:`Interval`): closed intervals with ±∞
  endpoints, propagated through a worklist fixpoint over each function's
  CFG with widening (after a block's input changes too many times) and a
  narrowing pass (infinite bounds produced by widening are replaced by
  recomputed finite ones).  Branch targets are refined through the
  ``ldvar → cmp → condbr`` chain the lowering emits, so a loop body knows
  ``v < hi`` and the exit knows ``v >= hi``.  Array *contents* are
  summarized flow-insensitively program-wide: the deterministic ``[0, 1)``
  initialization joined with every value any ``store`` may write, iterated
  to its own fixpoint (functions communicate only through arrays, so this
  outer iteration is the whole interprocedural story; callee results and
  parameters are ⊤).

* **Symbolic facts** (:class:`EnclosingBound`): relational constraints
  harvested from enclosing ``For`` headers at the AST level — while a
  loop body runs, each enclosing induction variable ``j`` satisfies
  ``lo <= j < hi`` (and, when the loop was entered at all, ``hi > lo``).
  The dependence prover's row-disjointness disproof for flattened-2D
  ``v*N + j`` subscripts consumes these (``0 <= j < N`` implies rows
  ``v*N`` cannot collide across iterations).

Every transfer function mirrors the interpreter's concrete semantics
(:mod:`repro.profiler.interpreter`): Euclidean ``%`` follows the divisor's
sign, ``div``/``mod`` by zero raise (so their result intervals assume a
nonzero divisor), comparisons and logic yield {0, 1}, the clamped
intrinsics (``sqrt`` of a negative is 0, ``log`` of a non-positive is 0,
``exp`` saturates at 700) clamp the same way, and a scalar read before
any write yields 0.0.  :func:`check_soundness` enforces the mirror
empirically: it re-executes the program under the interpreter with a
probe attached and reports every observed value that escapes its
inferred interval.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.ir import ast_nodes as ast
from repro.ir.linear import (
    BasicBlock,
    Imm,
    Instr,
    IRFunction,
    IRProgram,
    Opcode,
    Reg,
)

#: Version of the range analysis.  Cached artifacts that embed range-backed
#: verdicts (dataset shards revalidated by lint) record this and are
#: invalidated when the analyzer changes.
RANGE_ANALYSIS_VERSION = 1

_INF = math.inf

#: input-change budget per block before widening kicks in
_WIDEN_AFTER = 6

#: narrowing sweeps after the ascending fixpoint stabilizes
_NARROW_PASSES = 2

#: rounds of the program-wide array-summary iteration before widening
_ARRAY_ROUNDS = 4


# ---------------------------------------------------------------------------
# Interval domain
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]``; ``lo > hi`` encodes ⊥ (no value)."""

    lo: float
    hi: float

    # -- lattice ---------------------------------------------------------

    @property
    def is_bottom(self) -> bool:
        return self.lo > self.hi

    @property
    def is_top(self) -> bool:
        return self.lo == -_INF and self.hi == _INF

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def join(self, other: "Interval") -> "Interval":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def leq(self, other: "Interval") -> bool:
        if self.is_bottom:
            return True
        if other.is_bottom:
            return False
        return other.lo <= self.lo and self.hi <= other.hi

    def widen(
        self, new: "Interval", thresholds: Sequence[float] = ()
    ) -> "Interval":
        """Interval widening with thresholds: an unstable bound jumps to
        the nearest program constant beyond it (±∞ when none is left).

        Plain ±∞ widening loses outer-scope invariants inside nested
        loops: a variable like ``n`` that only *passes through* an inner
        loop gets widened there, and narrowing cannot descend because the
        inner loop's feedback is already a fixpoint.  Landing on the
        guard constant first keeps such variables finite.  ``thresholds``
        must be sorted ascending; termination holds because each bound
        can only step through the finite threshold list before ±∞.
        """
        if self.is_bottom:
            return new
        if new.is_bottom:
            return self
        lo, hi = self.lo, self.hi
        if new.lo < lo:
            lo = -_INF
            for t in reversed(thresholds):
                if t <= new.lo:
                    lo = t
                    break
        if new.hi > hi:
            hi = _INF
            for t in thresholds:
                if t >= new.hi:
                    hi = t
                    break
        return Interval(lo, hi)

    def narrow(self, new: "Interval") -> "Interval":
        """Standard interval narrowing: only infinite bounds are refined."""
        if self.is_bottom or new.is_bottom:
            return self
        return Interval(
            new.lo if self.lo == -_INF else self.lo,
            new.hi if self.hi == _INF else self.hi,
        )

    # -- helpers ---------------------------------------------------------

    @property
    def is_finite(self) -> bool:
        return not self.is_bottom and math.isfinite(self.lo) and math.isfinite(self.hi)

    def int_bounds(self) -> Optional[Tuple[int, int]]:
        """Bounds of ``int(x)`` (C-style truncation toward zero) over the
        interval, or None when unbounded/⊥.  Truncation is monotone, so
        the truncated endpoints bound every truncated member."""
        if not self.is_finite:
            return None
        return (math.trunc(self.lo), math.trunc(self.hi))

    @property
    def definitely_true(self) -> bool:
        """Every member is truthy (0.0 not contained)."""
        return not self.is_bottom and not self.contains(0.0)

    @property
    def definitely_false(self) -> bool:
        return self.lo == 0.0 and self.hi == 0.0

    def __str__(self) -> str:  # pragma: no cover - debug aid
        if self.is_bottom:
            return "⊥"
        return f"[{self.lo:g}, {self.hi:g}]"


TOP = Interval(-_INF, _INF)
BOTTOM = Interval(_INF, -_INF)
ZERO = Interval(0.0, 0.0)
BOOL = Interval(0.0, 1.0)
TRUE = Interval(1.0, 1.0)


def _mul1(a: float, b: float) -> float:
    # IEEE inf * 0 is nan; in interval arithmetic that product is 0
    if a == 0.0 or b == 0.0:
        return 0.0
    return a * b


def iv_add(a: Interval, b: Interval) -> Interval:
    if a.is_bottom or b.is_bottom:
        return BOTTOM
    return Interval(a.lo + b.lo, a.hi + b.hi)


def iv_sub(a: Interval, b: Interval) -> Interval:
    if a.is_bottom or b.is_bottom:
        return BOTTOM
    return Interval(a.lo - b.hi, a.hi - b.lo)


def iv_mul(a: Interval, b: Interval) -> Interval:
    if a.is_bottom or b.is_bottom:
        return BOTTOM
    products = (
        _mul1(a.lo, b.lo), _mul1(a.lo, b.hi),
        _mul1(a.hi, b.lo), _mul1(a.hi, b.hi),
    )
    return Interval(min(products), max(products))


def iv_neg(a: Interval) -> Interval:
    if a.is_bottom:
        return BOTTOM
    return Interval(-a.hi, -a.lo)


def iv_div(a: Interval, b: Interval) -> Interval:
    """``a / b`` given the interpreter raises on a zero divisor — the
    result interval assumes ``b != 0``."""
    if a.is_bottom or b.is_bottom:
        return BOTTOM
    if b.contains(0.0):
        # divisor may come arbitrarily close to zero on either side
        if a.lo == 0.0 and a.hi == 0.0:
            return ZERO
        return TOP
    quotients = (a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi)
    return Interval(min(quotients), max(quotients))


def iv_mod(a: Interval, b: Interval) -> Interval:
    """Euclidean ``%``: the result carries the divisor's sign (Python
    float semantics, which the interpreter uses verbatim)."""
    if a.is_bottom or b.is_bottom:
        return BOTTOM
    if b.lo > 0.0:
        if 0.0 <= a.lo and a.hi < b.lo:
            return a  # x % d == x when 0 <= x < d for every divisor value
        return Interval(0.0, b.hi)
    if b.hi < 0.0:
        return Interval(b.lo, 0.0)
    return Interval(min(b.lo, 0.0), max(b.hi, 0.0))


def iv_min(a: Interval, b: Interval) -> Interval:
    if a.is_bottom or b.is_bottom:
        return BOTTOM
    return Interval(min(a.lo, b.lo), min(a.hi, b.hi))


def iv_max(a: Interval, b: Interval) -> Interval:
    if a.is_bottom or b.is_bottom:
        return BOTTOM
    return Interval(max(a.lo, b.lo), max(a.hi, b.hi))


def iv_not(a: Interval) -> Interval:
    if a.is_bottom:
        return BOTTOM
    if a.definitely_true:
        return ZERO
    if a.definitely_false:
        return TRUE
    return BOOL


def iv_and(a: Interval, b: Interval) -> Interval:
    if a.is_bottom or b.is_bottom:
        return BOTTOM
    if a.definitely_false or b.definitely_false:
        return ZERO
    if a.definitely_true and b.definitely_true:
        return TRUE
    return BOOL


def iv_or(a: Interval, b: Interval) -> Interval:
    if a.is_bottom or b.is_bottom:
        return BOTTOM
    if a.definitely_true or b.definitely_true:
        return TRUE
    if a.definitely_false and b.definitely_false:
        return ZERO
    return BOOL


def iv_cmp(pred: str, a: Interval, b: Interval) -> Interval:
    if a.is_bottom or b.is_bottom:
        return BOTTOM
    if pred == "lt":
        if a.hi < b.lo:
            return TRUE
        if a.lo >= b.hi:
            return ZERO
    elif pred == "le":
        if a.hi <= b.lo:
            return TRUE
        if a.lo > b.hi:
            return ZERO
    elif pred == "gt":
        if a.lo > b.hi:
            return TRUE
        if a.hi <= b.lo:
            return ZERO
    elif pred == "ge":
        if a.lo >= b.hi:
            return TRUE
        if a.hi < b.lo:
            return ZERO
    elif pred == "eq":
        if a.hi < b.lo or b.hi < a.lo:
            return ZERO
        if a.lo == a.hi == b.lo == b.hi:
            return TRUE
    elif pred == "ne":
        if a.hi < b.lo or b.hi < a.lo:
            return TRUE
        if a.lo == a.hi == b.lo == b.hi:
            return ZERO
    return BOOL


def _iv_sqrt(a: Interval) -> Interval:
    # sqrt(x) if x >= 0 else 0
    hi = math.sqrt(a.hi) if a.hi > 0.0 else 0.0
    lo = math.sqrt(a.lo) if a.lo > 0.0 else 0.0
    return Interval(lo, hi)


def _iv_exp(a: Interval) -> Interval:
    return Interval(math.exp(min(a.lo, 700.0)), math.exp(min(a.hi, 700.0)))


def _iv_log(a: Interval) -> Interval:
    # log(x) if x > 0 else 0
    if a.hi <= 0.0:
        return ZERO
    hi = math.log(a.hi)
    if a.lo > 0.0:
        lo = math.log(a.lo)
    else:
        lo = -_INF  # arbitrarily small positive members
    if a.lo <= 0.0:  # the clamped-to-0 members
        lo, hi = min(lo, 0.0), max(hi, 0.0)
    return Interval(lo, hi)


def _iv_floor(a: Interval) -> Interval:
    lo = math.floor(a.lo) if math.isfinite(a.lo) else a.lo
    hi = math.floor(a.hi) if math.isfinite(a.hi) else a.hi
    return Interval(lo, hi)


_UNIT = Interval(-1.0, 1.0)

_INTRINSIC_TRANSFER = {
    "sqrt": lambda args: _iv_sqrt(args[0]),
    "exp": lambda args: _iv_exp(args[0]),
    "log": lambda args: _iv_log(args[0]),
    "sin": lambda args: _UNIT,
    "cos": lambda args: _UNIT,
    "fabs": lambda args: Interval(
        0.0 if args[0].contains(0.0) else min(abs(args[0].lo), abs(args[0].hi)),
        max(abs(args[0].lo), abs(args[0].hi)),
    ),
    "floor": lambda args: _iv_floor(args[0]),
    "pow": lambda args: Interval(0.0, _INF),  # pow(|a|, b), clamped at 0
}


# ---------------------------------------------------------------------------
# Per-instruction facts and per-function results
# ---------------------------------------------------------------------------


@dataclass
class InstrFacts:
    """Range facts attached to one instruction (by ``(fn, iid)``).

    ``value`` is the scalar read/written (``ldvar``/``stvar``), the value
    loaded/stored (``load``/``store``), or the call result; ``index`` is
    the float subscript operand *before* truncation; ``divisor`` is the
    second operand of ``div``/``mod``.  ``dead_edge`` marks a ``condbr``
    with a provably one-sided condition (label of the never-taken target).
    """

    value: Optional[Interval] = None
    index: Optional[Interval] = None
    divisor: Optional[Interval] = None
    dead_edge: Optional[str] = None


@dataclass
class FunctionRanges:
    """Fixpoint results for one function."""

    name: str
    block_in: Dict[str, Dict[str, Interval]] = field(default_factory=dict)
    facts: Dict[int, InstrFacts] = field(default_factory=dict)

    def reachable(self, label: str) -> bool:
        return label in self.block_in

    def var_at(self, label: str, var: str) -> Optional[Interval]:
        env = self.block_in.get(label)
        if env is None:
            return None
        return env.get(var, ZERO)


@dataclass(frozen=True)
class EnclosingBound:
    """Relational fact: while the body of loop ``loop_id`` executes,
    ``lo_expr <= var < hi_expr`` (and the enclosing loop was entered, so
    ``hi > lo`` held at least once)."""

    var: str
    lo: ast.Expr
    hi: ast.Expr

    @property
    def lo_const(self) -> Optional[float]:
        return self.lo.value if isinstance(self.lo, ast.Const) else None

    @property
    def hi_symbol(self) -> Optional[str]:
        return self.hi.name if isinstance(self.hi, ast.Var) else None


@dataclass
class ProgramRanges:
    """Program-level result: per-function ranges + array value summaries."""

    program: IRProgram
    functions: Dict[str, FunctionRanges]
    arrays: Dict[str, Interval]

    def fact(self, fn: str, iid: int) -> Optional[InstrFacts]:
        franges = self.functions.get(fn)
        return None if franges is None else franges.facts.get(iid)

    def loop_var_interval(self, loop_id: str) -> Optional[Interval]:
        """Interval of a loop's induction variable at body entry."""
        for fn_name, fn in self.program.functions.items():
            info = fn.loops.get(loop_id)
            if info is None:
                continue
            franges = self.functions.get(fn_name)
            if franges is None or not info.var:
                return None
            return franges.var_at(info.body_entry, info.var)
        return None

    def zero_trip_loops(self) -> List[str]:
        """Loops whose header is reachable but whose body never is."""
        out = []
        for fn_name, fn in self.program.functions.items():
            franges = self.functions.get(fn_name)
            if franges is None:
                continue
            for loop_id, info in fn.loops.items():
                if franges.reachable(info.header) and not franges.reachable(
                    info.body_entry
                ):
                    out.append(loop_id)
        return sorted(out)

    def store_index_cells(
        self, loop_id: str, line: int, array: str
    ) -> Optional[Tuple[int, int]]:
        """Truncated-integer cell bounds of the ``store`` lowered from the
        AST ``Store`` at ``line`` inside ``loop_id``, joined over every
        matching store instruction; None when any is unbounded."""
        cells: Optional[Tuple[int, int]] = None
        seen = False
        for fn_name, fn in self.program.functions.items():
            franges = self.functions.get(fn_name)
            if franges is None:
                continue
            for block in fn.blocks:
                for instr in block.instrs:
                    if (
                        instr.opcode is not Opcode.STORE
                        or instr.loop_id != loop_id
                        or instr.line != line
                        or instr.operands[0] != array
                    ):
                        continue
                    seen = True
                    fact = franges.facts.get(instr.iid)
                    if fact is None or fact.index is None:
                        return None
                    bounds = fact.index.int_bounds()
                    if bounds is None:
                        return None
                    if cells is None:
                        cells = bounds
                    else:
                        cells = (
                            min(cells[0], bounds[0]), max(cells[1], bounds[1])
                        )
        return cells if seen else None


# ---------------------------------------------------------------------------
# Transfer function
# ---------------------------------------------------------------------------

_BIN_TRANSFER = {
    Opcode.ADD: iv_add,
    Opcode.SUB: iv_sub,
    Opcode.MUL: iv_mul,
    Opcode.DIV: iv_div,
    Opcode.MOD: iv_mod,
    Opcode.MIN: iv_min,
    Opcode.MAX: iv_max,
    Opcode.AND: iv_and,
    Opcode.OR: iv_or,
}

_NEGATED_PRED = {
    "lt": "ge", "le": "gt", "gt": "le", "ge": "lt", "eq": "ne", "ne": "eq",
}


class _CmpOrigin:
    """Provenance of a ``cmp`` result inside one block transfer: the
    predicate plus, for each operand, the variable it was loaded from (if
    any, and not overwritten since) and its interval at compare time."""

    __slots__ = ("pred", "lhs_var", "lhs_iv", "rhs_var", "rhs_iv")

    def __init__(self, pred, lhs_var, lhs_iv, rhs_var, rhs_iv):
        self.pred = pred
        self.lhs_var = lhs_var
        self.lhs_iv = lhs_iv
        self.rhs_var = rhs_var
        self.rhs_iv = rhs_iv


def _refine(
    env: Dict[str, Interval], origin: _CmpOrigin, taken: bool
) -> Optional[Dict[str, Interval]]:
    """Refine ``env`` along a ``condbr`` edge; None when the edge is
    infeasible (a refined variable's interval became ⊥)."""
    pred = origin.pred if taken else _NEGATED_PRED.get(origin.pred)
    if pred is None:
        return env
    bounds: List[Tuple[Optional[str], Interval]] = []
    a, b = origin.lhs_iv, origin.rhs_iv
    if pred == "lt":      # lhs < rhs
        bounds = [(origin.lhs_var, Interval(-_INF, b.hi)),
                  (origin.rhs_var, Interval(a.lo, _INF))]
    elif pred == "le":
        bounds = [(origin.lhs_var, Interval(-_INF, b.hi)),
                  (origin.rhs_var, Interval(a.lo, _INF))]
    elif pred == "gt":    # lhs > rhs
        bounds = [(origin.lhs_var, Interval(b.lo, _INF)),
                  (origin.rhs_var, Interval(-_INF, a.hi))]
    elif pred == "ge":
        bounds = [(origin.lhs_var, Interval(b.lo, _INF)),
                  (origin.rhs_var, Interval(-_INF, a.hi))]
    elif pred == "eq":
        bounds = [(origin.lhs_var, b), (origin.rhs_var, a)]
    else:  # ne: no single-interval refinement
        return env
    for var, bound in bounds:
        if var is None:
            continue
        current = env.get(var, ZERO)
        refined = current.meet(bound)
        if refined.is_bottom:
            return None
        if refined != current:
            env = dict(env)
            env[var] = refined
    return env


def _transfer_block(
    fn: IRFunction,
    block: BasicBlock,
    env_in: Dict[str, Interval],
    arrays_iv: Dict[str, Interval],
    store_joins: Optional[Dict[str, Interval]] = None,
    facts: Optional[Dict[int, InstrFacts]] = None,
) -> Dict[str, Optional[Dict[str, Interval]]]:
    """Abstractly execute ``block`` from ``env_in``.

    Returns ``{successor_label: env_or_None}`` (None = provably-dead
    edge).  When ``store_joins`` is given, joins every stored value into
    it (the array-summary iteration); when ``facts`` is given, records
    per-instruction :class:`InstrFacts` (the final reporting pass).
    """
    env = dict(env_in)
    regs: Dict[str, Interval] = {}
    var_origin: Dict[str, str] = {}        # reg -> var it was loaded from
    cmp_origin: Dict[str, _CmpOrigin] = {}

    def val(op) -> Interval:
        if type(op) is Reg:
            return regs.get(op.name, TOP)
        return Interval(op.value, op.value)  # Imm

    def note(iid: int, **kw) -> None:
        if facts is None:
            return
        fact = facts.get(iid)
        if fact is None:
            fact = facts[iid] = InstrFacts()
        for name, iv in kw.items():
            old = getattr(fact, name)
            if name == "dead_edge":
                setattr(fact, name, iv)
            else:
                setattr(fact, name, iv if old is None else old.join(iv))

    out: Dict[str, Optional[Dict[str, Interval]]] = {}
    for instr in block.instrs:
        op = instr.opcode
        ops = instr.operands
        if op is Opcode.CONST:
            regs[instr.result.name] = Interval(ops[0].value, ops[0].value)
        elif op is Opcode.LDVAR:
            iv = env.get(ops[0], ZERO)
            regs[instr.result.name] = iv
            var_origin[instr.result.name] = ops[0]
            note(instr.iid, value=iv)
        elif op is Opcode.STVAR:
            iv = val(ops[1])
            env[ops[0]] = iv
            # a later refinement through a cmp that read the old value
            # must not constrain the new one
            stale = [r for r, v in var_origin.items() if v == ops[0]]
            for r in stale:
                del var_origin[r]
            for origin in cmp_origin.values():
                if origin.lhs_var == ops[0]:
                    origin.lhs_var = None
                if origin.rhs_var == ops[0]:
                    origin.rhs_var = None
            note(instr.iid, value=iv)
        elif op is Opcode.LOAD:
            idx = val(ops[1])
            loaded = arrays_iv.get(ops[0], TOP)
            regs[instr.result.name] = loaded
            note(instr.iid, index=idx, value=loaded)
        elif op is Opcode.STORE:
            idx = val(ops[1])
            stored = val(ops[2])
            if store_joins is not None:
                store_joins[ops[0]] = store_joins.get(ops[0], BOTTOM).join(
                    stored
                )
            note(instr.iid, index=idx, value=stored)
        elif op is Opcode.NEG:
            regs[instr.result.name] = iv_neg(val(ops[0]))
        elif op is Opcode.NOT:
            regs[instr.result.name] = iv_not(val(ops[0]))
        elif op in _BIN_TRANSFER:
            a, b = val(ops[0]), val(ops[1])
            regs[instr.result.name] = _BIN_TRANSFER[op](a, b)
            if op is Opcode.DIV or op is Opcode.MOD:
                note(instr.iid, divisor=b)
        elif op is Opcode.CMP:
            a, b = val(ops[0]), val(ops[1])
            pred = instr.meta.get("pred", "ne")
            regs[instr.result.name] = iv_cmp(pred, a, b)
            lhs_var = ops[0].name if type(ops[0]) is Reg else None
            rhs_var = ops[1].name if type(ops[1]) is Reg else None
            cmp_origin[instr.result.name] = _CmpOrigin(
                pred,
                var_origin.get(lhs_var) if lhs_var else None, a,
                var_origin.get(rhs_var) if rhs_var else None, b,
            )
        elif op is Opcode.CALL:
            transfer = _INTRINSIC_TRANSFER.get(ops[0])
            args = [val(a) for a in ops[1:]]
            iv = transfer(args) if transfer is not None else TOP
            regs[instr.result.name] = iv
            note(instr.iid, value=iv)
        elif op is Opcode.CALLFN:
            if instr.result is not None:
                regs[instr.result.name] = TOP
        elif op is Opcode.BR:
            out[ops[0]] = env
        elif op is Opcode.CONDBR:
            cond = val(ops[0])
            true_env: Optional[Dict[str, Interval]] = env
            false_env: Optional[Dict[str, Interval]] = dict(env)
            if cond.definitely_true:
                false_env = None
            elif cond.definitely_false:
                true_env = None
            origin = (
                cmp_origin.get(ops[0].name) if type(ops[0]) is Reg else None
            )
            if origin is not None:
                if true_env is not None:
                    true_env = _refine(true_env, origin, True)
                if false_env is not None:
                    false_env = _refine(false_env, origin, False)
            if true_env is None and false_env is not None:
                note(instr.iid, dead_edge=ops[1])
            elif false_env is None and true_env is not None:
                note(instr.iid, dead_edge=ops[2])
            out[ops[1]] = true_env
            out[ops[2]] = false_env
        elif op is Opcode.RET:
            pass
        # LOOPENTER / LOOPNEXT / LOOPEXIT: profiler bookkeeping, no effect
    return out


# ---------------------------------------------------------------------------
# Fixpoint driver
# ---------------------------------------------------------------------------


def _join_env(
    a: Dict[str, Interval], b: Dict[str, Interval]
) -> Dict[str, Interval]:
    out = dict(a)
    for var, iv in b.items():
        out[var] = out.get(var, ZERO).join(iv)
    for var in a:
        if var not in b:
            out[var] = out[var].join(ZERO)
    return out


def _env_leq(a: Dict[str, Interval], b: Dict[str, Interval]) -> bool:
    for var in set(a) | set(b):
        if not a.get(var, ZERO).leq(b.get(var, ZERO)):
            return False
    return True


def _widen_env(
    old: Dict[str, Interval],
    new: Dict[str, Interval],
    thresholds: Sequence[float] = (),
) -> Dict[str, Interval]:
    out = {}
    for var in set(old) | set(new):
        out[var] = old.get(var, ZERO).widen(new.get(var, ZERO), thresholds)
    return out


def _fn_thresholds(fn: IRFunction) -> Tuple[float, ...]:
    """Widening thresholds: every immediate constant in the function.
    Guard constants are the ones that matter (a bound lands on them and
    stabilizes); collecting all Imms is a cheap superset."""
    vals: Set[float] = {0.0}
    for block in fn.blocks:
        for instr in block.instrs:
            for op in instr.operands:
                if type(op) is Imm and math.isfinite(op.value):
                    vals.add(float(op.value))
    return tuple(sorted(vals))


def _narrow_env(
    old: Dict[str, Interval], new: Dict[str, Interval]
) -> Dict[str, Interval]:
    out = {}
    for var in set(old) | set(new):
        out[var] = old.get(var, ZERO).narrow(new.get(var, ZERO))
    return out


def _analyze_function(
    fn: IRFunction,
    arrays_iv: Dict[str, Interval],
    store_joins: Optional[Dict[str, Interval]] = None,
    facts: Optional[Dict[int, InstrFacts]] = None,
) -> Dict[str, Dict[str, Interval]]:
    """Run the intra-procedural fixpoint; returns reachable block-input
    envs.  Parameters are ⊤ (any caller), unread scalars are 0.0."""
    entry_env: Dict[str, Interval] = {p: TOP for p in fn.params}
    entry = fn.entry.label
    thresholds = _fn_thresholds(fn)
    block_in: Dict[str, Dict[str, Interval]] = {entry: entry_env}
    changes: Dict[str, int] = {}
    worklist = deque([entry])
    queued = {entry}

    while worklist:
        label = worklist.popleft()
        queued.discard(label)
        outs = _transfer_block(
            fn, fn.block(label), block_in[label], arrays_iv
        )
        for target, env_out in outs.items():
            if env_out is None:
                continue
            old = block_in.get(target)
            if old is None:
                block_in[target] = dict(env_out)
            else:
                joined = _join_env(old, env_out)
                if _env_leq(joined, old):
                    continue
                count = changes.get(target, 0) + 1
                changes[target] = count
                if count > _WIDEN_AFTER:
                    joined = _widen_env(old, joined, thresholds)
                block_in[target] = joined
            if target not in queued:
                queued.add(target)
                worklist.append(target)

    # narrowing: recompute each reachable block's input from its
    # predecessors' refined edges, replacing only widened (infinite)
    # bounds — each sweep keeps the state a post-fixpoint, so any number
    # of sweeps is sound
    labels = [b.label for b in fn.blocks if b.label in block_in]
    for _ in range(_NARROW_PASSES):
        edge_envs: Dict[str, List[Dict[str, Interval]]] = {}
        for label in labels:
            outs = _transfer_block(
                fn, fn.block(label), block_in[label], arrays_iv
            )
            for target, env_out in outs.items():
                if env_out is not None:
                    edge_envs.setdefault(target, []).append(env_out)
        changed = False
        for label in labels:
            incoming = edge_envs.get(label)
            if label == entry:
                incoming = (incoming or []) + [entry_env]
            if not incoming:
                continue  # kept reachable conservatively
            recomputed = incoming[0]
            for env in incoming[1:]:
                recomputed = _join_env(recomputed, env)
            narrowed = _narrow_env(block_in[label], recomputed)
            if narrowed != block_in[label]:
                block_in[label] = narrowed
                changed = True
        if not changed:
            break

    # reporting pass: record per-instruction facts / store joins over the
    # stabilized states
    if store_joins is not None or facts is not None:
        for label in labels:
            _transfer_block(
                fn, fn.block(label), block_in[label], arrays_iv,
                store_joins=store_joins, facts=facts,
            )
    return block_in


def analyze_program(program: IRProgram) -> ProgramRanges:
    """Run the engine over every function of ``program``.

    Array value summaries are iterated to a program-level fixpoint: start
    from the deterministic ``[0, 1)`` initialization, analyze every
    function, join in everything any ``store`` may write, repeat (widening
    after a few rounds bounds accumulator-style growth).
    """
    init = Interval(0.0, 1.0)
    arrays_iv: Dict[str, Interval] = {name: init for name in program.arrays}
    rounds = 0
    while True:
        store_joins: Dict[str, Interval] = {}
        for fn in program.functions.values():
            _analyze_function(fn, arrays_iv, store_joins=store_joins)
        new_iv = {}
        stable = True
        for name in program.arrays:
            joined = init.join(store_joins.get(name, BOTTOM))
            if rounds >= _ARRAY_ROUNDS:
                joined = arrays_iv[name].widen(joined)
            else:
                joined = arrays_iv[name].join(joined)
            if joined != arrays_iv[name]:
                stable = False
            new_iv[name] = joined
        arrays_iv = new_iv
        rounds += 1
        if stable:
            break

    functions: Dict[str, FunctionRanges] = {}
    for fn_name, fn in program.functions.items():
        franges = FunctionRanges(name=fn_name)
        franges.block_in = _analyze_function(
            fn, arrays_iv, facts=franges.facts
        )
        functions[fn_name] = franges
    return ProgramRanges(
        program=program, functions=functions, arrays=dict(arrays_iv)
    )


# ---------------------------------------------------------------------------
# Symbolic facts: enclosing-loop bounds at the AST level
# ---------------------------------------------------------------------------


def harvest_enclosing_bounds(
    program: ast.Program,
) -> Dict[str, Tuple[EnclosingBound, ...]]:
    """For every labeled ``For`` loop, the bound facts of the loops
    around it (outermost first): ``lo <= var < hi`` holds whenever the
    inner loop's body executes.  Facts through ``While``/``If`` nesting
    are kept — the enclosing ``For`` headers still bracket the body."""
    out: Dict[str, Tuple[EnclosingBound, ...]] = {}

    def walk(body: Sequence[ast.Stmt], chain: Tuple[EnclosingBound, ...]):
        for stmt in body:
            if isinstance(stmt, ast.For):
                if stmt.loop_id is not None:
                    out[stmt.loop_id] = chain
                walk(
                    stmt.body,
                    chain + (EnclosingBound(stmt.var, stmt.lo, stmt.hi),),
                )
            elif isinstance(stmt, ast.While):
                walk(stmt.body, chain)
            elif isinstance(stmt, ast.If):
                walk(stmt.then_body, chain)
                walk(stmt.else_body, chain)

    for fn in program.functions.values():
        walk(fn.body, ())
    return out


# ---------------------------------------------------------------------------
# Soundness self-check: fuzzed interpreter runs vs. inferred intervals
# ---------------------------------------------------------------------------


def check_soundness(
    program: IRProgram,
    ranges: Optional[ProgramRanges] = None,
    args_list: Sequence[Tuple[float, ...]] = ((),),
    rng_seeds: Sequence[int] = (0, 1, 2),
    max_steps: int = 2_000_000,
) -> List[str]:
    """Execute ``program`` under the interpreter with a probe attached
    and return a violation message for every observed value that escapes
    its inferred interval (empty list = sound on these runs).

    Checked observations: scalar values at ``ldvar``/``stvar``, float
    subscripts (pre-truncation) and loaded/stored values at
    ``load``/``store``, intrinsic results, and ``div``/``mod`` divisors.
    Runs that raise (out-of-bounds, zero divisor, step budget) are fine —
    the intervals only claim to cover values the program *observes*.
    """
    from repro.errors import InterpreterError
    from repro.profiler.interpreter import Interpreter

    if ranges is None:
        ranges = analyze_program(program)
    violations: List[str] = []

    def probe(fn_name: str, iid: int, kind: str, value: float) -> None:
        fact = ranges.fact(fn_name, iid)
        if fact is None:
            violations.append(
                f"{fn_name}:iid{iid}: executed but never analyzed "
                f"(block unreachable per ranges)"
            )
            return
        iv = getattr(fact, kind)
        if iv is None or not iv.contains(value):
            violations.append(
                f"{fn_name}:iid{iid}: observed {kind}={value!r} outside "
                f"inferred {iv}"
            )

    for args in args_list:
        for seed in rng_seeds:
            interp = Interpreter(
                program, record=False, rng=seed, max_steps=max_steps,
                probe=probe,
            )
            try:
                interp.run(tuple(args))
            except InterpreterError:
                pass
            if len(violations) > 50:
                break
    return violations
