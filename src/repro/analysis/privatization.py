"""Privatization analysis.

A scalar that carries only WAR/WAW dependences at loop level ``L`` — never a
RAW — is written before it is read in every iteration, so each thread can get
a private copy (OpenMP ``private``).  This covers ordinary loop-body
temporaries and the induction variables of nested loops, which is why the
oracle can ignore those dependences when deciding DoALL parallelizability.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.profiler.report import DepKind, ProfileReport


def privatizable_scalars(
    report: ProfileReport, loop_id: str, array_names: Set[str]
) -> Set[str]:
    """Scoped scalar symbols privatizable at ``loop_id``.

    ``array_names`` distinguishes global arrays (never privatizable here)
    from frame-scoped scalars (``fn::var`` symbols).
    """
    kinds_by_symbol = report.symbols_carried_by(loop_id)
    out: Set[str] = set()
    for symbol, kinds in kinds_by_symbol.items():
        if symbol in array_names:
            continue
        if DepKind.RAW in kinds:
            continue  # value flows across iterations: not privatizable
        out.add(symbol)
    return out
