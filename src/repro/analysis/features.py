"""Dynamic loop features — Table I of the paper — plus per-node features.

Table I features per loop:

=============  =============================================================
N_Inst         number of IR instructions within the loop body (static)
exec_times     total number of iterations the loop executed
CFL            critical path length of the per-iteration dependence graph
ESP            estimated speedup from Amdahl's law using CFL and graph width
incoming_dep   dependences whose source is outside the loop, sink inside
internal_dep   dependences with both endpoints inside the loop
outgoing_dep   dependences whose source is inside, sink outside
=============  =============================================================

ESP follows the paper's description ("a heuristic calculated using the
maximum breadth and critical path length of the dependency graph and
Amdahl's Law"): with per-iteration work ``W`` and critical path ``C``, the
parallelizable fraction is ``p = 1 - C/W`` and the available processor count
is the dependence-graph width ``W/C``; ESP = ``1 / ((1-p) + p/width)``.

Per-CU node features (used in the node-feature view alongside inst2vec):
instruction count, execution count, and in/out dependence degrees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.critical_path import critical_path_length, dependence_dag
from repro.ir.linear import IRProgram, Opcode
from repro.peg.graph import EdgeKind, NodeKind, PEG
from repro.profiler.report import ProfileReport
from repro.profiler.static_info import loop_instr_keys

#: Canonical ordering of the Table I feature vector.
FEATURE_NAMES = (
    "n_inst",
    "exec_times",
    "cfl",
    "esp",
    "incoming_dep",
    "internal_dep",
    "outgoing_dep",
)

_PSEUDO = {Opcode.LOOPENTER, Opcode.LOOPNEXT, Opcode.LOOPEXIT}


@dataclass
class LoopFeatures:
    """Table I feature vector for one loop."""

    loop_id: str
    n_inst: int
    exec_times: int
    cfl: int
    esp: float
    incoming_dep: int
    internal_dep: int
    outgoing_dep: int

    def as_array(self) -> np.ndarray:
        return np.array(
            [getattr(self, name) for name in FEATURE_NAMES], dtype=np.float64
        )

    def as_dict(self) -> Dict[str, float]:
        return {name: float(getattr(self, name)) for name in FEATURE_NAMES}


def loop_features(
    program: IRProgram, report: ProfileReport, loop_id: str
) -> LoopFeatures:
    """Compute the Table I features of ``loop_id``."""
    info = program.all_loops()[loop_id]
    fn = program.function(info.function)
    keys = loop_instr_keys(fn, loop_id)

    n_inst = sum(
        1
        for block in fn.blocks
        for instr in block.instrs
        if (fn.name, instr.iid) in keys and instr.opcode not in _PSEUDO
    )
    stats = report.loop_stats.get(loop_id)
    exec_times = stats.total_iterations if stats is not None else 0

    cfl = critical_path_length(fn, loop_id, report)
    nodes, _ = dependence_dag(fn, loop_id, report)
    work = len(nodes)
    esp = _estimated_speedup(work, cfl)

    incoming = internal = outgoing = 0
    for (src, dst, _kind), dep in report.deps.items():
        src_in = src in keys
        dst_in = dst in keys
        if src_in and dst_in:
            internal += 1
        elif dst_in:
            incoming += 1
        elif src_in:
            outgoing += 1

    return LoopFeatures(
        loop_id=loop_id,
        n_inst=n_inst,
        exec_times=exec_times,
        cfl=cfl,
        esp=esp,
        incoming_dep=incoming,
        internal_dep=internal,
        outgoing_dep=outgoing,
    )


def _estimated_speedup(work: int, cfl: int) -> float:
    """Amdahl's-law speedup estimate from per-iteration work and CFL."""
    if work <= 0 or cfl <= 0:
        return 1.0
    width = work / cfl
    serial_fraction = cfl / work
    parallel_fraction = 1.0 - serial_fraction
    denom = serial_fraction + (parallel_fraction / max(width, 1.0))
    return 1.0 / denom if denom > 0 else float(work)


def attach_node_features(peg: PEG, program: IRProgram, report: ProfileReport) -> None:
    """Populate ``node.features`` for every PEG node in place.

    CU nodes get local dynamic features (size, execution count, dependence
    degrees); LOOP nodes get the full Table I vector; FUNC nodes get
    aggregate size features.  All features use log1p compression so the GCNs
    see comparable magnitudes across trip counts.
    """
    loop_cache: Dict[str, LoopFeatures] = {}
    for node in peg.nodes.values():
        if node.kind is NodeKind.CU:
            in_deps = sum(
                e.total_deps for e in peg.in_edges(node.node_id, EdgeKind.DEP)
            )
            out_deps = sum(
                e.total_deps for e in peg.out_edges(node.node_id, EdgeKind.DEP)
            )
            carried = sum(
                1
                for e in peg.in_edges(node.node_id, EdgeKind.DEP)
                + peg.out_edges(node.node_id, EdgeKind.DEP)
                if e.carried_loops
            )
            node.features = {
                "n_inst": float(len(node.statements)),
                "exec_times": math.log1p(node.exec_count),
                "cfl": 0.0,
                "esp": 0.0,
                "incoming_dep": math.log1p(in_deps),
                "internal_dep": float(carried),
                "outgoing_dep": math.log1p(out_deps),
            }
        elif node.kind is NodeKind.LOOP and node.loop_id is not None:
            if node.loop_id not in loop_cache:
                loop_cache[node.loop_id] = loop_features(
                    program, report, node.loop_id
                )
            feats = loop_cache[node.loop_id]
            node.features = {
                "n_inst": math.log1p(feats.n_inst),
                "exec_times": math.log1p(feats.exec_times),
                "cfl": math.log1p(feats.cfl),
                "esp": math.log1p(feats.esp),
                "incoming_dep": math.log1p(feats.incoming_dep),
                "internal_dep": math.log1p(feats.internal_dep),
                "outgoing_dep": math.log1p(feats.outgoing_dep),
            }
        else:
            total = sum(
                len(peg.nodes[c].statements) for c in peg.children(node.node_id)
            )
            node.features = {name: 0.0 for name in FEATURE_NAMES}
            node.features["n_inst"] = math.log1p(total)
