"""Per-loop sub-PEG extraction.

"We divide the PEG graph to be different sub-graphs.  Each loop and the node
within the loop is a sub-PEG for classification." (paper, Fig. 5 caption)

A loop's sub-PEG is its loop node plus all hierarchy descendants (nested
loops and their CUs) and every edge among them.  ``include_context`` adds the
1-hop dependence frontier — the CUs outside the loop that dependences connect
to — which the paper's future-work section motivates; the default matches the
paper (no context).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.errors import GraphError
from repro.peg.builder import loop_node_id
from repro.peg.graph import EdgeKind, NodeKind, PEG


def loop_subpeg(peg: PEG, loop_id: str, include_context: bool = False) -> PEG:
    """The classification sub-PEG of ``loop_id``."""
    root = loop_node_id(loop_id)
    if root not in peg:
        raise GraphError(f"PEG {peg.name!r} has no loop node for {loop_id!r}")
    keep: Set[str] = {root}
    keep.update(peg.descendants(root))
    if include_context:
        frontier: Set[str] = set()
        for nid in keep:
            for edge in peg.out_edges(nid, EdgeKind.DEP):
                frontier.add(edge.dst)
            for edge in peg.in_edges(nid, EdgeKind.DEP):
                frontier.add(edge.src)
        keep |= frontier
    return peg.subgraph(keep, name=f"{peg.name}/{loop_id}")


def all_loop_subpegs(
    peg: PEG, include_context: bool = False
) -> Dict[str, PEG]:
    """Sub-PEGs for every loop node in ``peg``, keyed by loop id."""
    out: Dict[str, PEG] = {}
    for node in peg.loop_nodes():
        if node.loop_id is None:
            continue
        out[node.loop_id] = loop_subpeg(peg, node.loop_id, include_context)
    return out
