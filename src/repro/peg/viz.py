"""PEG export: Graphviz DOT text and networkx graphs (Fig. 5 rendering)."""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.peg.graph import EdgeKind, NodeKind, PEG

_NODE_STYLE = {
    NodeKind.FUNC: ("box", "lightblue"),
    NodeKind.LOOP: ("ellipse", "lightyellow"),
    NodeKind.CU: ("ellipse", "white"),
}


def to_dot(peg: PEG, title: Optional[str] = None) -> str:
    """Render ``peg`` as Graphviz DOT (CUs as line-range nodes like Fig. 5)."""
    lines = [f'digraph "{title or peg.name}" {{', "  rankdir=TB;"]
    for node in peg.nodes.values():
        shape, fill = _NODE_STYLE[node.kind]
        if node.kind is NodeKind.CU:
            label = f"{node.start_line}:{node.end_line}"
        elif node.kind is NodeKind.LOOP:
            label = f"loop {node.loop_id}"
        else:
            label = f"func {node.function}"
        lines.append(
            f'  "{node.node_id}" [label="{label}", shape={shape}, '
            f'style=filled, fillcolor={fill}];'
        )
    for edge in peg.edges:
        if edge.kind is EdgeKind.CHILD:
            attrs = "style=dashed, color=gray"
        else:
            kinds = ",".join(sorted(edge.dep_counts))
            carried = " carried" if edge.carried_loops else ""
            attrs = f'label="{kinds}{carried}", color=black'
        lines.append(f'  "{edge.src}" -> "{edge.dst}" [{attrs}];')
    lines.append("}")
    return "\n".join(lines)


def to_networkx(peg: PEG) -> nx.MultiDiGraph:
    """Convert ``peg`` to a networkx MultiDiGraph with full attributes."""
    graph = nx.MultiDiGraph(name=peg.name)
    for node in peg.nodes.values():
        graph.add_node(
            node.node_id,
            kind=node.kind.value,
            function=node.function,
            start=node.start_line,
            end=node.end_line,
            exec_count=node.exec_count,
            loop_id=node.loop_id,
        )
    for edge in peg.edges:
        graph.add_edge(
            edge.src,
            edge.dst,
            kind=edge.kind.value,
            dep_counts=dict(edge.dep_counts),
            carried=bool(edge.carried_loops),
        )
    return graph
