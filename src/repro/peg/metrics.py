"""Graph metrics over PEGs and sub-PEGs.

Quantities used when characterizing graph populations (Park et al. 2012,
the paper's reference [41], argues graph-based characterization beats
non-graph features): size, dependence density, hierarchy depth, degree
statistics, and carried-dependence density.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.peg.graph import EdgeKind, NodeKind, PEG


@dataclass
class PEGMetrics:
    """Structural summary of one PEG (or sub-PEG)."""

    n_nodes: int
    n_cus: int
    n_loops: int
    n_dep_edges: int
    n_child_edges: int
    dep_density: float          # dep edges / possible CU pairs
    carried_fraction: float     # dep edges carrying at least one loop
    max_hierarchy_depth: int
    mean_degree: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "n_nodes": float(self.n_nodes),
            "n_cus": float(self.n_cus),
            "n_loops": float(self.n_loops),
            "n_dep_edges": float(self.n_dep_edges),
            "n_child_edges": float(self.n_child_edges),
            "dep_density": self.dep_density,
            "carried_fraction": self.carried_fraction,
            "max_hierarchy_depth": float(self.max_hierarchy_depth),
            "mean_degree": self.mean_degree,
        }


def peg_metrics(peg: PEG) -> PEGMetrics:
    """Compute structural metrics of ``peg``."""
    cus = peg.nodes_of_kind(NodeKind.CU)
    loops = peg.loop_nodes()
    dep_edges = peg.dep_edges()
    child_edges = [e for e in peg.edges if e.kind is EdgeKind.CHILD]

    n_cus = len(cus)
    possible_pairs = n_cus * (n_cus - 1)
    density = len(dep_edges) / possible_pairs if possible_pairs else 0.0
    carried = sum(1 for e in dep_edges if e.carried_loops)
    carried_fraction = carried / len(dep_edges) if dep_edges else 0.0

    degrees = [
        len(peg.out_edges(nid)) + len(peg.in_edges(nid)) for nid in peg.nodes
    ]
    mean_degree = float(np.mean(degrees)) if degrees else 0.0

    return PEGMetrics(
        n_nodes=len(peg),
        n_cus=n_cus,
        n_loops=len(loops),
        n_dep_edges=len(dep_edges),
        n_child_edges=len(child_edges),
        dep_density=density,
        carried_fraction=carried_fraction,
        max_hierarchy_depth=hierarchy_depth(peg),
        mean_degree=mean_degree,
    )


def hierarchy_depth(peg: PEG) -> int:
    """Longest root-to-leaf chain of CHILD edges."""
    roots = [
        nid
        for nid in peg.nodes
        if not peg.in_edges(nid, EdgeKind.CHILD)
    ]
    best = 0
    for root in roots:
        stack = [(root, 1)]
        while stack:
            node, depth = stack.pop()
            best = max(best, depth)
            for child in peg.children(node):
                stack.append((child, depth + 1))
    return best


def population_summary(pegs: List[PEG]) -> Dict[str, float]:
    """Mean metrics over a population of (sub-)PEGs."""
    if not pegs:
        return {}
    rows = [peg_metrics(p).as_dict() for p in pegs]
    keys = rows[0].keys()
    return {key: float(np.mean([r[key] for r in rows])) for key in keys}
