"""Program Execution Graph (PEG) construction and queries."""

from repro.peg.graph import PEG, PEGEdge, PEGNode, NodeKind, EdgeKind
from repro.peg.builder import build_peg
from repro.peg.subgraph import loop_subpeg, all_loop_subpegs
from repro.peg.viz import to_dot, to_networkx
from repro.peg.metrics import PEGMetrics, peg_metrics, hierarchy_depth, population_summary

__all__ = [
    "PEG", "PEGEdge", "PEGNode", "NodeKind", "EdgeKind",
    "build_peg", "loop_subpeg", "all_loop_subpegs",
    "to_dot", "to_networkx",
    "PEGMetrics", "peg_metrics", "hierarchy_depth", "population_summary",
]
