"""The PEG data structure.

A PEG is a directed graph whose nodes are CUs, loops, and functions, and
whose edges are either *hierarchy* (parent contains child) or *dependence*
(aggregated RAW/WAR/WAW between CUs), matching Section III-A/III-D of the
paper: nodes carry an ``<ID, START, END>`` triple, dependence edges carry a
``<SINK, TYPE, SOURCE>`` triple (we store source/sink plus per-kind counts).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import GraphError


class NodeKind(enum.Enum):
    CU = "cu"
    LOOP = "loop"
    FUNC = "func"


class EdgeKind(enum.Enum):
    CHILD = "child"      # hierarchy: parent contains child
    DEP = "dep"          # aggregated data dependence


@dataclass
class PEGNode:
    """One PEG node.

    ``statements`` holds the normalized LinearIR statement strings of the
    node's instructions (the inst2vec token sequence); ``features`` holds the
    dynamic features attached by :mod:`repro.analysis.features`.
    """

    node_id: str
    kind: NodeKind
    function: str
    start_line: int = 0
    end_line: int = 0
    statements: List[str] = field(default_factory=list)
    instr_keys: List[Tuple[str, int]] = field(default_factory=list)
    loop_id: Optional[str] = None     # for LOOP nodes: the loop's id
    exec_count: int = 0
    features: Dict[str, float] = field(default_factory=dict)

    @property
    def triple(self) -> Tuple[str, int, int]:
        """The paper's <ID, START, END> node attribute."""
        return (self.node_id, self.start_line, self.end_line)


@dataclass
class PEGEdge:
    """One PEG edge; for DEP edges ``dep_counts`` maps kind name -> count and
    ``carried_loops`` lists loops carrying at least one underlying dependence."""

    src: str
    dst: str
    kind: EdgeKind
    dep_counts: Dict[str, int] = field(default_factory=dict)
    carried_loops: Set[str] = field(default_factory=set)

    @property
    def total_deps(self) -> int:
        return sum(self.dep_counts.values())


class PEG:
    """A Program Execution Graph."""

    def __init__(self, name: str = "peg") -> None:
        self.name = name
        self.nodes: Dict[str, PEGNode] = {}
        self.edges: List[PEGEdge] = []
        self._out: Dict[str, List[int]] = {}
        self._in: Dict[str, List[int]] = {}
        self._edge_index: Dict[Tuple[str, str, EdgeKind], int] = {}

    # -- construction ------------------------------------------------------

    def add_node(self, node: PEGNode) -> PEGNode:
        if node.node_id in self.nodes:
            raise GraphError(f"duplicate PEG node {node.node_id!r}")
        self.nodes[node.node_id] = node
        self._out[node.node_id] = []
        self._in[node.node_id] = []
        return node

    def add_edge(
        self,
        src: str,
        dst: str,
        kind: EdgeKind,
    ) -> PEGEdge:
        """Add (or fetch the existing) edge of ``kind`` between src and dst."""
        if src not in self.nodes or dst not in self.nodes:
            raise GraphError(f"edge {src!r}->{dst!r} references unknown node")
        key = (src, dst, kind)
        idx = self._edge_index.get(key)
        if idx is not None:
            return self.edges[idx]
        edge = PEGEdge(src, dst, kind)
        idx = len(self.edges)
        self.edges.append(edge)
        self._edge_index[key] = idx
        self._out[src].append(idx)
        self._in[dst].append(idx)
        return edge

    # -- queries ---------------------------------------------------------------

    def node(self, node_id: str) -> PEGNode:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise GraphError(f"no PEG node {node_id!r}") from None

    def out_edges(self, node_id: str, kind: Optional[EdgeKind] = None) -> List[PEGEdge]:
        edges = [self.edges[i] for i in self._out.get(node_id, ())]
        if kind is not None:
            edges = [e for e in edges if e.kind is kind]
        return edges

    def in_edges(self, node_id: str, kind: Optional[EdgeKind] = None) -> List[PEGEdge]:
        edges = [self.edges[i] for i in self._in.get(node_id, ())]
        if kind is not None:
            edges = [e for e in edges if e.kind is kind]
        return edges

    def children(self, node_id: str) -> List[str]:
        return [e.dst for e in self.out_edges(node_id, EdgeKind.CHILD)]

    def descendants(self, node_id: str) -> List[str]:
        """All hierarchy descendants of ``node_id`` (excluding itself)."""
        out: List[str] = []
        stack = self.children(node_id)
        seen: Set[str] = set()
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            out.append(nid)
            stack.extend(self.children(nid))
        return out

    def nodes_of_kind(self, kind: NodeKind) -> List[PEGNode]:
        return [n for n in self.nodes.values() if n.kind is kind]

    def loop_nodes(self) -> List[PEGNode]:
        return self.nodes_of_kind(NodeKind.LOOP)

    def dep_edges(self) -> List[PEGEdge]:
        return [e for e in self.edges if e.kind is EdgeKind.DEP]

    def subgraph(self, node_ids: Iterable[str], name: Optional[str] = None) -> "PEG":
        """Induced subgraph over ``node_ids`` (copies node objects by reference)."""
        keep = set(node_ids)
        missing = keep - set(self.nodes)
        if missing:
            raise GraphError(f"subgraph references unknown nodes {sorted(missing)}")
        sub = PEG(name or f"{self.name}/sub")
        for nid in self.nodes:
            if nid in keep:
                # reference the same node objects: sub-PEGs are views
                sub.nodes[nid] = self.nodes[nid]
                sub._out[nid] = []
                sub._in[nid] = []
        for edge in self.edges:
            if edge.src in keep and edge.dst in keep:
                idx = len(sub.edges)
                sub.edges.append(edge)
                sub._edge_index[(edge.src, edge.dst, edge.kind)] = idx
                sub._out[edge.src].append(idx)
                sub._in[edge.dst].append(idx)
        return sub

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self.nodes

    def summary(self) -> str:
        kinds = {k: len(self.nodes_of_kind(k)) for k in NodeKind}
        n_dep = len(self.dep_edges())
        return (
            f"PEG({self.name}: {kinds[NodeKind.FUNC]} funcs, "
            f"{kinds[NodeKind.LOOP]} loops, {kinds[NodeKind.CU]} CUs, "
            f"{n_dep} dep edges, {len(self.edges) - n_dep} child edges)"
        )
