"""PEG construction: merge the CU graph with profiled dependences (Fig. 2).

``build_peg`` takes the lowered program and the dynamic profile and produces
the full PEG: function nodes at the top, loop nodes per loop, CU nodes at the
leaves, hierarchy (CHILD) edges following the loop tree, and DEP edges
aggregating instruction-level dependences up to CU granularity.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cu.builder import CU, build_cus, cu_index_by_instr
from repro.ir.linear import IRProgram
from repro.ir.printer import statement_text
from repro.peg.graph import EdgeKind, NodeKind, PEG, PEGNode
from repro.profiler.report import ProfileReport


def loop_node_id(loop_id: str) -> str:
    return f"loop:{loop_id}"


def func_node_id(fn_name: str) -> str:
    return f"func:{fn_name}"


def build_peg(program: IRProgram, report: ProfileReport) -> PEG:
    """Build the full PEG for ``program`` using the dynamic ``report``."""
    peg = PEG(name=program.name)

    all_cus: List[CU] = []
    for fn in program.functions.values():
        fn_node = PEGNode(
            node_id=func_node_id(fn.name),
            kind=NodeKind.FUNC,
            function=fn.name,
            statements=["func"],
        )
        peg.add_node(fn_node)
        cus = build_cus(fn)
        all_cus.extend(cus)

        # loop nodes
        for info in fn.loops.values():
            stats = report.loop_stats.get(info.loop_id)
            node = PEGNode(
                node_id=loop_node_id(info.loop_id),
                kind=NodeKind.LOOP,
                function=fn.name,
                start_line=info.line,
                end_line=info.end_line,
                statements=["loop"],
                loop_id=info.loop_id,
                exec_count=stats.total_iterations if stats else 0,
            )
            peg.add_node(node)

        # loop hierarchy
        for info in fn.loops.values():
            parent = (
                loop_node_id(info.parent)
                if info.parent is not None
                else func_node_id(fn.name)
            )
            peg.add_edge(parent, loop_node_id(info.loop_id), EdgeKind.CHILD)

        # CU nodes + hierarchy
        for cu in cus:
            exec_count = sum(
                report.exec_counts.get(key, 0) for key in cu.instr_keys
            )
            node = PEGNode(
                node_id=cu.cu_id,
                kind=NodeKind.CU,
                function=fn.name,
                start_line=cu.start_line,
                end_line=cu.end_line,
                statements=[statement_text(i) for i in cu.instrs],
                instr_keys=list(cu.instr_keys),
                exec_count=exec_count,
            )
            peg.add_node(node)
            parent = (
                loop_node_id(cu.loop_id)
                if cu.loop_id is not None
                else func_node_id(fn.name)
            )
            peg.add_edge(parent, cu.cu_id, EdgeKind.CHILD)

    # dependence edges, aggregated to CU level
    instr_to_cu = cu_index_by_instr(all_cus)
    for (src_key, dst_key, kind), dep in report.deps.items():
        src_cu = instr_to_cu.get(src_key)
        dst_cu = instr_to_cu.get(dst_key)
        if src_cu is None or dst_cu is None:
            continue  # accesses outside any CU (should not happen for mem ops)
        edge = peg.add_edge(src_cu, dst_cu, EdgeKind.DEP)
        edge.dep_counts[kind.value] = edge.dep_counts.get(kind.value, 0) + dep.count
        edge.carried_loops.update(dep.carried.keys())

    return peg
