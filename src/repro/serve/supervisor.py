"""Pre-forked engine worker processes and the supervisor that keeps them up.

The multi-process half of the serving fleet (:mod:`repro.serve.fleet`):
each worker slot holds one OS process running :func:`worker_main` — a
serial loop over a duplex pipe that builds its *own*
:class:`~repro.runtime.engine.Engine` (own FeatureCache, own GIL) and
answers framed predict/ping/reload/stats/shutdown requests
(:mod:`repro.serve.wire`, "worker IPC protocol").

The :class:`Supervisor` reuses the process-pool hardening idioms of
:mod:`repro.dataset.parallel` in long-lived form:

* **startup timeout** — a spawned worker must answer its first ping within
  ``worker_start_timeout_s`` or the spawn is declared failed;
* **request timeout + liveness polling** — the supervisor-side
  :class:`WorkerHandle` waits for replies in short poll slices, checking
  the process between slices, so a SIGKILLed worker is detected even when
  pipe EOF never arrives (a sibling forked later may hold a copy of the
  write end — the classic inherited-fd hazard);
* **bounded retries** — :meth:`Supervisor.predict` re-sends a batch to the
  slot's replacement worker up to ``worker_retries`` times
  (the BrokenProcessPool-requeue analogue) before failing it;
* **dead-worker respawn** — a monitor thread polls worker liveness every
  ``health_interval_s`` and respawns dead slots; the predict path also
  triggers an immediate respawn on failure so retries do not wait out the
  poll period.

Rolling restart / hot weight reload is blue-green per slot: spawn the
replacement, warm it (optionally loading new weights first), atomically
swap it into the routing slot, then ask the old worker to drain and exit.
In-flight requests on the old worker complete — its loop is serial, so the
shutdown frame queues behind them — which is what makes a whole-fleet
reload observable as zero dropped requests.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ServeError, WireError, WorkerExitedError
from repro.serve import wire
from repro.serve.config import ServeConfig
from repro.serve.metrics import FleetMetrics

#: poll slice while waiting on a worker reply — short enough that a killed
#: worker is noticed promptly, long enough to stay off the scheduler's back
_POLL_SLICE_S = 0.05


@dataclass
class WorkerPayload:
    """Everything a worker needs to build its own Engine after fork/spawn.

    Deliberately *not* an Engine: the engine holds locks and a live
    FeatureCache, neither of which should cross a process boundary.  Every
    worker builds a fresh engine (fresh per-shard cache) from the shared
    model + extractors.
    """

    model: Any
    inst2vec: Any = None
    walk_space: Any = None
    batch_size: int = 32
    gamma: int = 30
    walk_seed: int = 0
    compile: bool = True
    precision: str = "exact"
    calibration: Any = None  # Optional[repro.nn.quantize.Calibration]

    @classmethod
    def from_engine(cls, engine) -> "WorkerPayload":
        return cls(
            model=engine.model,
            inst2vec=engine.inst2vec,
            walk_space=engine.walk_space,
            batch_size=engine.batch_size,
            gamma=engine.gamma,
            walk_seed=engine.walk_seed,
            compile=getattr(engine, "compile", True),
            precision=getattr(engine, "precision", "exact"),
            calibration=getattr(engine, "calibration", None),
        )

    def build_engine(self):
        from repro.runtime.engine import Engine

        return Engine(
            self.model,
            inst2vec=self.inst2vec,
            walk_space=self.walk_space,
            batch_size=self.batch_size,
            gamma=self.gamma,
            walk_seed=self.walk_seed,
            compile=self.compile,
            precision=self.precision,
            calibration=self.calibration,
        )


def _apply_weights(model, weights: Dict[str, Any]) -> None:
    """Load a ``{name: ndarray}`` checkpoint into ``model`` in place.

    Same mismatch contract as :func:`repro.nn.serialize.load_params`, but
    over an in-memory dict (the reload frame's payload).
    """
    named = model.named_parameters()
    missing = set(named) - set(weights)
    extra = set(weights) - set(named)
    if missing or extra:
        raise ServeError(
            f"weight reload mismatch: missing={sorted(missing)} "
            f"unexpected={sorted(extra)}"
        )
    for name, param in named.items():
        data = weights[name]
        if data.shape != param.data.shape:
            raise ServeError(
                f"weight reload shape mismatch for {name}: "
                f"{data.shape} vs {param.data.shape}"
            )
        param.data[...] = data


def worker_main(conn, slot: int, generation: int, payload: WorkerPayload) -> None:
    """One engine worker: serial frame loop until shutdown or pipe EOF.

    Runs as a child process's target.  SIGINT is ignored so a Ctrl-C against
    the foreground process group cannot take workers down mid-batch — the
    supervisor drains them with shutdown frames instead.  SIGTERM is reset
    to the default disposition (a fork may have inherited the supervisor's
    own handler): a worker targeted directly just dies and is respawned,
    and the interpreter's process-cleanup ``terminate()`` at supervisor
    exit still works as a last-resort backstop.
    """
    import signal as _signal

    try:
        _signal.signal(_signal.SIGINT, _signal.SIG_IGN)
        _signal.signal(_signal.SIGTERM, _signal.SIG_DFL)
    except (OSError, ValueError):  # pragma: no cover - exotic platforms
        pass

    engine = payload.build_engine()
    try:
        # record the forward tapes (full batch + single graph) before the
        # worker reports ready, so first requests never pay tracing latency
        engine.warm_up()
    except Exception:  # pragma: no cover - defensive: serve uncompiled
        engine.compile = False

    def info() -> Dict[str, Any]:
        return {
            "pid": os.getpid(),
            "slot": slot,
            "generation": generation,
            "graphs": engine.stats.graphs,
            "batches": engine.stats.batches,
        }

    while True:
        try:
            frame = conn.recv()
        except (EOFError, OSError):
            break  # supervisor went away: nothing left to serve
        try:
            kind, req_id, body = wire.check_frame(frame, wire.IPC_REQUEST_KINDS)
        except WireError as exc:
            try:
                conn.send(wire.make_frame(wire.IPC_ERR, -1, str(exc)))
            except (BrokenPipeError, OSError):
                break
            continue
        try:
            if kind == wire.IPC_PREDICT:
                # payload is a plain item list (legacy) or a dict
                # {"items": [...], "precision": "fast"} (precision-tiered)
                if isinstance(body, dict):
                    items = body["items"]
                    precision = body.get("precision")
                else:
                    items, precision = body, None
                labels = [
                    int(label)
                    for label in engine.predict_many(
                        items, batch_size=max(1, len(items)),
                        precision=precision,
                    )
                ]
                reply = wire.make_frame(wire.IPC_OK, req_id, labels)
            elif kind == wire.IPC_PING:
                reply = wire.make_frame(wire.IPC_OK, req_id, info())
            elif kind == wire.IPC_RELOAD:
                _apply_weights(engine.model, body)
                # baked int8 weights in fast tapes are now stale
                engine.reset_fast_tapes()
                reply = wire.make_frame(wire.IPC_OK, req_id, info())
            elif kind == wire.IPC_STATS:
                stats = engine.stats
                reply = wire.make_frame(wire.IPC_OK, req_id, {
                    "graphs": stats.graphs,
                    "batches": stats.batches,
                    "seconds": stats.seconds,
                    "cache_hits": stats.cache_hits,
                    "cache_misses": stats.cache_misses,
                })
            else:  # shutdown
                reply = wire.make_frame(wire.IPC_OK, req_id, None)
        except Exception as exc:  # noqa: BLE001 - reported, worker keeps serving
            reply = wire.make_frame(
                wire.IPC_ERR, req_id, f"{type(exc).__name__}: {exc}"
            )
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
        if kind == wire.IPC_SHUTDOWN:
            break
    conn.close()


class WorkerHandle:
    """Supervisor-side endpoint of one live worker process.

    ``request`` is synchronous and serialized by a per-handle lock — each
    shard's MicroBatcher dispatches one batch at a time from an executor
    thread, so there is never useful concurrency to exploit on one pipe,
    and serialization is what lets a blue-green swap drain the old worker
    by simply queueing a shutdown frame behind the in-flight request.
    """

    def __init__(self, slot: int, generation: int, process, conn) -> None:
        self.slot = slot
        self.generation = generation
        self.process = process
        self.conn = conn
        self._lock = threading.Lock()
        self._req_ids = itertools.count()
        self._broken = False

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def alive(self) -> bool:
        return not self._broken and self.process.is_alive()

    def request(self, kind: str, payload: Any = None,
                timeout: Optional[float] = None) -> Any:
        """One round-trip -> the reply payload.

        Raises :class:`WorkerExitedError` when the worker dies, the pipe
        breaks, or ``timeout`` elapses (the worker is presumed hung and is
        killed so its slot can be respawned); :class:`ServeError` when the
        worker answered with an application-level error.
        """
        with self._lock:
            if self._broken:
                raise WorkerExitedError(
                    f"worker {self.slot}#{self.generation} already failed"
                )
            req_id = next(self._req_ids)
            try:
                self.conn.send(wire.make_frame(kind, req_id, payload))
            except (BrokenPipeError, OSError) as exc:
                self._mark_broken()
                raise WorkerExitedError(
                    f"worker {self.slot}#{self.generation} pipe closed: {exc}"
                ) from None
            deadline = (
                time.monotonic() + timeout if timeout is not None else None
            )
            while True:
                remaining = (
                    deadline - time.monotonic() if deadline is not None
                    else _POLL_SLICE_S
                )
                if deadline is not None and remaining <= 0:
                    self._mark_broken(kill=True)
                    raise WorkerExitedError(
                        f"worker {self.slot}#{self.generation} silent for "
                        f"{timeout:g}s on {kind!r}; killed"
                    )
                try:
                    ready = self.conn.poll(min(remaining, _POLL_SLICE_S))
                except (BrokenPipeError, OSError):
                    ready = False
                if not ready:
                    if not self.process.is_alive():
                        # EOF may never arrive when a later-forked sibling
                        # inherited our write end; the sentinel is truth
                        self._mark_broken()
                        raise WorkerExitedError(
                            f"worker {self.slot}#{self.generation} "
                            f"(pid {self.pid}) died mid-{kind}"
                        )
                    continue
                try:
                    frame = self.conn.recv()
                except (EOFError, OSError) as exc:
                    self._mark_broken()
                    raise WorkerExitedError(
                        f"worker {self.slot}#{self.generation} pipe EOF: {exc}"
                    ) from None
                reply_kind, reply_id, body = wire.check_frame(
                    frame, wire.IPC_REPLY_KINDS
                )
                if reply_id != req_id:
                    continue  # stale reply from a timed-out predecessor
                if reply_kind == wire.IPC_ERR:
                    raise ServeError(
                        f"worker {self.slot}#{self.generation}: {body}"
                    )
                return body

    def _mark_broken(self, kill: bool = False) -> None:
        self._broken = True
        if kill and self.process.is_alive():
            try:
                self.process.kill()
            except (OSError, ValueError):  # pragma: no cover - already gone
                pass

    def shutdown(self, timeout: float = 5.0) -> None:
        """Graceful drain: queue a shutdown frame, join, escalate to kill."""
        try:
            self.request(wire.IPC_SHUTDOWN, timeout=timeout)
        except (ServeError, WorkerExitedError):
            pass  # already gone or wedged: escalate below
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=timeout)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - platform dependent
            pass


class Supervisor:
    """N worker slots, health-checked, respawned, and swappable in place.

    Parameters
    ----------
    payload:
        :class:`WorkerPayload` shipped to every spawned worker.
    config:
        Fleet knobs (``fleet_workers``, timeouts, retries) — see
        :class:`~repro.serve.config.ServeConfig`.
    metrics:
        Fleet metric families; a private registry when omitted.
    """

    def __init__(
        self,
        payload: WorkerPayload,
        config: Optional[ServeConfig] = None,
        metrics: Optional[FleetMetrics] = None,
    ) -> None:
        self.payload = payload
        self.config = config if config is not None else ServeConfig()
        self.metrics = metrics if metrics is not None else FleetMetrics()
        self.n_workers = self.config.fleet_workers
        self._handles: List[Optional[WorkerHandle]] = [None] * self.n_workers
        self._ready: List[threading.Event] = [
            threading.Event() for _ in range(self.n_workers)
        ]
        self._generations = itertools.count(1)
        self._lock = threading.Lock()          # guards slot swaps
        self._spawn_locks = [threading.Lock() for _ in range(self.n_workers)]
        self._monitor: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._running = False
        self._mp = self._pick_context()
        self.metrics.fleet_size.set(self.n_workers)
        for slot in range(self.n_workers):
            # pre-register per-slot series so dashboards see explicit zeros
            # from the first scrape, not gaps until the first restart
            self.metrics.worker_up(slot).set(0)
            self.metrics.worker_restarts(slot)

    @staticmethod
    def _pick_context():
        import multiprocessing as mp

        # fork is markedly cheaper than spawn and inherits the model with
        # no pickling; fall back to the platform default elsewhere (the
        # WorkerPayload is picklable either way)
        if "fork" in mp.get_all_start_methods():
            return mp.get_context("fork")
        return mp.get_context()

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        if self._running:
            raise ServeError("supervisor already started")
        self._running = True
        self._stop.clear()
        try:
            for slot in range(self.n_workers):
                self._spawn_into_slot(slot)
        except Exception:
            self._running = False
            self._teardown_all()
            raise
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-fleet-monitor", daemon=True
        )
        self._monitor.start()

    def stop(self) -> None:
        """Drain every worker and stop the monitor; idempotent."""
        if not self._running:
            return
        self._running = False
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=10.0)
            self._monitor = None
        self._teardown_all()

    def _teardown_all(self) -> None:
        for slot in range(self.n_workers):
            with self._lock:
                handle = self._handles[slot]
                self._handles[slot] = None
                self._ready[slot].clear()
            if handle is not None:
                handle.shutdown()
                self.metrics.worker_up(slot).set(0)

    # -- spawning / monitoring -----------------------------------------------

    def _spawn(self, slot: int, weights: Optional[Dict] = None) -> WorkerHandle:
        """Fork one worker for ``slot`` and warm it (ping; optional reload).

        The returned handle is *not* yet installed in the routing table —
        blue-green swaps warm the replacement before exposing it.
        """
        generation = next(self._generations)
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        process = self._mp.Process(
            target=worker_main,
            args=(child_conn, slot, generation, self.payload),
            name=f"repro-serve-worker-{slot}-{generation}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # parent keeps exactly one end
        handle = WorkerHandle(slot, generation, process, parent_conn)
        try:
            handle.request(
                wire.IPC_PING, timeout=self.config.worker_start_timeout_s
            )
            if weights is not None:
                handle.request(
                    wire.IPC_RELOAD, weights,
                    timeout=self.config.worker_start_timeout_s,
                )
        except ServeError:
            handle.shutdown(timeout=1.0)
            raise
        return handle

    def _spawn_into_slot(self, slot: int, weights: Optional[Dict] = None) -> None:
        handle = self._spawn(slot, weights=weights)
        with self._lock:
            self._handles[slot] = handle
            self._ready[slot].set()
        self.metrics.worker_up(slot).set(1)

    def _respawn_if_current(self, slot: int, dead: WorkerHandle) -> None:
        """Replace ``dead`` unless another thread already swapped the slot.

        Called from both the monitor and the predict retry path; the
        per-slot spawn lock plus the generation check make the two paths
        race-free (at most one replacement per death).
        """
        with self._spawn_locks[slot]:
            with self._lock:
                current = self._handles[slot]
                if current is not dead or not self._running:
                    return
                self._ready[slot].clear()
                self._handles[slot] = None
            self.metrics.worker_up(slot).set(0)
            self.metrics.worker_restarts(slot).inc()
            dead.shutdown(timeout=1.0)
            if not self._running:
                return
            self._spawn_into_slot(slot)

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.config.health_interval_s):
            for slot in range(self.n_workers):
                with self._lock:
                    handle = self._handles[slot]
                if handle is not None and not handle.alive():
                    try:
                        self._respawn_if_current(slot, handle)
                    except ServeError:  # spawn failed: retry next tick
                        pass

    # -- request routing -----------------------------------------------------

    def handle_for(self, slot: int,
                   timeout: Optional[float] = None) -> WorkerHandle:
        """The slot's current live handle, waiting out an in-flight respawn."""
        if not 0 <= slot < self.n_workers:
            raise ServeError(f"no such worker slot: {slot}")
        budget = (
            timeout if timeout is not None
            else self.config.worker_start_timeout_s
        )
        if not self._ready[slot].wait(timeout=budget):
            raise ServeError(
                f"worker slot {slot} unavailable after {budget:g}s"
            )
        with self._lock:
            handle = self._handles[slot]
        if handle is None:
            raise ServeError(f"worker slot {slot} is being replaced")
        return handle

    def predict(self, slot: int, items: Sequence[Any],
                precision: Optional[str] = None) -> List[int]:
        """Classify ``items`` on the slot's worker, surviving worker death.

        The fleet's predict_fn: runs inside a shard batcher's executor
        thread.  A batch lost to a dying/hung worker is re-sent to the
        slot's replacement up to ``worker_retries`` times — the client
        never sees a single worker crash.  ``precision`` pins the worker's
        execution tier for this batch (None = the worker engine's default);
        the legacy plain-list frame is kept for unpinned batches.
        """
        if precision is None:
            payload: Any = list(items)
        else:
            payload = {"items": list(items), "precision": precision}
        attempts = self.config.worker_retries + 1
        last_error: Optional[WorkerExitedError] = None
        for attempt in range(attempts):
            if not self._running:
                raise ServeError("fleet is shutting down")
            try:
                handle = self.handle_for(slot)
            except ServeError as exc:
                last_error = WorkerExitedError(str(exc))
                continue
            try:
                return handle.request(
                    wire.IPC_PREDICT, payload,
                    timeout=self.config.worker_request_timeout_s,
                )
            except WorkerExitedError as exc:
                last_error = exc
                if attempt + 1 < attempts:
                    self.metrics.retried_batches.inc()
                # don't wait for the monitor's next tick
                self._respawn_now_or_pass(slot, handle)
        raise ServeError(
            f"batch failed after {attempts} attempt(s) on worker slot "
            f"{slot}: {last_error}"
        )

    def _respawn_now_or_pass(self, slot: int, dead: WorkerHandle) -> None:
        try:
            self._respawn_if_current(slot, dead)
        except ServeError:
            pass  # monitor keeps retrying; predict's own retry loop decides

    # -- fleet-wide operations -----------------------------------------------

    def rolling_restart(self, weights: Optional[Dict] = None) -> Dict[str, Any]:
        """Blue-green swap every slot, one at a time; zero dropped requests.

        Per slot: spawn + warm the replacement (loading ``weights`` into it
        first when given), atomically swap it into the routing table, then
        drain the old worker (its in-flight batch completes before the
        queued shutdown frame).  With ``weights`` this is a hot model
        reload; without, a plain rolling restart.
        """
        if not self._running:
            raise ServeError("supervisor is not running")
        swapped = []
        for slot in range(self.n_workers):
            with self._spawn_locks[slot]:
                replacement = self._spawn(slot, weights=weights)
                with self._lock:
                    old = self._handles[slot]
                    self._handles[slot] = replacement
                    self._ready[slot].set()
                self.metrics.worker_up(slot).set(1)
                swapped.append({
                    "worker": slot,
                    "old_pid": old.pid if old is not None else None,
                    "new_pid": replacement.pid,
                    "generation": replacement.generation,
                })
            if old is not None:
                old.shutdown()
        self.metrics.reloads.inc()
        return {
            "workers": len(swapped),
            "reloaded_weights": weights is not None,
            "swaps": swapped,
        }

    def reload_weights(self, model) -> Dict[str, Any]:
        """Hot-swap ``model``'s parameters into every worker (blue-green)."""
        weights = {
            name: param.data.copy()
            for name, param in model.named_parameters().items()
        }
        return self.rolling_restart(weights=weights)

    # -- introspection -------------------------------------------------------

    def describe(self) -> List[Dict[str, Any]]:
        """Per-slot status for ``/healthz``: pid, generation, liveness."""
        out = []
        for slot in range(self.n_workers):
            with self._lock:
                handle = self._handles[slot]
            restarts = self.metrics.worker_restarts(slot).value
            if handle is None:
                out.append({
                    "worker": slot, "up": False, "pid": None,
                    "generation": None, "restarts": int(restarts),
                })
            else:
                out.append({
                    "worker": slot,
                    "up": handle.alive(),
                    "pid": handle.pid,
                    "generation": handle.generation,
                    "restarts": int(restarts),
                })
        return out

    def worker_stats(self, slot: int) -> Dict[str, Any]:
        """One worker's cumulative EngineStats (via an IPC stats frame)."""
        return self.handle_for(slot).request(
            wire.IPC_STATS, timeout=self.config.worker_request_timeout_s
        )
