"""Sharded multi-process serving: content-hash routing over a worker fleet.

:class:`FleetService` is the multi-process sibling of
:class:`~repro.serve.service.InferenceService` — the same transport-facing
surface (``classify`` / ``classify_batch`` / ``health`` / ``metrics_text``
/ ``example_payload``), so :class:`~repro.serve.http.HttpServer` and
``serve_forever`` drive either without knowing which they hold.  Behind
that surface the work fans out:

* requests are validated **at the front end, pre-routing** (the 400/422
  lint gate of :mod:`repro.serve.wire` runs before any worker is chosen,
  so malformed traffic never costs a fleet round-trip);
* each decoded graph is routed to a worker slot by a **content hash** of
  its feature arrays (:func:`content_shard`) — the same graph always lands
  on the same worker, so every worker's FeatureCache stays hot on exactly
  its shard of the keyspace;
* each (shard × precision tier) owns a
  :class:`~repro.serve.batcher.MicroBatcher` whose predict_fn is
  :meth:`~repro.serve.supervisor.Supervisor.predict` — the single-process
  batching policy (size-or-window coalescing, admission control,
  deadlines) applies per shard, ``exact`` and ``fast`` requests never
  coalesce into one tape, and worker death mid-batch is retried
  invisibly;
* the degrade-before-shed policy of
  :func:`~repro.serve.service.resolve_precision` watches the fleet-wide
  default-tier queue depth: an unpinned request arriving past the
  threshold is served ``fast`` instead of queueing toward 429/504;
* rolling restart and hot weight reload are one
  :meth:`reload` call away (the ``POST /admin/reload`` route), blue-green
  per slot with zero dropped requests.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ServeError, WireError
from repro.runtime.engine import GraphInput
from repro.serve import wire
from repro.serve.batcher import USE_DEFAULT, MicroBatcher
from repro.serve.config import ServeConfig
from repro.serve.metrics import FleetMetrics, MetricsRegistry, ServeMetrics
from repro.serve.service import _status_for, resolve_precision
from repro.serve.supervisor import Supervisor, WorkerPayload


def content_shard(graph: GraphInput, n_shards: int) -> int:
    """Stable shard index in ``[0, n_shards)`` from the graph's content.

    Hashes the raw bytes of all three feature arrays (shape-prefixed, so
    reshapes change the key the way they change the features), mirroring
    the content-keyed FeatureCache: identical inputs always route to the
    same worker, which is what keeps that worker's cache hot on its shard.
    """
    digest = hashlib.sha256()
    for array in (graph.x_semantic, graph.x_structural, graph.adjacency):
        contiguous = np.ascontiguousarray(array, dtype=np.float64)
        digest.update(str(contiguous.shape).encode())
        digest.update(contiguous.tobytes())
    return int.from_bytes(digest.digest()[:8], "big") % n_shards


class FleetService:
    """Long-lived classification service over N engine worker processes.

    Parameters
    ----------
    engine:
        A fully built :class:`~repro.runtime.engine.Engine`; its model and
        extractor configuration are shipped to every worker
        (:class:`~repro.serve.supervisor.WorkerPayload`), and its model
        remains the master copy that :meth:`reload` pushes back out.
    config:
        Fleet + batching knobs; ``config.fleet_workers`` fixes the worker
        count.
    registry:
        Metrics destination shared with the front end; fresh when omitted.
    examples:
        Optional pool backing ``GET /v1/example``, as on the
        single-process service.
    """

    def __init__(
        self,
        engine,
        config: Optional[ServeConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        examples: Optional[Sequence[Any]] = None,
        advisor_plans: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.engine = engine
        # wire-form advice plans keyed by loop id / sample id; None means
        # the advisor endpoint is not enabled on this fleet (409)
        self.advisor_plans = (
            dict(advisor_plans) if advisor_plans is not None else None
        )
        self.config = config if config is not None else ServeConfig()
        self.n_workers = self.config.fleet_workers
        self.metrics = ServeMetrics(registry)
        self.fleet_metrics = FleetMetrics(self.metrics.registry)
        self.supervisor = Supervisor(
            WorkerPayload.from_engine(engine), self.config,
            metrics=self.fleet_metrics,
        )
        # one micro-batcher per (shard, tier); the shared ServeMetrics
        # aggregates admission/latency across shards while FleetMetrics
        # splits routing — and mixed-precision batches can never coalesce
        self.batchers: Dict[Tuple[int, str], MicroBatcher] = {
            (slot, tier): MicroBatcher(
                self._shard_predict_fn(slot, tier), self.config,
                metrics=self.metrics,
            )
            for slot in range(self.n_workers)
            for tier in wire.PRECISIONS
        }
        self.metrics.bind_queue_depth(
            lambda: float(sum(
                b.queue_depth for b in self.batchers.values()
            ))
        )
        for shard in range(self.n_workers):
            self.fleet_metrics.shard_requests(shard)  # pre-register at zero
        self._examples = list(examples) if examples else []
        self._example_cursor = 0
        self._started_at: Optional[float] = None
        self._admin_lock = asyncio.Lock()

    def _shard_predict_fn(self, slot: int, precision: str):
        def predict(items: Sequence[Any]) -> List[int]:
            return self.supervisor.predict(slot, items, precision=precision)
        return predict

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        # spawning + warm pings block; keep the event loop responsive
        await loop.run_in_executor(None, self.supervisor.start)
        for batcher in self.batchers.values():
            await batcher.start()
        self._started_at = time.monotonic()

    async def stop(self) -> None:
        for batcher in self.batchers.values():
            await batcher.stop()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.supervisor.stop)

    @property
    def running(self) -> bool:
        return self.supervisor.running and all(
            batcher.running for batcher in self.batchers.values()
        )

    # -- routing -------------------------------------------------------------

    def _resolve(self, requested: Optional[str]) -> str:
        """Effective tier for one request, metrics recorded.

        The degrade-before-shed signal is the fleet-wide default-tier
        queue depth (sum across shards) — per-shard depths swing with
        routing luck; the aggregate is the pressure that precedes shedding.
        """
        default_depth = sum(
            self.batchers[(slot, self.config.default_precision)].queue_depth
            for slot in range(self.n_workers)
        )
        tier, downgraded = resolve_precision(
            requested, self.config, default_depth
        )
        self.metrics.precision_requests(tier).inc()
        if downgraded:
            self.metrics.downgrades.inc()
        return tier

    async def _submit(self, graph: GraphInput, tier: str,
                      deadline_ms: Any) -> int:
        """Route one graph to its content shard at a resolved tier."""
        shard = content_shard(graph, self.n_workers)
        self.fleet_metrics.shard_requests(shard).inc()
        return await self.batchers[(shard, tier)].submit(
            graph, deadline_ms=deadline_ms
        )

    async def submit_graph(
        self,
        graph: GraphInput,
        deadline_ms: Any = USE_DEFAULT,
        precision: Optional[str] = None,
    ) -> int:
        """Route one decoded graph to its content shard and await the label.

        The entry point shared by the HTTP endpoints and the fleet
        benchmark's load generators (which skip JSON entirely).
        ``precision`` is the request's pinned tier (``None`` applies the
        default tier + downgrade policy).
        """
        return await self._submit(graph, self._resolve(precision), deadline_ms)

    # -- endpoints (same shapes as InferenceService) -------------------------

    async def classify(
        self, payload: Any, precision: Optional[str] = None
    ) -> Dict[str, Any]:
        if not isinstance(payload, Mapping):
            raise WireError(
                f"request: expected a JSON object, got {type(payload).__name__}"
            )
        if precision is None:
            precision = wire.decode_precision(payload.get("precision"))
        deadline_ms = wire.decode_deadline_ms(payload, default=USE_DEFAULT)
        graph = wire.decode_loop(payload)  # 400/422 here, pre-routing
        tier = self._resolve(precision)
        label = await self._submit(graph, tier, deadline_ms)
        return {"id": graph.graph_id, "label": label, "precision": tier}

    async def advise(
        self, payload: Any, precision: Optional[str] = None
    ) -> Dict[str, Any]:
        """Classify one loop and attach its stored advice plan.

        Same shape as :meth:`InferenceService.advise`; the inference runs
        through the fleet's content-shard routing like any classify.
        """
        if not isinstance(payload, Mapping):
            raise WireError(
                f"request: expected a JSON object, got {type(payload).__name__}"
            )
        if precision is None:
            precision = wire.decode_precision(payload.get("precision"))
        deadline_ms = wire.decode_deadline_ms(payload, default=USE_DEFAULT)
        graph = wire.decode_loop(payload)  # 400/422 here, pre-routing
        tier = self._resolve(precision)
        self.metrics.advise_requests.inc()
        label = await self._submit(graph, tier, deadline_ms)
        plans = self.advisor_plans or {}
        plan = plans.get(graph.graph_id)
        if plan is not None and (
            plan.get("validation", {}).get("status") == "validated"
        ):
            self.metrics.advise_validated.inc()
        return {
            "id": graph.graph_id, "label": label,
            "precision": tier, "plan": plan,
        }

    async def classify_batch(
        self, payload: Any, precision: Optional[str] = None
    ) -> Dict[str, Any]:
        if not isinstance(payload, Mapping):
            raise WireError(
                f"request: expected a JSON object, got {type(payload).__name__}"
            )
        if precision is None:
            precision = wire.decode_precision(payload.get("precision"))
        deadline_ms = wire.decode_deadline_ms(payload, default=USE_DEFAULT)
        graphs = wire.decode_batch(payload)  # all-or-nothing, pre-routing
        tier = self._resolve(precision)  # one tier per request

        outcomes = await asyncio.gather(
            *(self._submit(graph, tier, deadline_ms) for graph in graphs),
            return_exceptions=True,
        )
        results: List[Dict[str, Any]] = []
        for graph, outcome in zip(graphs, outcomes):
            if isinstance(outcome, ServeError):
                results.append({
                    "id": graph.graph_id,
                    "error": str(outcome),
                    "status": _status_for(outcome),
                })
            elif isinstance(outcome, BaseException):
                raise outcome
            else:
                results.append({"id": graph.graph_id, "label": outcome})
        return {"results": results, "precision": tier}

    def example_payload(self) -> Dict[str, Any]:
        if not self._examples:
            raise WireError("no example pool configured on this server")
        sample = self._examples[self._example_cursor % len(self._examples)]
        self._example_cursor += 1
        return wire.sample_to_wire(sample)

    def health(self) -> Dict[str, Any]:
        uptime = (
            time.monotonic() - self._started_at
            if self._started_at is not None else 0.0
        )
        return {
            "status": "ok" if self.running else "stopped",
            "model": type(self.engine.model).__name__,
            "mode": "fleet",
            "uptime_s": round(uptime, 3),
            "queue_depth": sum(
                b.queue_depth for b in self.batchers.values()
            ),
            "max_batch_size": self.config.max_batch_size,
            "max_wait_ms": self.config.max_wait_ms,
            "default_precision": self.config.default_precision,
            "requests_total": int(self.metrics.requests.value),
            "responses_total": int(self.metrics.responses.value),
            "fleet_size": self.n_workers,
            "workers": self.supervisor.describe(),
        }

    def metrics_text(self) -> str:
        return self.metrics.registry.render()

    # -- fleet administration ------------------------------------------------

    async def reload(self, checkpoint: Optional[str] = None) -> Dict[str, Any]:
        """Rolling blue-green reload of every worker; zero dropped requests.

        With ``checkpoint`` (an npz path from
        :func:`repro.nn.serialize.save_params`) the master model first
        loads those weights, then every replacement worker is warmed with
        them before being swapped in.  Without, the current master weights
        are pushed — which doubles as a plain hot restart with a weight
        refresh.  Serialized: concurrent reload requests queue.
        """
        async with self._admin_lock:
            loop = asyncio.get_running_loop()

            def run() -> Dict[str, Any]:
                if checkpoint is not None:
                    from repro.nn.serialize import load_params

                    try:
                        load_params(self.engine.model, checkpoint)
                    except (OSError, ValueError) as exc:
                        raise ServeError(
                            f"cannot load checkpoint {checkpoint!r}: {exc}"
                        ) from exc
                return self.supervisor.reload_weights(self.engine.model)

            result = await loop.run_in_executor(None, run)
            result["checkpoint"] = checkpoint
            return result

    async def restart(self) -> Dict[str, Any]:
        """Rolling restart without touching weights (fresh worker caches)."""
        async with self._admin_lock:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                None, self.supervisor.rolling_restart
            )
