"""Serving configuration.

One frozen dataclass carries every knob of the micro-batching service; the
CLI maps ``repro serve`` flags onto it and docs/SERVING.md explains how the
knobs trade latency against throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class ServeConfig:
    """Knobs for the micro-batcher, admission control, and HTTP front end.

    Parameters
    ----------
    max_batch_size:
        Upper bound on graphs coalesced into one ``Engine.predict_many``
        dispatch.  Larger amortizes more Python overhead per forward pass
        but holds early arrivals longer.
    max_wait_ms:
        Batching window: how long the oldest queued request may wait for
        the batch to fill before dispatching a partial batch.  The direct
        knob on added tail latency under light load.
    max_queue_depth:
        Admission-control bound.  A request arriving when this many are
        already queued is rejected with
        :class:`~repro.errors.QueueFullError` (HTTP 429) instead of growing
        the queue — bounded queues turn overload into fast feedback rather
        than unbounded latency collapse.
    default_deadline_ms:
        Per-request deadline applied when the request does not carry its
        own; ``None`` disables deadlines.  A request that cannot be
        answered within its deadline is shed
        (:class:`~repro.errors.DeadlineExceededError`, HTTP 504) — never
        served late.
    retry_after_s:
        Client back-off hint attached to queue-full rejections
        (the HTTP ``Retry-After`` header, rounded up to whole seconds).
    executor_workers:
        Threads in the inference executor.  The numpy forward pass releases
        the GIL inside BLAS, so a small pool (2) can overlap batches;
        1 keeps inference strictly serial.
    host, port:
        HTTP bind address; port 0 lets the OS pick (the chosen port is
        printed at startup).
    max_body_bytes:
        Largest accepted request body (HTTP 413 beyond it).
    request_timeout_s:
        Idle read timeout per HTTP connection.
    fleet_workers:
        Engine worker *processes*.  1 keeps the single-process service
        (one in-process engine); >1 starts the sharded multi-process fleet
        (:mod:`repro.serve.fleet`) — the CLI's ``repro serve --workers N``.
    worker_retries:
        How many times one predict batch may be re-sent to a fresh worker
        after its worker died mid-request, before failing the batch.
    worker_start_timeout_s:
        How long a freshly spawned worker may take to answer its first
        ping before the supervisor declares the spawn failed.
    worker_request_timeout_s:
        Per-IPC-request ceiling.  A worker silent past it is presumed hung,
        killed, and the batch retried (counts against ``worker_retries``).
    health_interval_s:
        Supervisor health-check poll period for dead-worker detection.
    default_precision:
        Execution tier for requests that do not pin one via
        ``?precision=``: ``"exact"`` (float64 tape, byte-identical to the
        reference forward) or ``"fast"`` (int8-grid float32 tape).  See
        docs/RUNTIME.md.
    downgrade_queue_depth:
        Degrade-before-shed threshold: when a request *without* an
        explicit precision arrives and its queue already holds at least
        this many entries, it is served at ``"fast"`` instead of the
        default tier (counted in ``serve_precision_downgrades_total``) —
        trading bits for latency *before* admission control starts
        returning 429/504.  ``None`` (the default) auto-derives
        ``max_queue_depth // 2``; ``0`` disables downgrading.  Requests
        that pin ``?precision=exact`` are never downgraded.
    """

    max_batch_size: int = 32
    max_wait_ms: float = 5.0
    max_queue_depth: int = 256
    default_deadline_ms: Optional[float] = 1000.0
    retry_after_s: float = 0.05
    executor_workers: int = 1
    host: str = "127.0.0.1"
    port: int = 8100
    max_body_bytes: int = 8 * 1024 * 1024
    request_timeout_s: float = 60.0
    # -- multi-process fleet (repro.serve.fleet; ignored single-process) ----
    fleet_workers: int = 1
    worker_retries: int = 2
    worker_start_timeout_s: float = 60.0
    worker_request_timeout_s: float = 120.0
    health_interval_s: float = 0.1
    # -- precision tiering (see docs/RUNTIME.md, docs/SERVING.md) -----------
    default_precision: str = "exact"
    downgrade_queue_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ConfigError(
                f"max_batch_size must be positive, got {self.max_batch_size}")
        if self.max_wait_ms < 0:
            raise ConfigError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.max_queue_depth <= 0:
            raise ConfigError(
                f"max_queue_depth must be positive, got {self.max_queue_depth}")
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise ConfigError(
                "default_deadline_ms must be positive or None, "
                f"got {self.default_deadline_ms}")
        if self.retry_after_s < 0:
            raise ConfigError(
                f"retry_after_s must be >= 0, got {self.retry_after_s}")
        if self.executor_workers <= 0:
            raise ConfigError(
                f"executor_workers must be positive, got {self.executor_workers}")
        if not 0 <= self.port <= 65535:
            raise ConfigError(f"port must be in [0, 65535], got {self.port}")
        if self.max_body_bytes <= 0:
            raise ConfigError(
                f"max_body_bytes must be positive, got {self.max_body_bytes}")
        if self.request_timeout_s <= 0:
            raise ConfigError(
                f"request_timeout_s must be positive, got {self.request_timeout_s}")
        if self.fleet_workers <= 0:
            raise ConfigError(
                f"fleet_workers must be positive, got {self.fleet_workers}")
        if self.worker_retries < 0:
            raise ConfigError(
                f"worker_retries must be >= 0, got {self.worker_retries}")
        if self.worker_start_timeout_s <= 0:
            raise ConfigError(
                "worker_start_timeout_s must be positive, "
                f"got {self.worker_start_timeout_s}")
        if self.worker_request_timeout_s <= 0:
            raise ConfigError(
                "worker_request_timeout_s must be positive, "
                f"got {self.worker_request_timeout_s}")
        if self.health_interval_s <= 0:
            raise ConfigError(
                f"health_interval_s must be positive, got {self.health_interval_s}")
        if self.default_precision not in ("exact", "fast"):
            raise ConfigError(
                "default_precision must be 'exact' or 'fast', "
                f"got {self.default_precision!r}")
        if (self.downgrade_queue_depth is not None
                and self.downgrade_queue_depth < 0):
            raise ConfigError(
                "downgrade_queue_depth must be >= 0 or None, "
                f"got {self.downgrade_queue_depth}")

    @property
    def effective_downgrade_depth(self) -> Optional[int]:
        """The resolved degrade-before-shed threshold (None = disabled)."""
        if self.downgrade_queue_depth is None:
            return max(1, self.max_queue_depth // 2)
        if self.downgrade_queue_depth == 0:
            return None
        return self.downgrade_queue_depth

    def with_updates(self, **changes) -> "ServeConfig":
        """A copy with ``changes`` applied (validation re-runs)."""
        return replace(self, **changes)
