"""Async micro-batching inference service, single-process or fleet.

The serving layer over :mod:`repro.runtime`: a long-lived asyncio front
end that coalesces concurrent loop-classification requests into engine
batches (:class:`MicroBatcher`), rejects overload explicitly instead of
queueing unboundedly (:class:`~repro.errors.QueueFullError` /
:class:`~repro.errors.DeadlineExceededError`), and exposes a stdlib-only
HTTP API (:class:`HttpServer`) with Prometheus metrics
(:mod:`repro.serve.metrics`).

Two execution modes share that front end:

* **single-process** (:class:`InferenceService`) — one in-process engine
  behind one micro-batcher;
* **fleet** (:class:`FleetService`) — a :class:`Supervisor` pre-forks N
  engine worker processes, requests route to per-worker shards by content
  hash (each worker's FeatureCache stays hot on its shard), dead workers
  respawn with the lost batch retried invisibly, and rolling restart /
  hot weight reload swap workers blue-green with zero dropped requests.

Start one from the command line with ``python -m repro serve``
(``--workers N`` for the fleet); see docs/SERVING.md for the API
reference and tuning guide, docs/OPERATIONS.md for the fleet runbook.
"""

from repro.serve.batcher import USE_DEFAULT, MicroBatcher
from repro.serve.config import ServeConfig
from repro.serve.fleet import FleetService, content_shard
from repro.serve.http import HttpServer, serve_forever
from repro.serve.metrics import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    FleetMetrics,
    Gauge,
    Histogram,
    MetricsRegistry,
    ServeMetrics,
    bind_engine_stats,
)
from repro.serve.service import InferenceService, resolve_precision
from repro.serve.supervisor import Supervisor, WorkerHandle, WorkerPayload

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "Counter",
    "FleetMetrics",
    "FleetService",
    "Gauge",
    "Histogram",
    "HttpServer",
    "InferenceService",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "MicroBatcher",
    "ServeConfig",
    "ServeMetrics",
    "Supervisor",
    "USE_DEFAULT",
    "WorkerHandle",
    "WorkerPayload",
    "bind_engine_stats",
    "content_shard",
    "resolve_precision",
    "serve_forever",
]
