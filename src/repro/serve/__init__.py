"""Async micro-batching inference service.

The serving layer over :mod:`repro.runtime`: a long-lived asyncio process
that coalesces concurrent loop-classification requests into engine batches
(:class:`MicroBatcher`), rejects overload explicitly instead of queueing
unboundedly (:class:`~repro.errors.QueueFullError` /
:class:`~repro.errors.DeadlineExceededError`), and exposes a stdlib-only
HTTP API (:class:`HttpServer`) with Prometheus metrics
(:mod:`repro.serve.metrics`).  Start one from the command line with
``python -m repro serve``; see docs/SERVING.md for the API reference,
tuning guide, and metrics catalog.
"""

from repro.serve.batcher import USE_DEFAULT, MicroBatcher
from repro.serve.config import ServeConfig
from repro.serve.http import HttpServer, serve_forever
from repro.serve.metrics import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ServeMetrics,
    bind_engine_stats,
)
from repro.serve.service import InferenceService

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "HttpServer",
    "InferenceService",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "MicroBatcher",
    "ServeConfig",
    "ServeMetrics",
    "USE_DEFAULT",
    "bind_engine_stats",
    "serve_forever",
]
