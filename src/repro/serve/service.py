"""The inference service: engine + micro-batcher + wire codec + metrics.

:class:`InferenceService` is the transport-independent core of
``repro.serve`` — the HTTP front end (:mod:`repro.serve.http`), the load
generator (``benchmarks/bench_serve_latency.py``), and the tests all speak
to this layer.  It owns an :class:`~repro.runtime.engine.Engine` and runs
every admitted request through one :class:`~repro.serve.batcher.MicroBatcher`
*per execution tier* — single and batch endpoints coalesce into the same
engine batches, but ``exact`` and ``fast`` requests are never coalesced
into one tape (they execute different tapes with different numerics, and a
mixed batch would silently cross-contaminate the tiers).  Both its own and
the engine's statistics export through one
:class:`~repro.serve.metrics.MetricsRegistry`.

Precision policy (shared with the fleet via :func:`resolve_precision`):
a request that pins ``?precision=exact|fast`` gets exactly that tier —
pinned ``exact`` is *never* downgraded.  A request with no preference gets
``config.default_precision``, unless the queue it would join already holds
``config.effective_downgrade_depth`` entries — then it degrades to
``fast`` (before admission control starts shedding with 429/504), counted
in ``serve_precision_downgrades_total``.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ServeError, WireError
from repro.runtime.engine import Engine
from repro.serve import wire
from repro.serve.batcher import USE_DEFAULT, MicroBatcher
from repro.serve.config import ServeConfig
from repro.serve.metrics import MetricsRegistry, ServeMetrics, bind_engine_stats


def resolve_precision(
    requested: Optional[str], config: ServeConfig, queue_depth: int
) -> Tuple[str, bool]:
    """(effective tier, downgraded?) for one admitted request.

    ``requested`` is the client's pinned tier (``None`` = no preference).
    ``queue_depth`` is the current depth of the queue the request would
    join at the default tier — the degrade-before-shed signal.
    """
    if requested is not None:
        return requested, False  # pinned: exact is never downgraded
    default = config.default_precision
    threshold = config.effective_downgrade_depth
    if (
        default != "fast"
        and threshold is not None
        and queue_depth >= threshold
    ):
        return "fast", True
    return default, False


class InferenceService:
    """Long-lived classification service over one Engine.

    Parameters
    ----------
    engine:
        The (thread-safe) batched inference engine; its ``predict_many``
        runs inside the batcher's thread executor.
    config:
        Batching / admission / HTTP / precision knobs.
    registry:
        Metrics destination, shared with the front end; fresh when omitted.
    examples:
        Optional pool of :class:`~repro.dataset.types.LoopSample` served by
        ``example_payload`` (the ``GET /v1/example`` endpoint) so clients
        can fetch a valid request shape without knowing the model dims.
    """

    def __init__(
        self,
        engine: Engine,
        config: Optional[ServeConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        examples: Optional[Sequence[Any]] = None,
        advisor_plans: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.engine = engine
        # wire-form advice plans keyed by loop id / sample id; None means
        # the advisor endpoint is not enabled on this server (409)
        self.advisor_plans = (
            dict(advisor_plans) if advisor_plans is not None else None
        )
        self.config = config if config is not None else ServeConfig()
        self.metrics = ServeMetrics(registry)
        bind_engine_stats(self.metrics.registry, engine)
        # one batcher per tier: mixed-precision batches must never coalesce
        self.batchers: Dict[str, MicroBatcher] = {
            tier: MicroBatcher(
                self._predict_fn(tier), self.config, metrics=self.metrics
            )
            for tier in wire.PRECISIONS
        }
        # the default-tier batcher doubles as the legacy single-batcher
        # attribute (benchmarks and older tests reach for it)
        self.batcher = self.batchers[self.config.default_precision]
        # each MicroBatcher bound the shared depth gauge in its ctor
        # (last one wins); re-bind it to the sum across tiers
        self.metrics.bind_queue_depth(
            lambda: sum(b.queue_depth for b in self.batchers.values())
        )
        self._examples = list(examples) if examples else []
        self._example_cursor = 0
        self._started_at: Optional[float] = None

    def _predict_fn(self, precision: str):
        """Executor-side hop into the engine at one pinned tier.

        The engine-default tier calls ``predict_many`` with its legacy
        2-arg signature so test harnesses that wrap it (queue-gating,
        fault injection) keep working unchanged.
        """

        def predict(items: Sequence[Any]) -> List[int]:
            if precision == getattr(self.engine, "precision", "exact"):
                labels = self.engine.predict_many(
                    items, batch_size=len(items)
                )
            else:
                labels = self.engine.predict_many(
                    items, batch_size=len(items), precision=precision
                )
            return [int(label) for label in labels]

        return predict

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        for batcher in self.batchers.values():
            await batcher.start()
        self._started_at = time.monotonic()

    async def stop(self) -> None:
        for batcher in self.batchers.values():
            await batcher.stop()

    @property
    def running(self) -> bool:
        return all(b.running for b in self.batchers.values())

    # -- precision routing ---------------------------------------------------

    def _resolve(self, requested: Optional[str]) -> str:
        """Effective tier for one request, metrics recorded."""
        default_depth = self.batchers[self.config.default_precision].queue_depth
        tier, downgraded = resolve_precision(
            requested, self.config, default_depth
        )
        self.metrics.precision_requests(tier).inc()
        if downgraded:
            self.metrics.downgrades.inc()
        return tier

    # -- endpoints -----------------------------------------------------------

    async def classify(
        self, payload: Any, precision: Optional[str] = None
    ) -> Dict[str, Any]:
        """One loop object -> ``{"id", "label", "precision"}``.

        ``precision`` is the transport-level pin (the ``?precision=``
        query parameter); a ``"precision"`` field in the body works too
        (the query parameter wins).  Raises WireError / QueueFullError /
        DeadlineExceededError / ServeError; the transport maps them to
        status codes.
        """
        if not isinstance(payload, Mapping):
            raise WireError(
                f"request: expected a JSON object, got {type(payload).__name__}"
            )
        if precision is None:
            precision = wire.decode_precision(payload.get("precision"))
        deadline_ms = wire.decode_deadline_ms(payload, default=USE_DEFAULT)
        graph = wire.decode_loop(payload)
        tier = self._resolve(precision)
        label = await self.batchers[tier].submit(graph, deadline_ms=deadline_ms)
        return {"id": graph.graph_id, "label": label, "precision": tier}

    async def advise(
        self, payload: Any, precision: Optional[str] = None
    ) -> Dict[str, Any]:
        """One loop object -> its classification plus the stored advice plan.

        Same decode/admission path as :meth:`classify` (identical 400/422
        gate and precision resolution); the response adds a ``"plan"``
        field carrying the wire-form :class:`~repro.advisor.plan.AdvicePlan`
        for the loop, or ``None`` when no plan is stored under its id.
        """
        if not isinstance(payload, Mapping):
            raise WireError(
                f"request: expected a JSON object, got {type(payload).__name__}"
            )
        if precision is None:
            precision = wire.decode_precision(payload.get("precision"))
        deadline_ms = wire.decode_deadline_ms(payload, default=USE_DEFAULT)
        graph = wire.decode_loop(payload)
        tier = self._resolve(precision)
        self.metrics.advise_requests.inc()
        label = await self.batchers[tier].submit(graph, deadline_ms=deadline_ms)
        plans = self.advisor_plans or {}
        plan = plans.get(graph.graph_id)
        if plan is not None and (
            plan.get("validation", {}).get("status") == "validated"
        ):
            self.metrics.advise_validated.inc()
        return {
            "id": graph.graph_id, "label": label,
            "precision": tier, "plan": plan,
        }

    async def classify_batch(
        self, payload: Any, precision: Optional[str] = None
    ) -> Dict[str, Any]:
        """``{"loops": [...]}`` -> per-loop results, individually batched.

        Each loop is submitted to the same micro-batchers as single
        requests, so one large client batch and many small clients coalesce
        identically (within one execution tier; the whole request resolves
        to one tier).  Per-item failures (shed, deadline) are reported
        in-place rather than failing the whole request:
        ``{"results": [...], "precision": tier}``.
        """
        if not isinstance(payload, Mapping):
            raise WireError(
                f"request: expected a JSON object, got {type(payload).__name__}"
            )
        if precision is None:
            precision = wire.decode_precision(payload.get("precision"))
        deadline_ms = wire.decode_deadline_ms(payload, default=USE_DEFAULT)
        graphs = wire.decode_batch(payload)
        tier = self._resolve(precision)
        batcher = self.batchers[tier]

        async def one(graph) -> Dict[str, Any]:
            label = await batcher.submit(graph, deadline_ms=deadline_ms)
            return {"id": graph.graph_id, "label": label}

        outcomes = await asyncio.gather(
            *(one(graph) for graph in graphs), return_exceptions=True
        )
        results: List[Dict[str, Any]] = []
        for graph, outcome in zip(graphs, outcomes):
            if isinstance(outcome, dict):
                results.append(outcome)
            elif isinstance(outcome, ServeError):
                results.append({
                    "id": graph.graph_id,
                    "error": str(outcome),
                    "status": _status_for(outcome),
                })
            elif isinstance(outcome, BaseException):
                raise outcome
        return {"results": results, "precision": tier}

    def example_payload(self) -> Dict[str, Any]:
        """A valid classify request built from the example pool (rotating)."""
        if not self._examples:
            raise WireError("no example pool configured on this server")
        sample = self._examples[self._example_cursor % len(self._examples)]
        self._example_cursor += 1
        return wire.sample_to_wire(sample)

    def health(self) -> Dict[str, Any]:
        uptime = (
            time.monotonic() - self._started_at
            if self._started_at is not None else 0.0
        )
        return {
            "status": "ok" if self.running else "stopped",
            "model": type(self.engine.model).__name__,
            "uptime_s": round(uptime, 3),
            "queue_depth": sum(
                b.queue_depth for b in self.batchers.values()
            ),
            "max_batch_size": self.config.max_batch_size,
            "max_wait_ms": self.config.max_wait_ms,
            "default_precision": self.config.default_precision,
            "requests_total": int(self.metrics.requests.value),
            "responses_total": int(self.metrics.responses.value),
        }

    def metrics_text(self) -> str:
        return self.metrics.registry.render()


def _status_for(exc: ServeError) -> int:
    """HTTP status for a typed serve error (shared with the front end)."""
    from repro.errors import (
        DeadlineExceededError,
        GraphValidationError,
        QueueFullError,
    )

    if isinstance(exc, GraphValidationError):
        return 422
    if isinstance(exc, WireError):
        return 400
    if isinstance(exc, QueueFullError):
        return 429
    if isinstance(exc, DeadlineExceededError):
        return 504
    return 500
