"""The inference service: engine + micro-batcher + wire codec + metrics.

:class:`InferenceService` is the transport-independent core of
``repro.serve`` — the HTTP front end (:mod:`repro.serve.http`), the load
generator (``benchmarks/bench_serve_latency.py``), and the tests all speak
to this layer.  It owns an :class:`~repro.runtime.engine.Engine`, runs every
admitted request through one shared :class:`~repro.serve.batcher.MicroBatcher`
(so single and batch endpoints coalesce into the same engine batches), and
exports both its own and the engine's statistics through one
:class:`~repro.serve.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.errors import ServeError, WireError
from repro.runtime.engine import Engine
from repro.serve import wire
from repro.serve.batcher import USE_DEFAULT, MicroBatcher
from repro.serve.config import ServeConfig
from repro.serve.metrics import MetricsRegistry, ServeMetrics, bind_engine_stats


class InferenceService:
    """Long-lived classification service over one Engine.

    Parameters
    ----------
    engine:
        The (thread-safe) batched inference engine; its ``predict_many``
        runs inside the batcher's thread executor.
    config:
        Batching / admission / HTTP knobs.
    registry:
        Metrics destination, shared with the front end; fresh when omitted.
    examples:
        Optional pool of :class:`~repro.dataset.types.LoopSample` served by
        ``example_payload`` (the ``GET /v1/example`` endpoint) so clients
        can fetch a valid request shape without knowing the model dims.
    """

    def __init__(
        self,
        engine: Engine,
        config: Optional[ServeConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        examples: Optional[Sequence[Any]] = None,
    ) -> None:
        self.engine = engine
        self.config = config if config is not None else ServeConfig()
        self.metrics = ServeMetrics(registry)
        bind_engine_stats(self.metrics.registry, engine)
        self.batcher = MicroBatcher(
            self._predict, self.config, metrics=self.metrics
        )
        self._examples = list(examples) if examples else []
        self._example_cursor = 0
        self._started_at: Optional[float] = None

    def _predict(self, items: Sequence[Any]) -> List[int]:
        """Executor-side hop into the engine; plain ints for JSON encoding."""
        return [int(label) for label in
                self.engine.predict_many(items, batch_size=len(items))]

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        await self.batcher.start()
        self._started_at = time.monotonic()

    async def stop(self) -> None:
        await self.batcher.stop()

    @property
    def running(self) -> bool:
        return self.batcher.running

    # -- endpoints -----------------------------------------------------------

    async def classify(self, payload: Any) -> Dict[str, Any]:
        """One loop object -> ``{"id", "label"}``.

        Raises WireError / QueueFullError / DeadlineExceededError /
        ServeError; the transport maps them to status codes.
        """
        if not isinstance(payload, Mapping):
            raise WireError(
                f"request: expected a JSON object, got {type(payload).__name__}"
            )
        deadline_ms = wire.decode_deadline_ms(payload, default=USE_DEFAULT)
        graph = wire.decode_loop(payload)
        label = await self.batcher.submit(graph, deadline_ms=deadline_ms)
        return {"id": graph.graph_id, "label": label}

    async def classify_batch(self, payload: Any) -> Dict[str, Any]:
        """``{"loops": [...]}`` -> per-loop results, individually batched.

        Each loop is submitted to the same micro-batcher as single
        requests, so one large client batch and many small clients coalesce
        identically.  Per-item failures (shed, deadline) are reported
        in-place rather than failing the whole request:
        ``{"results": [{"id", "label"} | {"id", "error", "status"}]}``.
        """
        if not isinstance(payload, Mapping):
            raise WireError(
                f"request: expected a JSON object, got {type(payload).__name__}"
            )
        deadline_ms = wire.decode_deadline_ms(payload, default=USE_DEFAULT)
        graphs = wire.decode_batch(payload)

        async def one(graph) -> Dict[str, Any]:
            label = await self.batcher.submit(graph, deadline_ms=deadline_ms)
            return {"id": graph.graph_id, "label": label}

        outcomes = await asyncio.gather(
            *(one(graph) for graph in graphs), return_exceptions=True
        )
        results: List[Dict[str, Any]] = []
        for graph, outcome in zip(graphs, outcomes):
            if isinstance(outcome, dict):
                results.append(outcome)
            elif isinstance(outcome, ServeError):
                results.append({
                    "id": graph.graph_id,
                    "error": str(outcome),
                    "status": _status_for(outcome),
                })
            elif isinstance(outcome, BaseException):
                raise outcome
        return {"results": results}

    def example_payload(self) -> Dict[str, Any]:
        """A valid classify request built from the example pool (rotating)."""
        if not self._examples:
            raise WireError("no example pool configured on this server")
        sample = self._examples[self._example_cursor % len(self._examples)]
        self._example_cursor += 1
        return wire.sample_to_wire(sample)

    def health(self) -> Dict[str, Any]:
        uptime = (
            time.monotonic() - self._started_at
            if self._started_at is not None else 0.0
        )
        return {
            "status": "ok" if self.running else "stopped",
            "model": type(self.engine.model).__name__,
            "uptime_s": round(uptime, 3),
            "queue_depth": self.batcher.queue_depth,
            "max_batch_size": self.config.max_batch_size,
            "max_wait_ms": self.config.max_wait_ms,
            "requests_total": int(self.metrics.requests.value),
            "responses_total": int(self.metrics.responses.value),
        }

    def metrics_text(self) -> str:
        return self.metrics.registry.render()


def _status_for(exc: ServeError) -> int:
    """HTTP status for a typed serve error (shared with the front end)."""
    from repro.errors import (
        DeadlineExceededError,
        GraphValidationError,
        QueueFullError,
    )

    if isinstance(exc, GraphValidationError):
        return 422
    if isinstance(exc, WireError):
        return 400
    if isinstance(exc, QueueFullError):
        return 429
    if isinstance(exc, DeadlineExceededError):
        return 504
    return 500
