"""JSON wire format for classification requests and responses.

A *loop object* is the JSON shape of one
:class:`~repro.runtime.engine.GraphInput`:

.. code-block:: json

    {
      "id": "BT/loop0",
      "x_semantic":   [[...], ...],
      "x_structural": [[...], ...],
      "adjacency":    [[...], ...],
      "deadline_ms":  200
    }

``x_semantic`` is ``(n, d_sem)``, ``x_structural`` is ``(n, walk_types)``,
``adjacency`` is the ``(n, n)`` undirected 0/1 matrix; ``id`` and
``deadline_ms`` are optional.  Arrays decode to float64 — Python's JSON
round-trips float64 exactly (shortest-repr), which is what lets the
differential tests pin served predictions byte-identical to direct
``Engine.predict_many`` output.

Failures split into two classes:

* **Undecodable** — not JSON, not an object, a required field missing or
  non-numeric: :class:`~repro.errors.WireError`, HTTP 400.
* **Decodable but structurally invalid** — wrong shapes, NaN/Inf, an
  asymmetric / non-binary / self-looped adjacency, too many nodes: the
  arrays are run through the GR lint rules
  (:mod:`repro.lint.graph_rules`) and failures raise
  :class:`~repro.errors.GraphValidationError`, HTTP 422 with the finding
  list in the response body.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphValidationError, WireError
from repro.runtime.engine import GraphInput

#: hard cap on nodes per graph — a wire-level sanity bound, far above any
#: real sub-PEG, protecting the server from accidental giant payloads
MAX_NODES = 4096

#: hard cap on loops per classify_batch request
MAX_BATCH_ITEMS = 1024


def parse_json(body: bytes) -> Any:
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"request body is not valid JSON: {exc}") from None


def _decode_matrix(obj: Mapping, key: str, where: str) -> np.ndarray:
    """Decode one array field; raises only for *undecodable* data (400).

    Shape / finiteness / content invariants are the GR lint rules' job
    (:func:`validate_graph_arrays`) so their diagnostics carry rule IDs.
    """
    if key not in obj:
        raise WireError(f"{where}: missing required field {key!r}")
    try:
        return np.asarray(obj[key], dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise WireError(f"{where}: field {key!r} is not numeric: {exc}") from None


def validate_graph_arrays(
    adjacency: np.ndarray,
    x_semantic: np.ndarray,
    x_structural: np.ndarray,
    where: str,
) -> None:
    """Admission gate: run the GR lint rules over a decoded array triple.

    Raises :class:`GraphValidationError` (HTTP 422) when any ERROR-level
    finding fires; the exception carries the findings as plain dicts for
    the response payload.
    """
    from repro.lint.core import findings_to_wire
    from repro.lint.runner import lint_graph_arrays

    report = lint_graph_arrays(
        adjacency, x_semantic, x_structural, where=where, max_nodes=MAX_NODES
    )
    errors = report.errors
    if not errors:
        return
    shown = "; ".join(f.message for f in errors[:3])
    if len(errors) > 3:
        shown += f" (+{len(errors) - 3} more)"
    raise GraphValidationError(
        f"{where}: invalid graph: {shown}", findings_to_wire(errors)
    )


def decode_loop(obj: Any, pos: int = 0) -> GraphInput:
    """One wire loop object -> a validated :class:`GraphInput`."""
    where = f"loop #{pos}"
    if not isinstance(obj, Mapping):
        raise WireError(f"{where}: expected a JSON object, got {type(obj).__name__}")
    adjacency = _decode_matrix(obj, "adjacency", where)
    x_semantic = _decode_matrix(obj, "x_semantic", where)
    x_structural = _decode_matrix(obj, "x_structural", where)
    graph_id = obj.get("id", "")
    if not isinstance(graph_id, str):
        raise WireError(f"{where}: id must be a string")
    validate_graph_arrays(adjacency, x_semantic, x_structural, where)
    return GraphInput(
        x_semantic=x_semantic,
        x_structural=x_structural,
        adjacency=adjacency,
        graph_id=graph_id or f"graph-{pos}",
    )


def decode_deadline_ms(
    obj: Mapping, default: Any = None, where: str = "request"
) -> Any:
    """The request's ``deadline_ms``: ``default`` when the field is absent.

    An explicit JSON ``null`` returns None — "no deadline for this
    request" — which is distinct from the field being absent (server
    default applies; callers pass :data:`repro.serve.batcher.USE_DEFAULT`).
    """
    if "deadline_ms" not in obj:
        return default
    value = obj["deadline_ms"]
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise WireError(f"{where}: deadline_ms must be a number or null")
    if value <= 0:
        raise WireError(f"{where}: deadline_ms must be positive, got {value}")
    return float(value)


#: Wire-accepted execution tiers (mirrors repro.nn.quantize.PRECISIONS).
PRECISIONS = ("exact", "fast")


def decode_precision(value: Any, where: str = "request") -> Optional[str]:
    """Validate a requested execution tier (query param or body field).

    ``None`` (absent) means "no preference": the service applies its
    configured default tier and the degrade-before-shed policy.
    """
    if value is None:
        return None
    if value not in PRECISIONS:
        raise WireError(
            f"{where}: precision must be one of {list(PRECISIONS)}, "
            f"got {value!r}"
        )
    return str(value)


def decode_batch(obj: Any) -> List[GraphInput]:
    """A classify_batch payload ``{"loops": [...]}`` -> GraphInputs."""
    if not isinstance(obj, Mapping):
        raise WireError(
            f"request: expected a JSON object, got {type(obj).__name__}"
        )
    loops = obj.get("loops")
    if not isinstance(loops, Sequence) or isinstance(loops, (str, bytes)):
        raise WireError('request: missing or non-array "loops" field')
    if not loops:
        raise WireError('request: "loops" is empty')
    if len(loops) > MAX_BATCH_ITEMS:
        raise WireError(
            f"request: {len(loops)} loops exceeds the "
            f"{MAX_BATCH_ITEMS} per-request limit"
        )
    return [decode_loop(item, pos) for pos, item in enumerate(loops)]


def encode_loop(
    x_semantic: np.ndarray,
    x_structural: np.ndarray,
    adjacency: np.ndarray,
    loop_id: str = "",
) -> Dict[str, Any]:
    """Feature arrays -> a wire loop object (the inverse of decode_loop)."""
    obj: Dict[str, Any] = {
        "x_semantic": np.asarray(x_semantic, dtype=np.float64).tolist(),
        "x_structural": np.asarray(x_structural, dtype=np.float64).tolist(),
        "adjacency": np.asarray(adjacency, dtype=np.float64).tolist(),
    }
    if loop_id:
        obj["id"] = loop_id
    return obj


def sample_to_wire(sample) -> Dict[str, Any]:
    """A :class:`~repro.dataset.types.LoopSample` -> wire loop object."""
    return encode_loop(
        sample.x_semantic, sample.x_structural, sample.adjacency,
        loop_id=sample.sample_id,
    )


# ---------------------------------------------------------------------------
# worker IPC protocol (the serving fleet)
# ---------------------------------------------------------------------------
#
# The multi-process fleet (:mod:`repro.serve.supervisor`) speaks a tiny
# framed protocol over ``multiprocessing.Connection`` pipes.  Every frame is
# a 3-tuple ``(kind, req_id, payload)``:
#
# ==============  =======================  ================================
# kind            payload (request)        payload (reply)
# ==============  =======================  ================================
# ``predict``     list of engine inputs    list of int labels
#                 or {"items": [...],
#                     "precision": "fast"}
# ``ping``        None                     worker info dict (pid, shard...)
# ``reload``      {name: ndarray} params   worker info dict
# ``stats``       None                     EngineStats dict
# ``shutdown``    None                     None (worker exits after reply)
# ==============  =======================  ================================
#
# Replies use kind ``ok`` or ``err`` (payload = message string).  The pipe
# pickles frames, so arrays travel as numpy objects — no JSON round-trip on
# the hot path.  ``check_frame`` guards both directions: a malformed frame
# raises :class:`WireError` rather than crashing the peer's loop.

IPC_PREDICT = "predict"
IPC_PING = "ping"
IPC_RELOAD = "reload"
IPC_STATS = "stats"
IPC_SHUTDOWN = "shutdown"
IPC_OK = "ok"
IPC_ERR = "err"

#: frame kinds a worker accepts
IPC_REQUEST_KINDS = (IPC_PREDICT, IPC_PING, IPC_RELOAD, IPC_STATS,
                     IPC_SHUTDOWN)
#: frame kinds the supervisor-side handle accepts back
IPC_REPLY_KINDS = (IPC_OK, IPC_ERR)


def make_frame(kind: str, req_id: int, payload: Any = None) -> Tuple:
    """Build one IPC frame; the only constructor either peer uses."""
    return (kind, req_id, payload)


def check_frame(obj: Any, expect: Sequence[str]) -> Tuple[str, int, Any]:
    """Validate a received frame -> ``(kind, req_id, payload)``.

    ``expect`` is the set of kinds legal in this direction.  Raises
    :class:`WireError` on anything else — the receiving loop treats that as
    a protocol violation from a confused peer, not a crash.
    """
    if not isinstance(obj, tuple) or len(obj) != 3:
        raise WireError(
            f"ipc: expected a (kind, req_id, payload) frame, got "
            f"{type(obj).__name__}"
        )
    kind, req_id, payload = obj
    if kind not in expect:
        raise WireError(f"ipc: unexpected frame kind {kind!r}")
    if not isinstance(req_id, int):
        raise WireError(f"ipc: req_id must be int, got {type(req_id).__name__}")
    return kind, req_id, payload
