"""Stdlib-only asyncio HTTP/1.1 front end for the inference service.

No web framework: a hand-rolled request loop over ``asyncio.start_server``
— read a request line, headers, and a Content-Length body; route; write a
JSON (or Prometheus text) response.  Keep-alive is supported so load
generators and sidecars can reuse connections; parsing is deliberately
minimal (no chunked encoding, no pipelining guarantees) because the only
intended clients are toolchain components and ``curl``.

Routes
------

==========================  =====================================================
``POST /v1/classify``       one loop object -> ``{"id", "label", "precision"}``
``POST /v1/advise``         classify + the stored advice plan (409 when the
                            server has no plan index; see docs/ADVISOR.md)
``POST /v1/classify_batch`` ``{"loops": [...]}`` -> ``{"results", "precision"}``
``GET  /v1/example``        a valid classify payload from the example pool
``GET  /healthz``           liveness + config summary (+ per-worker status)
``GET  /metrics``           Prometheus text exposition
``POST /admin/reload``      fleet mode: rolling hot weight reload (409 else)
``POST /admin/restart``     fleet mode: rolling worker restart (409 else)
==========================  =====================================================

Both classify routes accept ``?precision=exact|fast`` to pin the execution
tier (a ``"precision"`` body field works too; the query parameter wins).
Unpinned requests get the server's default tier, subject to the
degrade-before-shed policy — see docs/SERVING.md.

The ``service`` behind the front end is either the single-process
:class:`~repro.serve.service.InferenceService` or the multi-process
:class:`~repro.serve.fleet.FleetService` — both expose the same endpoint
surface, so routing below never branches on the mode (except the admin
routes, which require a fleet).

Error mapping: :class:`~repro.errors.WireError` -> 400,
:class:`~repro.errors.GraphValidationError` -> 422 (with a machine-readable
``findings`` list from the lint admission gate),
:class:`~repro.errors.QueueFullError` -> 429 (with ``Retry-After``),
:class:`~repro.errors.DeadlineExceededError` -> 504, any other
:class:`~repro.errors.ServeError` -> 500.
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
from typing import Any, Dict, Optional, Tuple

from repro.errors import (
    DeadlineExceededError,
    GraphValidationError,
    QueueFullError,
    ReproError,
    ServeError,
    WireError,
)
from repro.serve import wire
from repro.serve.config import ServeConfig
from repro.serve.service import InferenceService

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}


def _query_precision(query: str) -> Optional[str]:
    """The ``?precision=`` pin from a raw query string (None = unpinned).

    Raises :class:`WireError` (-> 400) on an unknown tier, inside the
    routing try block like every other wire-level failure.
    """
    if not query:
        return None
    from urllib.parse import parse_qsl

    params = dict(parse_qsl(query, keep_blank_values=True))
    return wire.decode_precision(params.get("precision"), where="query")


class HttpServer:
    """Asyncio HTTP front end bound to one :class:`InferenceService`."""

    def __init__(
        self, service: InferenceService, config: Optional[ServeConfig] = None
    ) -> None:
        self.service = service
        self.config = config if config is not None else service.config
        self._server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> int:
        """Bind and listen; returns the actual port (resolves port 0)."""
        if self._server is not None:
            raise ServeError("HTTP server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host,
            port=self.config.port,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except (
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            ConnectionError,
        ):
            pass  # client went away or idled out: nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - platform dependent
                pass

    async def _handle_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Serve one request; True when the connection should stay open."""
        timeout = self.config.request_timeout_s
        request_line = await asyncio.wait_for(
            reader.readline(), timeout=timeout
        )
        if not request_line:
            return False
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            await self._respond(
                writer, 400, {"error": "malformed request line"}, close=True
            )
            return False
        method, path, version = parts

        headers: Dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=timeout)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            await self._respond(
                writer, 400, {"error": "bad Content-Length"}, close=True
            )
            return False
        if length > self.config.max_body_bytes:
            await self._respond(
                writer, 413,
                {"error": f"body exceeds {self.config.max_body_bytes} bytes"},
                close=True,
            )
            return False
        body = (
            await asyncio.wait_for(reader.readexactly(length), timeout=timeout)
            if length else b""
        )

        keep_alive = (
            version.upper() != "HTTP/1.0"
            and headers.get("connection", "").lower() != "close"
        )
        status, payload, content_type, extra = await self._route(
            method.upper(), path, body
        )
        await self._respond(
            writer, status, payload, content_type=content_type,
            extra_headers=extra, close=not keep_alive,
        )
        return keep_alive

    # -- routing -------------------------------------------------------------

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Any, str, Dict[str, str]]:
        """-> (status, payload, content-type, extra headers)."""
        path, _, query = path.partition("?")
        try:
            if path == "/healthz":
                if method != "GET":
                    return 405, {"error": "use GET"}, "application/json", {}
                return 200, self.service.health(), "application/json", {}
            if path == "/metrics":
                if method != "GET":
                    return 405, {"error": "use GET"}, "application/json", {}
                return (
                    200, self.service.metrics_text(),
                    "text/plain; version=0.0.4", {},
                )
            if path == "/v1/example":
                if method != "GET":
                    return 405, {"error": "use GET"}, "application/json", {}
                return 200, self.service.example_payload(), "application/json", {}
            if path == "/v1/classify":
                if method != "POST":
                    return 405, {"error": "use POST"}, "application/json", {}
                result = await self.service.classify(
                    wire.parse_json(body),
                    precision=_query_precision(query),
                )
                return 200, result, "application/json", {}
            if path == "/v1/advise":
                if method != "POST":
                    return 405, {"error": "use POST"}, "application/json", {}
                if getattr(self.service, "advisor_plans", None) is None:
                    return (
                        409,
                        {"error": "advisor not enabled: start the server "
                                  "with an advice-plan index (repro serve "
                                  "builds one unless --no-advisor)"},
                        "application/json", {},
                    )
                result = await self.service.advise(
                    wire.parse_json(body),
                    precision=_query_precision(query),
                )
                return 200, result, "application/json", {}
            if path == "/v1/classify_batch":
                if method != "POST":
                    return 405, {"error": "use POST"}, "application/json", {}
                result = await self.service.classify_batch(
                    wire.parse_json(body),
                    precision=_query_precision(query),
                )
                return 200, result, "application/json", {}
            if path in ("/admin/reload", "/admin/restart"):
                if method != "POST":
                    return 405, {"error": "use POST"}, "application/json", {}
                return await self._route_admin(path, body)
            return 404, {"error": f"no such route: {path}"}, "application/json", {}
        except GraphValidationError as exc:
            self.service.metrics.invalid_graphs.inc()
            return (
                422, {"error": str(exc), "findings": exc.findings},
                "application/json", {},
            )
        except WireError as exc:
            self.service.metrics.bad_requests.inc()
            return 400, {"error": str(exc)}, "application/json", {}
        except QueueFullError as exc:
            return (
                429, {"error": str(exc), "retry_after_s": exc.retry_after_s},
                "application/json",
                {"Retry-After": str(max(1, math.ceil(exc.retry_after_s)))},
            )
        except DeadlineExceededError as exc:
            return 504, {"error": str(exc)}, "application/json", {}
        except ServeError as exc:
            return 500, {"error": str(exc)}, "application/json", {}
        except ReproError as exc:
            # non-serve library failure surfaced by an admin action (e.g. a
            # bad reload checkpoint): an error response, not a dead socket
            return 500, {"error": str(exc)}, "application/json", {}

    async def _route_admin(
        self, path: str, body: bytes
    ) -> Tuple[int, Any, str, Dict[str, str]]:
        """Fleet administration: rolling reload / restart (fleet mode only).

        On a single-process service (no fleet behind the front end) these
        answer 409 so operators learn the server has nothing to roll.
        ``/admin/reload`` accepts an optional JSON body
        ``{"checkpoint": "<npz path>"}`` to load fresh weights first.
        """
        if not hasattr(self.service, "reload"):
            return (
                409,
                {"error": "not a fleet: start with --workers N to enable "
                          "rolling reload/restart"},
                "application/json", {},
            )
        if path == "/admin/restart":
            return 200, await self.service.restart(), "application/json", {}
        checkpoint = None
        if body:
            payload = wire.parse_json(body)
            if not isinstance(payload, dict):
                raise WireError("admin/reload: body must be a JSON object")
            checkpoint = payload.get("checkpoint")
            if checkpoint is not None and not isinstance(checkpoint, str):
                raise WireError("admin/reload: checkpoint must be a string")
        return (
            200, await self.service.reload(checkpoint=checkpoint),
            "application/json", {},
        )

    # -- response writing ----------------------------------------------------

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        content_type: str = "application/json",
        extra_headers: Optional[Dict[str, str]] = None,
        close: bool = False,
    ) -> None:
        if isinstance(payload, str):
            body = payload.encode("utf-8")
        else:
            body = json.dumps(payload).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()


async def serve_forever(
    service: InferenceService,
    config: Optional[ServeConfig] = None,
    announce=print,
    ready_event: Optional[asyncio.Event] = None,
) -> int:
    """Run service + HTTP server until SIGINT/SIGTERM; returns an exit code.

    The CLI's ``repro serve`` main loop: starts everything, announces the
    bound address (``repro-serve listening on http://host:port``), installs
    signal handlers for a clean shutdown, and returns 130 when terminated
    by a signal — the conventional "interrupted" exit status.
    """
    config = config if config is not None else service.config
    server = HttpServer(service, config)
    await service.start()
    port = await server.start()
    announce(f"repro-serve listening on http://{config.host}:{port}")
    if ready_event is not None:
        ready_event.set()

    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    interrupted = False

    def _on_signal() -> None:
        nonlocal interrupted
        interrupted = True
        stop.set()

    registered = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, _on_signal)
            registered.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-Unix event loop: Ctrl-C falls back to KeyboardInterrupt

    try:
        await stop.wait()
    finally:
        for signum in registered:
            loop.remove_signal_handler(signum)
        await server.stop()
        await service.stop()
        announce("repro-serve: shut down cleanly")
    return 130 if interrupted else 0
