"""Dynamic micro-batching with admission control and load shedding.

The :class:`MicroBatcher` is the scheduling core of ``repro.serve``: callers
``await submit(loop)`` one graph at a time, and a single dispatcher task
coalesces whatever is queued into a batch for ``Engine.predict_many`` when
either

* ``max_batch_size`` requests are waiting, or
* the **oldest** queued request has waited ``max_wait_ms``

— the classic dynamic-batching policy (dispatch windows anchored to the
head of the queue, so the first arrival bounds everyone's added latency).
The numpy forward pass runs in a thread-pool executor via
``loop.run_in_executor``, keeping the event loop free to admit requests
while a batch is inside the model.

Overload is handled explicitly rather than absorbed:

* **Admission control** — a request arriving to a full queue
  (``max_queue_depth``) raises :class:`~repro.errors.QueueFullError`
  immediately (HTTP 429 upstream) with a retry-after hint.
* **Deadlines** — each request carries an absolute deadline (defaulting to
  ``default_deadline_ms``).  Requests are shed with
  :class:`~repro.errors.DeadlineExceededError` if the deadline expires
  while queued *or* if their batch completes past it: a deadline is a
  promise to never serve late.

Every admitted request resolves exactly once — with a label, a shed error,
or a shutdown error; the property tests in ``tests/serve/test_batcher.py``
drive arbitrary arrival interleavings against that invariant.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Deque, List, Optional, Sequence

from repro.errors import DeadlineExceededError, QueueFullError, ServeError
from repro.serve.config import ServeConfig
from repro.serve.metrics import ServeMetrics

class _UseDefault:
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "USE_DEFAULT"


#: sentinel for ``submit(deadline_ms=...)``: "apply the configured default"
#: (as opposed to ``None``, which explicitly disables the deadline)
USE_DEFAULT = _UseDefault()


@dataclass
class _Pending:
    item: Any
    future: "asyncio.Future"
    enqueued_at: float
    deadline: Optional[float]  # absolute, on the batcher's clock


class MicroBatcher:
    """Queue + dispatcher turning single submissions into engine batches.

    Parameters
    ----------
    predict_fn:
        ``Sequence[item] -> Sequence[label]``, typically
        ``engine.predict_many``; runs inside the thread executor, so it
        must be thread-safe (the Engine is — see docs/RUNTIME.md).
    config:
        Batching/admission knobs (:class:`ServeConfig`).
    metrics:
        Destination for counters and latency histograms; a private
        :class:`ServeMetrics` when omitted.
    clock:
        Monotonic time source; injectable for tests.
    """

    def __init__(
        self,
        predict_fn: Callable[[Sequence[Any]], Sequence[Any]],
        config: Optional[ServeConfig] = None,
        metrics: Optional[ServeMetrics] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._predict_fn = predict_fn
        self.config = config if config is not None else ServeConfig()
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self._clock = clock
        self._pending: Deque[_Pending] = deque()
        self._wakeup: Optional[asyncio.Event] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._running = False
        self.metrics.bind_queue_depth(lambda: float(len(self._pending)))

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    async def start(self) -> None:
        if self._running:
            raise ServeError("batcher already started")
        self._loop = asyncio.get_running_loop()
        self._wakeup = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.executor_workers,
            thread_name_prefix="repro-serve-infer",
        )
        self._running = True
        self._dispatcher = self._loop.create_task(
            self._run(), name="repro-serve-dispatcher"
        )

    async def stop(self) -> None:
        """Stop dispatching; still-queued requests fail with a shutdown error.

        A batch already inside the engine is allowed to finish and resolve
        its futures — cancelling mid-inference would leave callers hanging
        on futures nobody owns anymore.
        """
        if not self._running:
            return
        self._running = False
        if self._wakeup is not None:
            self._wakeup.set()
        if self._dispatcher is not None:
            try:
                await self._dispatcher
            except asyncio.CancelledError:  # pragma: no cover - external cancel
                pass
            self._dispatcher = None
        while self._pending:
            pending = self._pending.popleft()
            if not pending.future.done():
                pending.future.set_exception(
                    ServeError("server shutting down")
                )
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # -- submission ----------------------------------------------------------

    async def submit(self, item: Any, deadline_ms: Any = USE_DEFAULT) -> Any:
        """Admit one request and await its label.

        Raises :class:`QueueFullError` at admission when the queue is at
        capacity, :class:`DeadlineExceededError` when the request cannot be
        served within its deadline, :class:`ServeError` on shutdown or an
        engine failure.
        """
        if not self._running:
            raise ServeError("batcher is not running")
        if len(self._pending) >= self.config.max_queue_depth:
            self.metrics.shed_queue_full.inc()
            raise QueueFullError(
                f"queue full ({self.config.max_queue_depth} waiting)",
                retry_after_s=self.config.retry_after_s,
            )
        now = self._clock()
        if deadline_ms is USE_DEFAULT:
            deadline_ms = self.config.default_deadline_ms
        deadline = None if deadline_ms is None else now + deadline_ms / 1000.0
        pending = _Pending(
            item=item,
            future=self._loop.create_future(),
            enqueued_at=now,
            deadline=deadline,
        )
        self.metrics.requests.inc()
        self._pending.append(pending)
        self._wakeup.set()
        label = await pending.future
        self.metrics.e2e.observe(self._clock() - now)
        self.metrics.responses.inc()
        return label

    # -- dispatch loop -------------------------------------------------------

    async def _run(self) -> None:
        try:
            await self._dispatch_forever()
        except Exception as exc:  # dispatcher bug: fail loudly, not hang
            self._running = False
            while self._pending:
                pending = self._pending.popleft()
                if not pending.future.done():
                    pending.future.set_exception(
                        ServeError(f"dispatcher crashed: {exc}")
                    )
            raise

    async def _dispatch_forever(self) -> None:
        cfg = self.config
        while self._running:
            # sleep until at least one request is queued
            while not self._pending and self._running:
                self._wakeup.clear()
                await self._wakeup.wait()
            if not self._running:
                return
            # batching window: anchored to the oldest queued request
            window_end = self._pending[0].enqueued_at + cfg.max_wait_ms / 1000.0
            while self._running and len(self._pending) < cfg.max_batch_size:
                remaining = window_end - self._clock()
                if remaining <= 0:
                    break
                self._wakeup.clear()
                try:
                    await asyncio.wait_for(
                        self._wakeup.wait(), timeout=remaining
                    )
                except asyncio.TimeoutError:
                    break
            if not self._running:
                return
            batch = self._drain_batch()
            if batch:
                await self._dispatch(batch)

    def _drain_batch(self) -> List[_Pending]:
        """Pop up to ``max_batch_size`` live requests, shedding stale ones."""
        now = self._clock()
        batch: List[_Pending] = []
        while self._pending and len(batch) < self.config.max_batch_size:
            pending = self._pending.popleft()
            if pending.future.done():  # cancelled / disconnected caller
                continue
            if pending.deadline is not None and now > pending.deadline:
                self._shed(pending)
                continue
            batch.append(pending)
        return batch

    def _shed(self, pending: _Pending) -> None:
        self.metrics.shed_deadline.inc()
        if not pending.future.done():
            pending.future.set_exception(
                DeadlineExceededError(
                    "deadline exceeded after "
                    f"{(self._clock() - pending.enqueued_at) * 1000:.1f}ms"
                )
            )

    async def _dispatch(self, batch: List[_Pending]) -> None:
        dispatched_at = self._clock()
        for pending in batch:
            self.metrics.queue_wait.observe(
                dispatched_at - pending.enqueued_at
            )
        self.metrics.batch_size.observe(len(batch))
        self.metrics.inflight_batches.inc()
        try:
            labels = await self._loop.run_in_executor(
                self._executor,
                self._predict_fn,
                [pending.item for pending in batch],
            )
        except Exception as exc:  # engine failure: fail the batch, keep serving
            for pending in batch:
                self.metrics.errors.inc()
                if not pending.future.done():
                    pending.future.set_exception(
                        ServeError(f"inference failed: {exc}")
                    )
            return
        finally:
            self.metrics.inflight_batches.dec()
            self.metrics.inference.observe(self._clock() - dispatched_at)
        if len(labels) != len(batch):
            for pending in batch:
                self.metrics.errors.inc()
                if not pending.future.done():
                    pending.future.set_exception(
                        ServeError(
                            f"engine returned {len(labels)} labels "
                            f"for {len(batch)} inputs"
                        )
                    )
            return
        completed_at = self._clock()
        for pending, label in zip(batch, labels):
            if pending.future.done():
                continue
            if pending.deadline is not None and completed_at > pending.deadline:
                self._shed(pending)  # never serve late
            else:
                pending.future.set_result(label)
