"""Observability core for the inference service.

Three thread-safe primitives — :class:`Counter`, :class:`Gauge`, and a
streaming bucketed :class:`Histogram` with quantile estimation — collected
in a :class:`MetricsRegistry` that renders the Prometheus text exposition
format for ``GET /metrics``.

Design constraints:

* **Streaming.** The service is long-lived; per-request samples cannot be
  retained.  Histograms keep fixed cumulative buckets plus sum/count, the
  exact representation Prometheus scrapes, and estimate p50/p95/p99 by
  linear interpolation inside the owning bucket (the same estimate
  ``histogram_quantile`` computes server-side).
* **Thread-safe.** The asyncio front end observes from the event loop while
  the inference executor observes from worker threads; every mutation takes
  the metric's lock.
* **Pull-based gauges.** A :class:`Gauge` may wrap a callback so values
  owned elsewhere (queue depth, :class:`~repro.runtime.engine.EngineStats`
  counters) are read at scrape time instead of being pushed on every
  change; :func:`bind_engine_stats` uses this to export an Engine's
  cumulative stats through the same registry.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ServeError

#: Default latency bucket upper bounds, in seconds (Prometheus convention).
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default batch-size bucket upper bounds (powers of two up to 256).
BATCH_SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)

def _check_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ServeError(f"invalid metric name: {name!r}")
    return name


def _labeled_name(name: str, labels: Optional[Dict[str, str]]) -> str:
    """``name{k="v",...}`` in sorted label order; plain ``name`` unlabeled.

    The Prometheus child-series form — the fleet uses it for per-worker
    samples (``serve_worker_up{worker="2"}``) while the registry still
    emits one HELP/TYPE header per family.
    """
    if not labels:
        return name
    rendered = ",".join(
        f'{_check_name(k)}="{v}"' for k, v in sorted(labels.items())
    )
    return f"{name}{{{rendered}}}"


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        self.name = _check_name(name)
        self.help_text = help_text
        self.sample_name = _labeled_name(self.name, labels)
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ServeError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def samples(self) -> List[Tuple[str, float]]:
        return [(self.sample_name, self.value)]


class Gauge:
    """Point-in-time value: settable, or pulled from a callback at scrape."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        fn: Optional[Callable[[], float]] = None,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        self.name = _check_name(name)
        self.help_text = help_text
        self.sample_name = _labeled_name(self.name, labels)
        self._fn = fn
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ServeError(f"gauge {self.name} is callback-backed")
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self._fn is not None:
            raise ServeError(f"gauge {self.name} is callback-backed")
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def bind(self, fn: Optional[Callable[[], float]]) -> None:
        """Switch this gauge to (or away from) callback-backed reads."""
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._value

    def samples(self) -> List[Tuple[str, float]]:
        return [(self.sample_name, self.value)]


class Histogram:
    """Streaming bucketed histogram with Prometheus-style quantiles.

    ``buckets`` are finite upper bounds in ascending order; a ``+Inf``
    bucket is implicit.  ``observe`` is O(log buckets); memory is O(buckets)
    regardless of traffic volume.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> None:
        self.name = _check_name(name)
        self.help_text = help_text
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ) or not all(math.isfinite(b) for b in bounds):
            raise ServeError(
                f"histogram {name}: buckets must be finite and "
                f"strictly ascending, got {bounds}"
            )
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # first bound >= value
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        with self._lock:
            self._counts[lo] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1), interpolated in-bucket.

        Returns 0.0 with no observations.  Values landing in the ``+Inf``
        bucket clamp to the largest finite bound — the estimate is a lower
        bound there, exactly like PromQL's ``histogram_quantile``.
        """
        if not 0.0 <= q <= 1.0:
            raise ServeError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for pos, bucket_count in enumerate(counts):
            prev_cumulative = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count > 0:
                if pos >= len(self.bounds):  # +Inf bucket: clamp
                    return self.bounds[-1]
                lower = self.bounds[pos - 1] if pos > 0 else 0.0
                upper = self.bounds[pos]
                fraction = (rank - prev_cumulative) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self.bounds[-1]

    def percentiles(self) -> Dict[str, float]:
        """The standard latency summary: p50 / p95 / p99."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def samples(self) -> List[Tuple[str, float]]:
        with self._lock:
            counts = list(self._counts)
            total = self._count
            value_sum = self._sum
        out: List[Tuple[str, float]] = []
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, counts):
            cumulative += bucket_count
            out.append((f'{self.name}_bucket{{le="{_format(bound)}"}}',
                        float(cumulative)))
        out.append((f'{self.name}_bucket{{le="+Inf"}}', float(total)))
        out.append((f"{self.name}_sum", value_sum))
        out.append((f"{self.name}_count", float(total)))
        return out


def _format(value: float) -> str:
    """Render a bucket bound the way Prometheus clients do (no trailing .0
    noise for integral bounds)."""
    if value == int(value):
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """Named metrics with get-or-create accessors and text exposition.

    Metrics are keyed by their full child-series name — a labeled counter
    (``serve_worker_up{worker="2"}``) registers one child per label set
    under a shared *family* (base name), and ``render`` emits HELP/TYPE
    once per family followed by every child's samples.  All children of a
    family must share one metric type.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(
        self, cls, name: str, help_text: str,
        labels: Optional[Dict[str, str]] = None, **kwargs
    ):
        key = _labeled_name(_check_name(name), labels)
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ServeError(
                        f"metric {key} already registered as "
                        f"{type(existing).__name__}"
                    )
                return existing
            for other in self._metrics.values():
                if other.name == name and not isinstance(other, cls):
                    raise ServeError(
                        f"metric family {name} already registered as "
                        f"{type(other).__name__}"
                    )
            if labels is not None and cls is not Histogram:
                kwargs["labels"] = labels
            metric = cls(name, help_text, **kwargs)
            self._metrics[key] = metric
            return metric

    def counter(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Dict[str, str]] = None,
    ) -> Counter:
        return self._get_or_create(Counter, name, help_text, labels=labels)

    def gauge(
        self,
        name: str,
        help_text: str = "",
        fn: Optional[Callable[[], float]] = None,
        labels: Optional[Dict[str, str]] = None,
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labels=labels, fn=fn)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help_text, buckets=buckets)

    def get(self, name: str):
        """Lookup by full child-series name (plain name when unlabeled)."""
        with self._lock:
            return self._metrics.get(name)

    def render(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        with self._lock:
            # group every family's children together even when an unrelated
            # name would sort between a family's plain and labeled series
            metrics = sorted(
                self._metrics.items(), key=lambda kv: (kv[1].name, kv[0])
            )
        emitted_families = set()
        for _, metric in metrics:
            if metric.name not in emitted_families:
                emitted_families.add(metric.name)
                if metric.help_text:
                    lines.append(f"# HELP {metric.name} {metric.help_text}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            for sample_name, value in metric.samples():
                lines.append(f"{sample_name} {_render_value(value)}")
        return "\n".join(lines) + "\n"


def _render_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class ServeMetrics:
    """The service's standard metric set, bound to one registry.

    One instance per :class:`~repro.serve.service.InferenceService`; the
    batcher and HTTP front end record into it, ``GET /metrics`` renders it.
    See docs/SERVING.md for the catalog.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self.requests = r.counter(
            "serve_requests_total", "Classification requests admitted")
        self.responses = r.counter(
            "serve_responses_total", "Requests answered with a label")
        self.shed_queue_full = r.counter(
            "serve_shed_queue_full_total",
            "Requests rejected at admission: queue at capacity (HTTP 429)")
        self.shed_deadline = r.counter(
            "serve_shed_deadline_total",
            "Requests shed because their deadline expired (HTTP 504)")
        self.errors = r.counter(
            "serve_errors_total", "Requests failed by an internal error")
        self.bad_requests = r.counter(
            "serve_bad_requests_total", "Malformed payloads (HTTP 400)")
        self.invalid_graphs = r.counter(
            "serve_invalid_graphs_total",
            "Decodable payloads whose graph failed structural lint (HTTP 422)")
        self.queue_wait = r.histogram(
            "serve_queue_wait_seconds",
            "Time from admission to batch dispatch")
        self.batch_size = r.histogram(
            "serve_batch_size",
            "Graphs per dispatched micro-batch",
            buckets=BATCH_SIZE_BUCKETS)
        self.inference = r.histogram(
            "serve_inference_seconds",
            "Engine.predict_many wall time per micro-batch")
        self.e2e = r.histogram(
            "serve_request_seconds",
            "End-to-end latency of served requests")
        self.queue_depth = r.gauge(
            "serve_queue_depth", "Requests currently queued")
        self.inflight_batches = r.gauge(
            "serve_inflight_batches", "Micro-batches currently in the engine")
        self.downgrades = r.counter(
            "serve_precision_downgrades_total",
            "Requests downgraded to the fast tier by queue pressure")
        self.advise_requests = r.counter(
            "serve_advise_requests_total",
            "Advice requests admitted (POST /v1/advise)")
        self.advise_validated = r.counter(
            "serve_advise_validated_total",
            "Advice responses whose plan was execution-validated")
        # pre-register both tier series at zero so dashboards see the
        # family before the first request of either precision lands
        for tier in ("exact", "fast"):
            self.precision_requests(tier)

    def precision_requests(self, precision: str) -> Counter:
        """Per-tier admitted-request counter (label: effective precision)."""
        return self.registry.counter(
            "serve_precision_requests_total",
            "Classification requests per effective execution tier",
            labels={"precision": str(precision)})

    def bind_queue_depth(self, fn: Callable[[], float]) -> None:
        """Make queue depth a pull gauge over the live queue."""
        self.queue_depth.bind(fn)


class FleetMetrics:
    """Per-worker / per-shard metric families for the multi-process fleet.

    One instance per :class:`~repro.serve.fleet.FleetService`; the
    supervisor records lifecycle events, the shard router records routing
    decisions.  Children are created lazily per worker slot / shard index
    (label values are slot indices, stable across respawns — a respawned
    worker keeps its slot's series, which is what makes
    ``serve_worker_restarts_total`` meaningful).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.fleet_size = self.registry.gauge(
            "serve_fleet_size", "Configured engine worker processes")
        self.reloads = self.registry.counter(
            "serve_worker_reloads_total",
            "Completed rolling reload/restart sweeps across the fleet")
        self.retried_batches = self.registry.counter(
            "serve_worker_retried_batches_total",
            "Predict batches re-sent after a worker died mid-request")

    def worker_up(self, slot: int) -> Gauge:
        return self.registry.gauge(
            "serve_worker_up",
            "1 while the slot's engine worker process is live",
            labels={"worker": str(slot)})

    def worker_restarts(self, slot: int) -> Counter:
        return self.registry.counter(
            "serve_worker_restarts_total",
            "Times the slot's worker was respawned after dying",
            labels={"worker": str(slot)})

    def shard_requests(self, shard: int) -> Counter:
        return self.registry.counter(
            "serve_shard_requests_total",
            "Requests routed to the shard by graph content hash",
            labels={"shard": str(shard)})


def bind_engine_stats(registry: MetricsRegistry, engine) -> None:
    """Export an Engine's cumulative :class:`EngineStats` as pull gauges.

    The stats object stays the single source of truth (the CLI keeps
    printing ``engine.stats.summary()``); the registry reads it at scrape
    time so ``GET /metrics`` and the summary can never disagree.
    """
    stats = engine.stats
    for attr, help_text in (
        ("graphs", "Graphs classified by the engine since startup"),
        ("batches", "Forward-pass batches executed by the engine"),
        ("seconds", "Cumulative engine wall time in predict/logits calls"),
        ("cache_hits", "Feature-cache hits"),
        ("cache_misses", "Feature-cache misses"),
    ):
        registry.gauge(
            f"engine_{attr}", help_text,
            fn=(lambda a=attr: float(getattr(stats, a))),
        )
