"""Statement vocabulary for inst2vec.

Tokens are the normalized LinearIR statement strings produced by
:func:`repro.ir.printer.statement_text` — identifier-abstracted, the same
normalization inst2vec applies to LLVM IR statements.  ``<unk>`` covers
statements outside the trained vocabulary, ``loop`` / ``func`` cover the
non-CU PEG node kinds.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence

from repro.errors import EmbeddingError

UNK = "<unk>"


class Vocabulary:
    """Token <-> id mapping with an ``<unk>`` fallback at id 0."""

    def __init__(self, tokens: Sequence[str]) -> None:
        unique: List[str] = [UNK]
        seen = {UNK}
        for token in tokens:
            if token not in seen:
                seen.add(token)
                unique.append(token)
        self._tokens = unique
        self._ids: Dict[str, int] = {t: i for i, t in enumerate(unique)}

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._ids

    def id_of(self, token: str) -> int:
        return self._ids.get(token, 0)

    def token_of(self, token_id: int) -> str:
        if not 0 <= token_id < len(self._tokens):
            raise EmbeddingError(f"token id {token_id} out of range")
        return self._tokens[token_id]

    def encode(self, tokens: Iterable[str]) -> List[int]:
        ids = self._ids
        return [ids.get(t, 0) for t in tokens]

    @property
    def tokens(self) -> List[str]:
        return list(self._tokens)


def build_vocabulary(
    corpus: Iterable[Sequence[str]], min_count: int = 1
) -> Vocabulary:
    """Build a vocabulary from an iterable of statement sequences.

    ``min_count`` drops rare statements to ``<unk>`` like word2vec's
    frequency cutoff.  The special node-kind tokens ``loop`` and ``func``
    are always included.
    """
    counts: Counter = Counter()
    for sequence in corpus:
        counts.update(sequence)
    kept = [t for t, c in counts.most_common() if c >= min_count]
    for special in ("loop", "func"):
        if special not in kept:
            kept.append(special)
    return Vocabulary(kept)
