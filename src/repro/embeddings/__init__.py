"""Code embeddings: inst2vec (skip-gram over IR statements) and anonymous
random-walk structural distributions."""

from repro.embeddings.vocab import Vocabulary, build_vocabulary
from repro.embeddings.inst2vec import Inst2Vec, build_statement_corpus
from repro.embeddings.anonwalk import (
    anonymize_walk,
    enumerate_anonymous_walks,
    AnonymousWalkSpace,
    node_walk_distribution,
    graph_walk_distribution,
    structural_node_features,
)

__all__ = [
    "Vocabulary", "build_vocabulary",
    "Inst2Vec", "build_statement_corpus",
    "anonymize_walk", "enumerate_anonymous_walks", "AnonymousWalkSpace",
    "node_walk_distribution", "graph_walk_distribution",
    "structural_node_features",
]
