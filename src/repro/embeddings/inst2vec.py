"""inst2vec: skip-gram embeddings of IR statements (Ben-Nun et al. 2018).

The original inst2vec trains word2vec over a *contextual flow graph* of LLVM
IR statements.  We reproduce the algorithm on LinearIR: training pairs are
drawn from

* sliding windows over each basic block (sequential context), and
* register def-use pairs (dataflow context — the XFG edges),

and trained with skip-gram + negative sampling (numpy SGD, vectorized over
mini-batches of pairs).  The embedding dimension defaults to 200 to match
the paper's node-feature dimensionality.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EmbeddingError
from repro.ir.linear import IRProgram, Reg
from repro.ir.printer import statement_text
from repro.embeddings.vocab import Vocabulary, build_vocabulary
from repro.utils.rng import RngLike, ensure_rng


def build_statement_corpus(
    programs: Iterable[IRProgram],
) -> Tuple[List[List[str]], List[Tuple[str, str]]]:
    """Extract (block statement sequences, dataflow statement pairs)."""
    sequences: List[List[str]] = []
    pairs: List[Tuple[str, str]] = []
    for program in programs:
        for fn in program.functions.values():
            for block in fn.blocks:
                texts = [statement_text(i) for i in block.instrs]
                sequences.append(texts)
                reg_def: Dict[str, str] = {}
                for instr, text in zip(block.instrs, texts):
                    for op in instr.operands:
                        if isinstance(op, Reg) and op.name in reg_def:
                            pairs.append((reg_def[op.name], text))
                    if instr.result is not None:
                        reg_def[instr.result.name] = text
    return sequences, pairs


class Inst2Vec:
    """Trainable skip-gram embedding table over normalized IR statements."""

    def __init__(self, dim: int = 200) -> None:
        if dim <= 0:
            raise EmbeddingError("embedding dimension must be positive")
        self.dim = dim
        self.vocab: Optional[Vocabulary] = None
        self.w_in: Optional[np.ndarray] = None
        self.w_out: Optional[np.ndarray] = None

    # -- training --------------------------------------------------------------

    def train(
        self,
        programs: Iterable[IRProgram],
        window: int = 2,
        epochs: int = 3,
        negatives: int = 5,
        lr: float = 0.05,
        batch_size: int = 512,
        min_count: int = 1,
        rng: RngLike = 0,
    ) -> "Inst2Vec":
        """Train the embedding space on a program corpus."""
        rng = ensure_rng(rng)
        sequences, flow_pairs = build_statement_corpus(programs)
        self.vocab = build_vocabulary(sequences, min_count=min_count)
        vocab_size = len(self.vocab)
        self.w_in = rng.normal(0.0, 0.5 / self.dim, size=(vocab_size, self.dim))
        self.w_out = np.zeros((vocab_size, self.dim))

        centers, contexts = self._training_pairs(sequences, flow_pairs, window)
        if centers.size == 0:
            raise EmbeddingError("empty training corpus for inst2vec")

        # unigram^0.75 negative-sampling table (word2vec convention)
        counts = np.bincount(contexts, minlength=vocab_size).astype(np.float64)
        counts[0] = max(counts[0], 1.0)
        probs = counts**0.75
        probs /= probs.sum()

        n = centers.size
        for epoch in range(epochs):
            # linear lr decay, standard word2vec schedule
            epoch_lr = lr * (1.0 - epoch / max(1, epochs)) + lr * 0.1
            order = rng.permutation(n)
            for start in range(0, n, batch_size):
                batch = order[start : start + batch_size]
                self._sgd_step(
                    centers[batch], contexts[batch], negatives, epoch_lr,
                    probs, rng,
                )
        # L2-normalize rows for downstream use: node features feed tanh GCNs
        # and must stay O(1) regardless of training length
        norms = np.linalg.norm(self.w_in, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        self.w_in = self.w_in / norms
        return self

    def _training_pairs(
        self,
        sequences: List[List[str]],
        flow_pairs: List[Tuple[str, str]],
        window: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        assert self.vocab is not None
        centers: List[int] = []
        contexts: List[int] = []
        for sequence in sequences:
            ids = self.vocab.encode(sequence)
            for pos, center in enumerate(ids):
                lo = max(0, pos - window)
                hi = min(len(ids), pos + window + 1)
                for other in range(lo, hi):
                    if other != pos:
                        centers.append(center)
                        contexts.append(ids[other])
        for src, dst in flow_pairs:
            a = self.vocab.id_of(src)
            b = self.vocab.id_of(dst)
            centers.extend((a, b))
            contexts.extend((b, a))
        return (
            np.asarray(centers, dtype=np.int64),
            np.asarray(contexts, dtype=np.int64),
        )

    def _sgd_step(
        self,
        centers: np.ndarray,
        contexts: np.ndarray,
        negatives: int,
        lr: float,
        noise_probs: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        w_in, w_out = self.w_in, self.w_out
        batch = centers.size
        neg = rng.choice(noise_probs.size, size=(batch, negatives), p=noise_probs)

        v = w_in[centers]                      # (B, d)
        u_pos = w_out[contexts]                # (B, d)
        u_neg = w_out[neg]                     # (B, k, d)

        pos_dot = np.clip(np.einsum("bd,bd->b", v, u_pos), -30.0, 30.0)
        neg_dot = np.clip(np.einsum("bd,bkd->bk", v, u_neg), -30.0, 30.0)
        pos_score = 1.0 / (1.0 + np.exp(-pos_dot))
        neg_score = 1.0 / (1.0 + np.exp(-neg_dot))

        g_pos = (pos_score - 1.0)[:, None]          # d/d(u_pos . v)
        g_neg = neg_score[:, :, None]               # d/d(u_neg . v)

        grad_v = g_pos * u_pos + np.einsum("bk,bkd->bd", neg_score, u_neg)
        grad_u_pos = g_pos * v
        grad_u_neg = g_neg * v[:, None, :]

        # clip per-pair updates: duplicated tokens in a batch otherwise
        # accumulate unbounded updates through np.add.at and diverge
        clip = 1.0
        np.add.at(w_in, centers, -lr * np.clip(grad_v, -clip, clip))
        np.add.at(w_out, contexts, -lr * np.clip(grad_u_pos, -clip, clip))
        np.add.at(
            w_out,
            neg.reshape(-1),
            -lr * np.clip(grad_u_neg.reshape(-1, self.dim), -clip, clip),
        )

    # -- lookup ------------------------------------------------------------------

    def _require_trained(self) -> None:
        if self.vocab is None or self.w_in is None:
            raise EmbeddingError("inst2vec model is not trained")

    def embed(self, statement: str) -> np.ndarray:
        """Embedding vector of one normalized statement."""
        self._require_trained()
        return self.w_in[self.vocab.id_of(statement)]

    def embed_sequence(self, statements: Sequence[str]) -> np.ndarray:
        """Mean embedding of a statement sequence (a PEG node's content)."""
        self._require_trained()
        if not statements:
            return np.zeros(self.dim)
        ids = self.vocab.encode(statements)
        return self.w_in[ids].mean(axis=0)

    def embed_matrix(self, statements: Sequence[str]) -> np.ndarray:
        """(len, dim) matrix of per-statement embeddings (NCC input)."""
        self._require_trained()
        if not statements:
            return np.zeros((1, self.dim))
        ids = self.vocab.encode(statements)
        return self.w_in[ids]

    @property
    def vocab_size(self) -> int:
        self._require_trained()
        return len(self.vocab)
