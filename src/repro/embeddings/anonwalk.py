"""Anonymous random-walk structural embeddings (Section III-C, Eq. 3-4).

Following Ivanov & Burnaev (2018) and the paper's Definition 1: a random
walk ``w = (w1..wn)`` maps to its *anonymous* form by replacing each node
with the index of its first occurrence — ``(v1,v2,v3,v2)`` becomes
``(0,1,2,1)``.  For each node we sample ``gamma`` walks of ``length`` edges
over the undirected PEG topology and build the empirical distribution
``p̂(ω | v)`` over the finite space of anonymous walk types (Eq. 3); the
graph-level distribution is the node mean (Eq. 4).

Walks from nodes whose component is too small to sustain ``length`` steps
terminate early; each truncated pattern is mapped to the type of its padded
completion by self-repetition, keeping the distribution a proper probability
vector without a blow-up of the type space.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EmbeddingError
from repro.peg.graph import PEG
from repro.utils.rng import RngLike, ensure_rng


def anonymize_walk(walk: Sequence) -> Tuple[int, ...]:
    """Map a walk to its anonymous form (first-occurrence indices)."""
    mapping: Dict = {}
    out: List[int] = []
    for node in walk:
        if node not in mapping:
            mapping[node] = len(mapping)
        out.append(mapping[node])
    return tuple(out)


@lru_cache(maxsize=16)
def enumerate_anonymous_walks(length: int) -> Tuple[Tuple[int, ...], ...]:
    """All anonymous walk types of ``length`` edges (``length+1`` nodes).

    A valid type is a sequence starting at 0 where each element is at most
    ``max(prefix)+1`` and consecutive elements differ (graph walks never
    repeat a node immediately because edges connect distinct nodes).
    """
    if length < 0:
        raise EmbeddingError("walk length must be non-negative")
    walks: List[Tuple[int, ...]] = []

    def extend(prefix: Tuple[int, ...], highest: int) -> None:
        if len(prefix) == length + 1:
            walks.append(prefix)
            return
        for nxt in range(highest + 2):
            if nxt != prefix[-1]:
                extend(prefix + (nxt,), max(highest, nxt))

    extend((0,), 0)
    return tuple(walks)


class AnonymousWalkSpace:
    """Index of anonymous walk types for a fixed walk length."""

    def __init__(self, length: int = 4) -> None:
        self.length = length
        self.types = enumerate_anonymous_walks(length)
        self.index: Dict[Tuple[int, ...], int] = {
            t: i for i, t in enumerate(self.types)
        }

    @property
    def num_types(self) -> int:
        return len(self.types)

    def type_of(self, walk: Sequence) -> int:
        """Type index of a (possibly truncated) walk."""
        anonymous = anonymize_walk(walk)
        if len(anonymous) < self.length + 1:
            # pad truncated walks by oscillating on the final step so the
            # padded pattern is a valid anonymous type
            padded = list(anonymous)
            while len(padded) < self.length + 1:
                padded.append(
                    padded[-2] if len(padded) >= 2 else max(padded) + 1
                )
            anonymous = tuple(padded)
        type_id = self.index.get(anonymous)
        if type_id is None:
            raise EmbeddingError(f"invalid anonymous walk {anonymous}")
        return type_id


def _undirected_adjacency(peg: PEG) -> Dict[str, List[str]]:
    adj: Dict[str, List[str]] = {nid: [] for nid in peg.nodes}
    for edge in peg.edges:
        if edge.src == edge.dst:
            continue
        adj[edge.src].append(edge.dst)
        adj[edge.dst].append(edge.src)
    return adj


def node_walk_distribution(
    peg: PEG,
    node_id: str,
    space: AnonymousWalkSpace,
    gamma: int = 30,
    rng: RngLike = None,
) -> np.ndarray:
    """Empirical anonymous-walk distribution p̂(ω | v) of one node (Eq. 3).

    Shape contract: returns a ``(space.num_types,)`` probability vector
    (non-negative, sums to 1) over the anonymous walk types of
    ``space.length`` edges.  The result is deterministic in ``(peg
    topology, node_id, space.length, gamma, rng state)``; pass a freshly
    seeded generator to make it a pure function of the seed — the property
    :class:`repro.runtime.FeatureCache` relies on to memoize per-node
    distributions by content hash.  For all nodes of a graph at once use
    :func:`structural_node_features`, which returns the stacked
    ``(n_nodes, space.num_types)`` matrix in ``peg.nodes`` order.
    """
    rng = ensure_rng(rng)
    adj = _undirected_adjacency(peg)
    return _node_distribution(adj, node_id, space, gamma, rng)


def _node_distribution(
    adj: Dict[str, List[str]],
    node_id: str,
    space: AnonymousWalkSpace,
    gamma: int,
    rng: np.random.Generator,
) -> np.ndarray:
    counts = np.zeros(space.num_types)
    neighbors = adj.get(node_id)
    if neighbors is None:
        raise EmbeddingError(f"node {node_id!r} not in graph")
    # pre-draw all step randomness at once (one Generator call per node,
    # not one per step — the walks dominate dataset-extraction time)
    draws = rng.random((gamma, space.length))
    for row in range(gamma):
        walk = [node_id]
        current = node_id
        for step in range(space.length):
            nbrs = adj[current]
            if not nbrs:
                break
            current = nbrs[int(draws[row, step] * len(nbrs))]
            walk.append(current)
        counts[space.type_of(walk)] += 1.0
    return counts / gamma


def structural_node_features(
    peg: PEG,
    space: AnonymousWalkSpace,
    gamma: int = 30,
    rng: RngLike = None,
) -> Tuple[List[str], np.ndarray]:
    """Walk distributions for every node: (node ids, (n, num_types) matrix).

    This is the structural-view input; the model projects it through a
    learned walk-type embedding table (the paper's 400-unit layer).
    """
    rng = ensure_rng(rng)
    adj = _undirected_adjacency(peg)
    node_ids = list(peg.nodes)
    features = np.zeros((len(node_ids), space.num_types))
    for row, node_id in enumerate(node_ids):
        features[row] = _node_distribution(adj, node_id, space, gamma, rng)
    return node_ids, features


def graph_walk_distribution(
    peg: PEG,
    space: AnonymousWalkSpace,
    gamma: int = 30,
    rng: RngLike = None,
) -> np.ndarray:
    """Graph-level mean anonymous-walk distribution p̂(ω | G) (Eq. 4)."""
    _ids, features = structural_node_features(peg, space, gamma, rng)
    if features.shape[0] == 0:
        return np.zeros(space.num_types)
    return features.mean(axis=0)
