"""GR rules: structural checks on raw model-input arrays.

These are the cheapest rules in the analyzer.  They run on anything that
exposes the ``(adjacency, x_semantic, x_structural)`` array triple — a
:class:`~repro.runtime.engine.GraphInput` at the serving admission gate,
or a :class:`~repro.dataset.types.LoopSample` during dataset assembly and
shard revalidation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.lint.core import LintReport, Severity, rule

#: mirrors repro.serve.wire.MAX_NODES (imported lazily to keep this module
#: usable without the serve stack)
_DEFAULT_MAX_NODES = 4096

GR001 = rule(
    "GR001", "graph", Severity.ERROR,
    "adjacency must be square 2-D and feature row counts must match it",
)
GR002 = rule(
    "GR002", "graph", Severity.ERROR,
    "graph arrays must be free of NaN/Inf",
)
GR003 = rule(
    "GR003", "graph", Severity.ERROR,
    "adjacency must be symmetric, binary, and zero-diagonal",
)
GR004 = rule(
    "GR004", "graph", Severity.ERROR,
    "graph node count must be in [1, MAX_NODES]",
)


def check_graph_arrays(
    report: LintReport,
    adjacency: np.ndarray,
    x_semantic: np.ndarray,
    x_structural: np.ndarray,
    where: str,
    max_nodes: Optional[int] = None,
) -> None:
    """Run GR001–GR004 over one array triple, emitting into ``report``."""
    max_nodes = _DEFAULT_MAX_NODES if max_nodes is None else max_nodes
    adjacency = np.asarray(adjacency)
    x_semantic = np.asarray(x_semantic)
    x_structural = np.asarray(x_structural)

    shape_ok = True
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        report.emit(
            GR001, where,
            f"adjacency is not square 2-D (shape {adjacency.shape})",
            {"shape": list(adjacency.shape)},
        )
        shape_ok = False
    n = int(adjacency.shape[0]) if adjacency.ndim >= 1 else 0
    for name, matrix in (("x_semantic", x_semantic), ("x_structural", x_structural)):
        if matrix.ndim != 2:
            report.emit(
                GR001, where,
                f"{name} is not 2-D (shape {matrix.shape})",
                {"field": name, "shape": list(matrix.shape)},
            )
            shape_ok = False
        elif shape_ok and matrix.shape[0] != n:
            report.emit(
                GR001, where,
                f"{name} has {matrix.shape[0]} rows for {n} nodes",
                {"field": name, "rows": int(matrix.shape[0]), "nodes": n},
            )
            shape_ok = False

    for name, matrix in (
        ("adjacency", adjacency),
        ("x_semantic", x_semantic),
        ("x_structural", x_structural),
    ):
        if matrix.size and not np.isfinite(matrix).all():
            bad = int((~np.isfinite(matrix)).sum())
            report.emit(
                GR002, where,
                f"{name} contains {bad} NaN/Inf values",
                {"field": name, "count": bad},
            )

    if shape_ok and adjacency.size:
        finite = np.isfinite(adjacency).all()
        if finite:
            if not np.array_equal(adjacency, adjacency.T):
                report.emit(GR003, where, "adjacency is not symmetric")
            if not np.isin(adjacency, (0.0, 1.0)).all():
                report.emit(
                    GR003, where, "adjacency has entries outside {0, 1}"
                )
            if np.diagonal(adjacency).any():
                report.emit(GR003, where, "adjacency has self-loop diagonal entries")

    if adjacency.ndim == 2:
        if n < 1:
            report.emit(GR004, where, "graph has zero nodes")
        elif n > max_nodes:
            report.emit(
                GR004, where,
                f"{n} nodes exceeds the {max_nodes} limit",
                {"nodes": n, "max_nodes": max_nodes},
            )
