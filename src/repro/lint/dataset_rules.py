"""DS rules: dataset-level consistency and label cross-validation.

``DS005`` is the analyzer's headline rule: it reuses the conservative
static dependence prover (:mod:`repro.lint.static_dep`) to re-derive a
verdict for each sample's loop from the program *source*, and flags
samples whose dynamic-oracle label contradicts a statically **provable**
verdict.  Because the prover only ever returns provable verdicts under
the oracle's own semantics, any hit is a real inconsistency — a corrupted
label, a mismatched program/sample pairing, or a bug in one of the two
analyses — never an expected approximation gap.  Samples marked
``meta["annotation_quirk"]`` are the one exception: their labels are
*deliberate* annotation noise from the benchmark suite (cf. IS #452), so
the rule counts them separately instead of judging them.

The rule only judges samples whose pipeline variant applies zero
optimization passes (``OPT_PIPELINES[variant] == ()``): transformed IR
can legitimately have a different dependence surface than the source AST
the prover reads.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.dataset.types import LoopDataset, LoopSample
from repro.ir import ast_nodes as ast
from repro.lint.core import LintReport, Severity, rule
from repro.lint.graph_rules import check_graph_arrays
from repro.lint.static_dep import StaticVerdict, static_loop_verdicts

DS001 = rule(
    "DS001", "dataset", Severity.ERROR,
    "no two samples may share a content fingerprint",
)
DS002 = rule(
    "DS002", "dataset", Severity.ERROR,
    "sample ids must be unique",
)
DS003 = rule(
    "DS003", "dataset", Severity.WARNING,
    "class balance should not drift far from parity",
)
DS004 = rule(
    "DS004", "dataset", Severity.ERROR,
    "every sample must be structurally valid (arrays, label, loop features)",
)
DS005 = rule(
    "DS005", "dataset", Severity.ERROR,
    "the oracle label must not contradict a statically provable dependence "
    "verdict",
)

#: DS003 fires when the minority class share drops below this
_BALANCE_FLOOR = 0.25


def check_sample_structure(
    report: LintReport, sample: LoopSample, where: Optional[str] = None
) -> None:
    """DS004 (delegating the array triple to the GR rules) for one sample."""
    where = where or f"sample:{sample.sample_id}"
    check_graph_arrays(
        report, sample.adjacency, sample.x_semantic, sample.x_structural, where
    )
    if sample.label not in (0, 1):
        report.emit(
            DS004, where,
            f"label {sample.label!r} is not 0/1",
            {"label": repr(sample.label)},
        )
    lf = sample.loop_features
    if getattr(lf, "shape", None) != (7,):
        report.emit(
            DS004, where,
            f"loop_features has shape {getattr(lf, 'shape', None)}, "
            "expected (7,)",
            {"shape": repr(getattr(lf, "shape", None))},
        )
    if not sample.statements:
        report.emit(DS004, where, "sample has an empty statement sequence")


def check_dataset(
    report: LintReport,
    dataset: LoopDataset,
    per_sample: bool = True,
) -> None:
    """DS001–DS004 over a dataset."""
    seen_fp: Dict[str, str] = {}
    seen_id: Dict[str, int] = {}
    for i, sample in enumerate(dataset.samples):
        where = f"sample:{sample.sample_id}"
        if sample.sample_id in seen_id:
            report.emit(
                DS002, where,
                f"sample id also used at index {seen_id[sample.sample_id]}",
                {"first_index": seen_id[sample.sample_id], "index": i},
            )
        else:
            seen_id[sample.sample_id] = i
        fp = sample.fingerprint()
        if fp in seen_fp:
            report.emit(
                DS001, where,
                f"sample content duplicates {seen_fp[fp]!r}",
                {"duplicate_of": seen_fp[fp], "fingerprint": fp},
            )
        else:
            seen_fp[fp] = sample.sample_id
        if per_sample:
            check_sample_structure(report, sample, where)

    if len(dataset) >= 8:
        neg, pos = dataset.class_counts()
        minority = min(neg, pos) / max(1, neg + pos)
        if minority < _BALANCE_FLOOR:
            report.emit(
                DS003, f"dataset:{dataset.name}",
                f"minority class share {minority:.2f} is below "
                f"{_BALANCE_FLOOR} ({pos} parallel / {neg} non-parallel)",
                {"positive": pos, "negative": neg, "minority_share": minority},
            )


def untransformed_variants() -> set:
    """Pipeline names that apply zero passes (the only variants DS005 judges)."""
    from repro.ir.passes.pipeline import OPT_PIPELINES

    return {name for name, passes in OPT_PIPELINES.items() if not passes}


def cross_validate_labels(
    report: LintReport,
    samples: Sequence[LoopSample],
    programs: Mapping[str, ast.Program],
) -> Dict[str, int]:
    """DS005 over ``samples``; ``programs`` maps program name -> source AST.

    Returns counters describing coverage (how many samples were judged,
    and with which verdicts) so callers can surface "the rule ran" in
    stats and tests — a cross-validator that silently judges nothing
    would be indistinguishable from a healthy dataset.
    """
    plain = untransformed_variants()
    verdict_cache: Dict[str, Dict[str, object]] = {}
    counters = {
        "judged": 0, "provably_parallel": 0, "provably_serial": 0,
        "unknown": 0, "skipped": 0, "quirky": 0, "contradictions": 0,
    }
    for sample in samples:
        variant = sample.meta.get("variant")
        program = programs.get(sample.program_name)
        if variant not in plain or program is None:
            counters["skipped"] += 1
            continue
        if sample.meta.get("annotation_quirk"):
            # the label is deliberate annotation noise (cf. IS #452): a
            # provable contradiction here is expected, not a defect
            counters["quirky"] += 1
            continue
        if program.name not in verdict_cache:
            verdict_cache[program.name] = static_loop_verdicts(program)
        analysis = verdict_cache[program.name].get(sample.loop_id)
        if analysis is None:
            counters["skipped"] += 1
            continue
        counters["judged"] += 1
        verdict = analysis.verdict
        counters[verdict.value] = counters.get(verdict.value, 0) + 1
        contradiction = (
            (verdict is StaticVerdict.PROVABLY_PARALLEL and sample.label == 0)
            or (verdict is StaticVerdict.PROVABLY_SERIAL and sample.label == 1)
        )
        if contradiction:
            counters["contradictions"] += 1
            report.emit(
                DS005, f"sample:{sample.sample_id}",
                f"oracle label {sample.label} contradicts static verdict "
                f"{verdict.value} ({analysis.reason_text()})",
                {
                    "sample_id": sample.sample_id,
                    "label": sample.label,
                    "verdict": verdict.value,
                    "loop_id": sample.loop_id,
                    "program": sample.program_name,
                    "reasons": list(analysis.reasons),
                },
            )
    return counters
