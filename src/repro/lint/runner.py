"""Lint entry points: one function per artifact kind.

Each function returns a :class:`~repro.lint.core.LintReport`; callers
decide what to do with findings (quarantine a sample, fail a build, turn
them into an HTTP 422 payload).  All entry points accept a shared
:class:`~repro.lint.core.LintConfig` for suppressions/strictness.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.dataset.types import LoopDataset, LoopSample
from repro.ir import ast_nodes as ast
from repro.ir.linear import IRProgram
from repro.lint import (
    advisor_rules,
    dataset_rules,
    graph_rules,
    ir_rules,
    peg_rules,
    tape_rules,
)
from repro.lint.core import LintConfig, LintReport
from repro.peg.graph import PEG


def lint_ir(
    program: IRProgram,
    config: Optional[LintConfig] = None,
    ranges=None,
) -> LintReport:
    """IR rules over one lowered program: structural (IR001/IR002) plus
    the value-range rules (IR004–IR006).  Pass a precomputed
    :class:`~repro.analysis.ranges.ProgramRanges` to skip re-running the
    fixpoint engine."""
    report = LintReport(config)
    ir_rules.check_ir_program(report, program)
    ir_rules.check_ir_ranges(report, program, ranges=ranges)
    return report


def lint_program(
    program: ast.Program, config: Optional[LintConfig] = None
) -> LintReport:
    """AST rules (IR003) over one MiniC program."""
    report = LintReport(config)
    ir_rules.check_ast_program(report, program)
    return report


def lint_peg(
    peg: PEG,
    config: Optional[LintConfig] = None,
    full_graph: bool = True,
    sortpool_k: int = peg_rules._DEFAULT_SORTPOOL_K,
) -> LintReport:
    """PEG rules (PEG001–PEG005) over a PEG or sub-PEG view."""
    report = LintReport(config)
    peg_rules.check_peg(
        report, peg, full_graph=full_graph, sortpool_k=sortpool_k
    )
    return report


def lint_graph_arrays(
    adjacency: np.ndarray,
    x_semantic: np.ndarray,
    x_structural: np.ndarray,
    where: str = "graph",
    config: Optional[LintConfig] = None,
    max_nodes: Optional[int] = None,
) -> LintReport:
    """GR rules over one raw array triple (the serving admission gate)."""
    report = LintReport(config)
    graph_rules.check_graph_arrays(
        report, adjacency, x_semantic, x_structural, where, max_nodes
    )
    return report


def lint_samples(
    samples: Iterable[LoopSample], config: Optional[LintConfig] = None
) -> LintReport:
    """Per-sample structural rules (GR + DS004) — the cheap subset used to
    quarantine samples during assembly and revalidate cached shards."""
    report = LintReport(config)
    for sample in samples:
        dataset_rules.check_sample_structure(report, sample)
    return report


def lint_tape_consistency(
    samples: Iterable[LoopSample],
    config: Optional[LintConfig] = None,
    max_graphs: Optional[int] = None,
) -> LintReport:
    """GR005: the tape-compiled forward must match the interpreted one on
    real samples (NaN/shape/value drift).  Cheap enough for ``--quick``."""
    report = LintReport(config)
    compared = tape_rules.check_tape_consistency(
        report, samples, max_graphs=max_graphs
    )
    report.stats["tape_consistency"] = {"graphs": compared}
    return report


def lint_quantized_consistency(
    samples: Iterable[LoopSample],
    config: Optional[LintConfig] = None,
    max_graphs: Optional[int] = None,
    calibration=None,
) -> LintReport:
    """GR006: the quantized fast-tier forward must stay within the int8
    error budget of the float forward on real samples (NaN, drift beyond
    tolerance, confident verdict flips).  ``calibration`` overrides the
    self-recorded scales — the corruption tests inject a poisoned one."""
    report = LintReport(config)
    report.stats["quantized_consistency"] = tape_rules.check_quantized_consistency(
        report, samples, max_graphs=max_graphs, calibration=calibration
    )
    return report


def lint_advice_plans(
    plans: Mapping[str, object],
    programs: Mapping[str, ast.Program],
    config: Optional[LintConfig] = None,
) -> LintReport:
    """AD001: stored advice plans versus a fresh static-prover run.

    ``plans`` maps loop ids to :class:`~repro.advisor.plan.AdvicePlan`
    objects or their wire dicts (the ``/v1/advise`` index format);
    ``programs`` maps program names to their MiniC ASTs.
    """
    report = LintReport(config)
    t0 = time.perf_counter()
    judged = advisor_rules.check_advice_plans(report, plans, programs)
    report.note_rule(
        "AD001", checked=judged, wall_ms=(time.perf_counter() - t0) * 1e3
    )
    report.stats["advice_plans"] = {"judged": judged, "stored": len(plans)}
    return report


def lint_dataset(
    dataset: LoopDataset,
    config: Optional[LintConfig] = None,
    programs: Optional[Mapping[str, ast.Program]] = None,
) -> LintReport:
    """Dataset rules (DS001–DS004, plus DS005 when ``programs`` maps the
    dataset's program names to their source ASTs)."""
    report = LintReport(config)
    dataset_rules.check_dataset(report, dataset)
    if programs is not None:
        t0 = time.perf_counter()
        counters = dataset_rules.cross_validate_labels(
            report, dataset.samples, programs
        )
        report.note_rule(
            "DS005", checked=counters.get("judged", 0),
            wall_ms=(time.perf_counter() - t0) * 1e3,
        )
        report.stats["crossval"] = counters
    return report
