"""IR rules: LinearIR well-formedness beyond :mod:`repro.ir.verify`.

``ir.verify`` raises on hard contract violations (SSA, dominance,
terminators).  The lint rules here cover shapes that *pass* the verifier
but indicate a broken producer: unreachable blocks left behind by a
transformation, loop metadata whose bracketing pseudo-ops have gone
missing or migrated into impossible positions, registers flowing into a
loop from blocks that do not dominate it, and degenerate source-level
loop bounds.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Set

from repro.ir import ast_nodes as ast
from repro.ir.linear import IRFunction, IRProgram, Opcode
from repro.lint.core import LintReport, Severity, rule

IR001 = rule(
    "IR001", "ir", Severity.ERROR,
    "every basic block must be reachable from the function entry",
)
IR002 = rule(
    "IR002", "ir", Severity.ERROR,
    "loop metadata, bracketing pseudo-ops, and cross-loop register uses "
    "must be consistent",
)
IR003 = rule(
    "IR003", "ir", Severity.ERROR,
    "constant loop bounds must describe a terminating, non-empty iteration "
    "space (zero-trip loops warn; non-positive steps error)",
)
IR004 = rule(
    "IR004", "ir", Severity.ERROR,
    "array subscripts must stay inside the declared array bounds (fires "
    "only when the value-range analysis proves every execution of the "
    "access is out of bounds)",
)
IR005 = rule(
    "IR005", "ir", Severity.WARNING,
    "conditional branches must be able to go both ways (a range-dead edge "
    "warns; a range-dead block that stores to memory errors)",
)
IR006 = rule(
    "IR006", "ir", Severity.WARNING,
    "divisors must be provably nonzero and loops must be enterable (a "
    "divisor that is exactly zero errors; a finite divisor interval "
    "straddling zero or a provably zero-trip loop warns)",
)


def check_ir_function(report: LintReport, fn: IRFunction, program: IRProgram) -> None:
    t0 = time.perf_counter()
    _check_reachability(report, fn)
    t1 = time.perf_counter()
    report.note_rule("IR001", checked=len(fn.blocks), wall_ms=(t1 - t0) * 1e3)
    _check_loop_structure(report, fn)
    report.note_rule(
        "IR002", checked=len(fn.loops),
        wall_ms=(time.perf_counter() - t1) * 1e3,
    )


def check_ir_program(report: LintReport, program: IRProgram) -> None:
    for fn in program.functions.values():
        check_ir_function(report, fn, program)


# -- IR001: reachability ----------------------------------------------------


def _cfg_reachable(fn: IRFunction) -> Set[str]:
    if not fn.blocks:
        return set()
    labels = {b.label for b in fn.blocks}
    seen: Set[str] = set()
    stack = [fn.blocks[0].label]
    while stack:
        label = stack.pop()
        if label in seen or label not in labels:
            continue
        seen.add(label)
        for succ in fn.block(label).successors():
            stack.append(succ)
    return seen


def _check_reachability(report: LintReport, fn: IRFunction) -> None:
    if not fn.blocks:
        return
    seen = _cfg_reachable(fn)
    for block in fn.blocks:
        if block.label not in seen:
            report.emit(
                IR001, f"ir:{fn.name}/{block.label}",
                "block is unreachable from the function entry",
                {"function": fn.name, "block": block.label},
            )


# -- IR002: loop structure --------------------------------------------------


def _check_loop_structure(report: LintReport, fn: IRFunction) -> None:
    labels = {b.label for b in fn.blocks}
    # where each bracketing pseudo-op of each loop lives
    op_blocks: Dict[str, Dict[Opcode, Set[str]]] = {}
    for block in fn.blocks:
        for instr in block.instrs:
            if instr.opcode in (Opcode.LOOPENTER, Opcode.LOOPNEXT, Opcode.LOOPEXIT):
                loop_id = instr.operands[0]
                op_blocks.setdefault(loop_id, {}).setdefault(
                    instr.opcode, set()
                ).add(block.label)

    from repro.profiler.static_info import loop_block_sets

    block_sets = loop_block_sets(fn)

    for loop_id, info in fn.loops.items():
        where = f"ir:{fn.name}/{loop_id}"
        for field_name, label in (
            ("header", info.header),
            ("body_entry", info.body_entry),
            ("exit", info.exit),
        ):
            if label not in labels:
                report.emit(
                    IR002, where,
                    f"loop {field_name} block {label!r} does not exist",
                    {"loop": loop_id, "field": field_name, "block": label},
                )
        ops = op_blocks.get(loop_id, {})
        for opcode in (Opcode.LOOPENTER, Opcode.LOOPNEXT, Opcode.LOOPEXIT):
            if not ops.get(opcode):
                report.emit(
                    IR002, where,
                    f"loop has no {opcode.value} pseudo-op",
                    {"loop": loop_id, "missing": opcode.value},
                )
        loop_blocks = block_sets.get(loop_id, set())
        if loop_blocks:
            inside_enter = ops.get(Opcode.LOOPENTER, set()) & loop_blocks
            if inside_enter:
                report.emit(
                    IR002, where,
                    f"loopenter appears inside the loop body "
                    f"({sorted(inside_enter)})",
                    {"loop": loop_id, "blocks": sorted(inside_enter)},
                )
            outside_next = ops.get(Opcode.LOOPNEXT, set()) - loop_blocks
            if outside_next:
                report.emit(
                    IR002, where,
                    f"loopnext appears outside the loop body "
                    f"({sorted(outside_next)})",
                    {"loop": loop_id, "blocks": sorted(outside_next)},
                )
            _check_loop_register_flow(report, fn, loop_id, loop_blocks, where)


def _check_loop_register_flow(
    report: LintReport,
    fn: IRFunction,
    loop_id: str,
    loop_blocks: Set[str],
    where: str,
) -> None:
    """Use-before-def across the loop boundary: a register used inside the
    loop must be defined inside it or in a block dominating the header
    (SSA dominance alone cannot see this when the CFG is also broken)."""
    from repro.ir.dominators import compute_dominators, dominates
    from repro.ir.linear import Reg

    info = fn.loops[loop_id]
    if info.header not in {b.label for b in fn.blocks}:
        return
    dom = compute_dominators(fn)
    def_block: Dict[str, str] = {}
    for block in fn.blocks:
        for instr in block.instrs:
            if instr.result is not None:
                def_block.setdefault(instr.result.name, block.label)
    for block in fn.blocks:
        if block.label not in loop_blocks:
            continue
        for instr in block.instrs:
            for op in instr.operands:
                if not isinstance(op, Reg):
                    continue
                src = def_block.get(op.name)
                if src is None:
                    continue  # undefined registers are ir.verify's domain
                if src in loop_blocks or dominates(dom, src, info.header):
                    continue
                report.emit(
                    IR002, where,
                    f"register %{op.name} used in loop block {block.label} is "
                    f"defined in {src}, which neither belongs to the loop nor "
                    f"dominates its header",
                    {
                        "loop": loop_id, "register": op.name,
                        "use_block": block.label, "def_block": src,
                    },
                )


# -- IR004/IR005/IR006: value-range rules ------------------------------------


def check_ir_ranges(
    report: LintReport, program: IRProgram, ranges=None
) -> Dict[str, int]:
    """Value-range rules over a lowered program.

    Runs the abstract-interpretation engine (:mod:`repro.analysis.ranges`)
    unless a precomputed :class:`~repro.analysis.ranges.ProgramRanges` is
    supplied, then checks every subscript against its array's declared
    size (IR004), every ``condbr`` edge and block for range-deadness
    (IR005), and every divisor and loop header for zero hazards (IR006).

    All three rules fire only on *proofs* — an interval that merely
    might include a bad value stays silent (except the explicitly
    "possible" WARNING tiers documented on each rule).  Returns per-rule
    checked counts for the ``--json`` stats block.
    """
    checked = {"IR004": 0, "IR005": 0, "IR006": 0}
    t0 = time.perf_counter()
    if ranges is None:
        try:
            from repro.analysis.ranges import analyze_program

            ranges = analyze_program(program)
        except Exception:
            # IR too broken to analyze: ir.verify / IR001's domain
            return checked
    for fn in program.functions.values():
        franges = ranges.functions.get(fn.name)
        if franges is None:
            continue
        cfg_reachable = _cfg_reachable(fn)
        for block in fn.blocks:
            if not franges.reachable(block.label):
                # CFG-unreachable blocks are IR001's finding, not ours
                if block.label in cfg_reachable:
                    _check_range_dead_block(report, fn, block, checked)
                continue
            for instr in block.instrs:
                fact = franges.facts.get(instr.iid)
                if instr.opcode in (Opcode.LOAD, Opcode.STORE):
                    checked["IR004"] += 1
                    _check_subscript(report, program, fn, block, instr, fact)
                elif instr.opcode in (Opcode.DIV, Opcode.MOD):
                    checked["IR006"] += 1
                    _check_divisor(report, fn, block, instr, fact)
                elif instr.opcode is Opcode.CONDBR:
                    checked["IR005"] += 1
                    _check_dead_edge(report, fn, block, instr, fact)
    for loop_id in ranges.zero_trip_loops():
        checked["IR006"] += 1
        report.emit(
            IR006, f"ir:{program.name}/{loop_id}",
            "loop header is reachable but its body never is: the loop is "
            "provably zero-trip",
            {"loop": loop_id, "kind": "zero_trip"},
        )
    # the fixpoint engine powers all three rules equally: split its wall
    # time (plus the cheap walk) evenly so per-rule numbers stay honest
    share = (time.perf_counter() - t0) * 1e3 / 3.0
    for rule_id, n in checked.items():
        report.note_rule(rule_id, checked=n, wall_ms=share)
    return checked


def _where(fn: IRFunction, block, instr) -> str:
    return f"ir:{fn.name}/{block.label}#{instr.iid}"


def _loop_detail(instr) -> Dict[str, object]:
    out: Dict[str, object] = {"line": instr.line}
    if instr.loop_id:
        out["loop"] = instr.loop_id
    return out


def _check_subscript(
    report: LintReport, program: IRProgram, fn: IRFunction, block, instr, fact
) -> None:
    if fact is None or fact.index is None:
        return
    size = program.arrays.get(instr.operands[0])
    if size is None:
        return
    bounds = fact.index.int_bounds()
    if bounds is None:
        return
    lo, hi = bounds
    if hi < 0 or lo >= size:
        report.emit(
            IR004, _where(fn, block, instr),
            f"subscript of {instr.operands[0]!r} truncates into [{lo}, {hi}] "
            f"but the array has {size} cells: every execution is out of "
            f"bounds",
            {
                "array": instr.operands[0], "cells": size,
                "index_lo": lo, "index_hi": hi, **_loop_detail(instr),
            },
        )


def _check_divisor(report: LintReport, fn: IRFunction, block, instr, fact) -> None:
    if fact is None or fact.divisor is None or fact.divisor.is_bottom:
        return
    iv = fact.divisor
    if iv.lo == 0.0 and iv.hi == 0.0:
        report.emit(
            IR006, _where(fn, block, instr),
            "divisor is provably zero: every execution of this "
            f"{instr.opcode.value} traps",
            {"kind": "div_by_zero", **_loop_detail(instr)},
            severity=Severity.ERROR,
        )
    elif iv.is_finite and iv.contains(0.0):
        report.emit(
            IR006, _where(fn, block, instr),
            f"divisor interval [{iv.lo:g}, {iv.hi:g}] contains zero: "
            f"possible division by zero",
            {
                "kind": "possible_div_by_zero",
                "lo": iv.lo, "hi": iv.hi, **_loop_detail(instr),
            },
        )


def _check_dead_edge(report: LintReport, fn: IRFunction, block, instr, fact) -> None:
    if fact is None or fact.dead_edge is None:
        return
    report.emit(
        IR005, _where(fn, block, instr),
        f"condition is provably one-sided: the edge to {fact.dead_edge!r} "
        f"is never taken",
        {"dead_target": fact.dead_edge, **_loop_detail(instr)},
    )


def _check_range_dead_block(
    report: LintReport, fn: IRFunction, block, checked: Dict[str, int]
) -> None:
    """A block the CFG reaches but the range analysis proves dead.  Only
    escalate when it has observable effects (a store): dead straight-line
    math is IR005's WARNING via the one-sided branch that guards it."""
    checked["IR005"] += 1
    stores = [i for i in block.instrs if i.opcode is Opcode.STORE]
    if stores:
        report.emit(
            IR005, f"ir:{fn.name}/{block.label}",
            f"block is provably never executed yet stores to "
            f"{sorted({s.operands[0] for s in stores})}: dead code with "
            f"memory effects",
            {
                "block": block.label,
                "arrays": sorted({s.operands[0] for s in stores}),
            },
            severity=Severity.ERROR,
        )


# -- IR003: degenerate source-level loop bounds -----------------------------


def check_ast_program(report: LintReport, program: ast.Program) -> None:
    """AST-level checks (IR003): degenerate ``For`` bounds."""
    t0 = time.perf_counter()
    n_loops = 0
    for fn in program.functions.values():
        n_loops += sum(1 for _ in ast.loops_in(fn.body))
    for fn in program.functions.values():
        for loop in ast.loops_in(fn.body):
            loop_id = loop.loop_id or f"{fn.name}:<anon>@{loop.line}"
            where = f"ast:{program.name}/{loop_id}"
            step = loop.step
            if isinstance(step, ast.Const) and step.value <= 0:
                report.emit(
                    IR003, where,
                    f"constant step {step.value} is not positive: the loop "
                    "never advances",
                    {"loop": loop_id, "step": step.value},
                )
                continue
            if (
                isinstance(loop.lo, ast.Const)
                and isinstance(loop.hi, ast.Const)
                and loop.lo.value >= loop.hi.value
            ):
                report.emit(
                    IR003, where,
                    f"constant bounds [{loop.lo.value}, {loop.hi.value}) give "
                    "a zero-trip loop",
                    {"loop": loop_id, "lo": loop.lo.value, "hi": loop.hi.value},
                    severity=Severity.WARNING,
                )
    report.note_rule(
        "IR003", checked=n_loops, wall_ms=(time.perf_counter() - t0) * 1e3
    )
