"""IR rules: LinearIR well-formedness beyond :mod:`repro.ir.verify`.

``ir.verify`` raises on hard contract violations (SSA, dominance,
terminators).  The lint rules here cover shapes that *pass* the verifier
but indicate a broken producer: unreachable blocks left behind by a
transformation, loop metadata whose bracketing pseudo-ops have gone
missing or migrated into impossible positions, registers flowing into a
loop from blocks that do not dominate it, and degenerate source-level
loop bounds.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.ir import ast_nodes as ast
from repro.ir.linear import IRFunction, IRProgram, Opcode
from repro.lint.core import LintReport, Severity, rule

IR001 = rule(
    "IR001", "ir", Severity.ERROR,
    "every basic block must be reachable from the function entry",
)
IR002 = rule(
    "IR002", "ir", Severity.ERROR,
    "loop metadata, bracketing pseudo-ops, and cross-loop register uses "
    "must be consistent",
)
IR003 = rule(
    "IR003", "ir", Severity.ERROR,
    "constant loop bounds must describe a terminating, non-empty iteration "
    "space (zero-trip loops warn; non-positive steps error)",
)


def check_ir_function(report: LintReport, fn: IRFunction, program: IRProgram) -> None:
    _check_reachability(report, fn)
    _check_loop_structure(report, fn)


def check_ir_program(report: LintReport, program: IRProgram) -> None:
    for fn in program.functions.values():
        check_ir_function(report, fn, program)


# -- IR001: reachability ----------------------------------------------------


def _check_reachability(report: LintReport, fn: IRFunction) -> None:
    if not fn.blocks:
        return
    labels = {b.label for b in fn.blocks}
    seen: Set[str] = set()
    stack = [fn.blocks[0].label]
    while stack:
        label = stack.pop()
        if label in seen or label not in labels:
            continue
        seen.add(label)
        for succ in fn.block(label).successors():
            stack.append(succ)
    for block in fn.blocks:
        if block.label not in seen:
            report.emit(
                IR001, f"ir:{fn.name}/{block.label}",
                "block is unreachable from the function entry",
                {"function": fn.name, "block": block.label},
            )


# -- IR002: loop structure --------------------------------------------------


def _check_loop_structure(report: LintReport, fn: IRFunction) -> None:
    labels = {b.label for b in fn.blocks}
    # where each bracketing pseudo-op of each loop lives
    op_blocks: Dict[str, Dict[Opcode, Set[str]]] = {}
    for block in fn.blocks:
        for instr in block.instrs:
            if instr.opcode in (Opcode.LOOPENTER, Opcode.LOOPNEXT, Opcode.LOOPEXIT):
                loop_id = instr.operands[0]
                op_blocks.setdefault(loop_id, {}).setdefault(
                    instr.opcode, set()
                ).add(block.label)

    from repro.profiler.static_info import loop_block_sets

    block_sets = loop_block_sets(fn)

    for loop_id, info in fn.loops.items():
        where = f"ir:{fn.name}/{loop_id}"
        for field_name, label in (
            ("header", info.header),
            ("body_entry", info.body_entry),
            ("exit", info.exit),
        ):
            if label not in labels:
                report.emit(
                    IR002, where,
                    f"loop {field_name} block {label!r} does not exist",
                    {"loop": loop_id, "field": field_name, "block": label},
                )
        ops = op_blocks.get(loop_id, {})
        for opcode in (Opcode.LOOPENTER, Opcode.LOOPNEXT, Opcode.LOOPEXIT):
            if not ops.get(opcode):
                report.emit(
                    IR002, where,
                    f"loop has no {opcode.value} pseudo-op",
                    {"loop": loop_id, "missing": opcode.value},
                )
        loop_blocks = block_sets.get(loop_id, set())
        if loop_blocks:
            inside_enter = ops.get(Opcode.LOOPENTER, set()) & loop_blocks
            if inside_enter:
                report.emit(
                    IR002, where,
                    f"loopenter appears inside the loop body "
                    f"({sorted(inside_enter)})",
                    {"loop": loop_id, "blocks": sorted(inside_enter)},
                )
            outside_next = ops.get(Opcode.LOOPNEXT, set()) - loop_blocks
            if outside_next:
                report.emit(
                    IR002, where,
                    f"loopnext appears outside the loop body "
                    f"({sorted(outside_next)})",
                    {"loop": loop_id, "blocks": sorted(outside_next)},
                )
            _check_loop_register_flow(report, fn, loop_id, loop_blocks, where)


def _check_loop_register_flow(
    report: LintReport,
    fn: IRFunction,
    loop_id: str,
    loop_blocks: Set[str],
    where: str,
) -> None:
    """Use-before-def across the loop boundary: a register used inside the
    loop must be defined inside it or in a block dominating the header
    (SSA dominance alone cannot see this when the CFG is also broken)."""
    from repro.ir.dominators import compute_dominators, dominates
    from repro.ir.linear import Reg

    info = fn.loops[loop_id]
    if info.header not in {b.label for b in fn.blocks}:
        return
    dom = compute_dominators(fn)
    def_block: Dict[str, str] = {}
    for block in fn.blocks:
        for instr in block.instrs:
            if instr.result is not None:
                def_block.setdefault(instr.result.name, block.label)
    for block in fn.blocks:
        if block.label not in loop_blocks:
            continue
        for instr in block.instrs:
            for op in instr.operands:
                if not isinstance(op, Reg):
                    continue
                src = def_block.get(op.name)
                if src is None:
                    continue  # undefined registers are ir.verify's domain
                if src in loop_blocks or dominates(dom, src, info.header):
                    continue
                report.emit(
                    IR002, where,
                    f"register %{op.name} used in loop block {block.label} is "
                    f"defined in {src}, which neither belongs to the loop nor "
                    f"dominates its header",
                    {
                        "loop": loop_id, "register": op.name,
                        "use_block": block.label, "def_block": src,
                    },
                )


# -- IR003: degenerate source-level loop bounds -----------------------------


def check_ast_program(report: LintReport, program: ast.Program) -> None:
    """AST-level checks (IR003): degenerate ``For`` bounds."""
    for fn in program.functions.values():
        for loop in ast.loops_in(fn.body):
            loop_id = loop.loop_id or f"{fn.name}:<anon>@{loop.line}"
            where = f"ast:{program.name}/{loop_id}"
            step = loop.step
            if isinstance(step, ast.Const) and step.value <= 0:
                report.emit(
                    IR003, where,
                    f"constant step {step.value} is not positive: the loop "
                    "never advances",
                    {"loop": loop_id, "step": step.value},
                )
                continue
            if (
                isinstance(loop.lo, ast.Const)
                and isinstance(loop.hi, ast.Const)
                and loop.lo.value >= loop.hi.value
            ):
                report.emit(
                    IR003, where,
                    f"constant bounds [{loop.lo.value}, {loop.hi.value}) give "
                    "a zero-trip loop",
                    {"loop": loop_id, "lo": loop.lo.value, "hi": loop.hi.value},
                    severity=Severity.WARNING,
                )
