"""PEG rules: structural invariants of PEGs and sub-PEG views.

``full_graph=True`` enables checks that only hold on a whole-program PEG
(carried-loop references must resolve to loop nodes); sub-PEG views
legitimately drop the loop nodes their dependence edges were carried by.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.analysis.features import FEATURE_NAMES
from repro.peg.graph import PEG, EdgeKind
from repro.lint.core import LintReport, Severity, rule

import math

PEG001 = rule(
    "PEG001", "peg", Severity.ERROR,
    "edge endpoints and adjacency indexes must be consistent with the node "
    "and edge tables",
)
PEG002 = rule(
    "PEG002", "peg", Severity.ERROR,
    "the CHILD hierarchy must be acyclic with at most one parent per node",
)
PEG003 = rule(
    "PEG003", "peg", Severity.ERROR,
    "dependence edges must aggregate at least one dependence; self-dependence "
    "edges must be loop-carried",
)
PEG004 = rule(
    "PEG004", "peg", Severity.ERROR,
    "node features must be finite, non-negative, and use known feature names",
)
PEG005 = rule(
    "PEG005", "peg", Severity.WARNING,
    "sub-PEG size should not exceed the model's SortPooling k",
)

#: default SortPooling k (repro.models.dgcnn.DGCNNConfig.sortpool_k)
_DEFAULT_SORTPOOL_K = 135


def check_peg(
    report: LintReport,
    peg: PEG,
    where_prefix: str = "",
    full_graph: bool = True,
    sortpool_k: int = _DEFAULT_SORTPOOL_K,
) -> None:
    where = where_prefix or f"peg:{peg.name}"
    _check_endpoints(report, peg, where)
    _check_hierarchy(report, peg, where)
    _check_dep_edges(report, peg, where, full_graph)
    _check_features(report, peg, where)
    if not full_graph and len(peg.nodes) > sortpool_k:
        report.emit(
            PEG005, where,
            f"sub-PEG has {len(peg.nodes)} nodes; SortPooling keeps only "
            f"{sortpool_k} — the tail is truncated",
            {"nodes": len(peg.nodes), "sortpool_k": sortpool_k},
        )


# -- PEG001 -----------------------------------------------------------------


def _check_endpoints(report: LintReport, peg: PEG, where: str) -> None:
    for i, edge in enumerate(peg.edges):
        for end, nid in (("src", edge.src), ("dst", edge.dst)):
            if nid not in peg.nodes:
                report.emit(
                    PEG001, where,
                    f"{edge.kind.value} edge #{i} {end} {nid!r} is not a node",
                    {"edge": i, "end": end, "node": nid},
                )
    # adjacency indexes must cover exactly the edge list
    indexed: Set[int] = set()
    for nid, idxs in peg._out.items():
        for idx in idxs:
            if idx >= len(peg.edges) or peg.edges[idx].src != nid:
                report.emit(
                    PEG001, where,
                    f"out-index of node {nid!r} references edge #{idx} "
                    "with a different source",
                    {"node": nid, "edge": idx},
                )
            else:
                indexed.add(idx)
    for nid, idxs in peg._in.items():
        for idx in idxs:
            if idx >= len(peg.edges) or peg.edges[idx].dst != nid:
                report.emit(
                    PEG001, where,
                    f"in-index of node {nid!r} references edge #{idx} "
                    "with a different sink",
                    {"node": nid, "edge": idx},
                )
    missing = set(range(len(peg.edges))) - indexed
    for idx in sorted(missing):
        edge = peg.edges[idx]
        report.emit(
            PEG001, where,
            f"edge #{idx} ({edge.src!r} -> {edge.dst!r}) is absent from the "
            "out-index",
            {"edge": idx, "src": edge.src, "dst": edge.dst},
        )


# -- PEG002 -----------------------------------------------------------------


def _check_hierarchy(report: LintReport, peg: PEG, where: str) -> None:
    # walk the edge list directly, not peg.children(): the adjacency index
    # may itself be corrupt (PEG001's findings) and must not crash us here
    parents: Dict[str, Set[str]] = {}
    children: Dict[str, list] = {}
    for edge in peg.edges:
        if edge.kind is not EdgeKind.CHILD:
            continue
        children.setdefault(edge.src, []).append(edge.dst)
        if edge.dst in peg.nodes:
            parents.setdefault(edge.dst, set()).add(edge.src)
    for nid in sorted(parents):
        if len(parents[nid]) > 1:
            report.emit(
                PEG002, where,
                f"node {nid!r} has {len(parents[nid])} hierarchy parents "
                f"({sorted(parents[nid])})",
                {"node": nid, "parents": sorted(parents[nid])},
            )
    # cycle detection over CHILD edges (iterative three-color DFS)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {nid: WHITE for nid in peg.nodes}
    for root in peg.nodes:
        if color[root] != WHITE:
            continue
        stack = [(root, iter(children.get(root, ())))]
        color[root] = GRAY
        while stack:
            nid, it = stack[-1]
            advanced = False
            for child in it:
                if child not in color:
                    continue  # dangling endpoint: PEG001's finding
                if color[child] == GRAY:
                    report.emit(
                        PEG002, where,
                        f"hierarchy cycle through {child!r}",
                        {"node": child},
                    )
                elif color[child] == WHITE:
                    color[child] = GRAY
                    stack.append((child, iter(children.get(child, ()))))
                    advanced = True
                    break
            if not advanced:
                color[nid] = BLACK
                stack.pop()


# -- PEG003 -----------------------------------------------------------------

_DEP_KINDS = {"RAW", "WAR", "WAW"}


def _check_dep_edges(
    report: LintReport, peg: PEG, where: str, full_graph: bool
) -> None:
    loop_ids = {
        node.loop_id for node in peg.loop_nodes() if node.loop_id is not None
    }
    for i, edge in enumerate(peg.edges):
        if edge.kind is not EdgeKind.DEP:
            continue
        unknown = set(edge.dep_counts) - _DEP_KINDS
        if unknown:
            report.emit(
                PEG003, where,
                f"dep edge #{i} has unknown kinds {sorted(unknown)}",
                {"edge": i, "kinds": sorted(unknown)},
            )
        if edge.total_deps <= 0:
            report.emit(
                PEG003, where,
                f"dep edge #{i} ({edge.src!r} -> {edge.dst!r}) aggregates "
                "zero dependences",
                {"edge": i, "src": edge.src, "dst": edge.dst},
            )
        if edge.src == edge.dst and not edge.carried_loops:
            report.emit(
                PEG003, where,
                f"self-dependence edge #{i} on {edge.src!r} is not carried "
                "by any loop (an intra-iteration self-dependence is vacuous)",
                {"edge": i, "node": edge.src},
            )
        if full_graph:
            for lid in sorted(edge.carried_loops):
                if lid not in loop_ids:
                    report.emit(
                        PEG003, where,
                        f"dep edge #{i} is carried by unknown loop {lid!r}",
                        {"edge": i, "loop": lid},
                    )


# -- PEG004 -----------------------------------------------------------------


def _check_features(report: LintReport, peg: PEG, where: str) -> None:
    known = set(FEATURE_NAMES)
    for nid in sorted(peg.nodes):
        node = peg.nodes[nid]
        for name, value in node.features.items():
            if name not in known:
                report.emit(
                    PEG004, where,
                    f"node {nid!r} has unknown feature {name!r}",
                    {"node": nid, "feature": name},
                    severity=Severity.WARNING,
                )
                continue
            if not math.isfinite(value):
                report.emit(
                    PEG004, where,
                    f"node {nid!r} feature {name!r} is non-finite ({value})",
                    {"node": nid, "feature": name, "value": repr(value)},
                )
            elif value < 0.0:
                report.emit(
                    PEG004, where,
                    f"node {nid!r} feature {name!r} is negative ({value}); "
                    "dynamic features are log1p-compressed counts and can "
                    "never be negative",
                    {"node": nid, "feature": name, "value": value},
                )
