"""GR005/GR006: runtime forward-path consistency over real samples.

The trace-compiled runtime (:mod:`repro.runtime.tape`) promises outputs
byte-identical to the layer-by-layer interpreted forward; GR005 drives
both paths over real dataset samples with a deterministic probe model and
emits a finding on any NaN, shape drift, or value drift between them — the
runtime analogue of the GR001–GR004 raw-array checks, run as part of
``repro lint`` so dataset validation also exercises the compiled path the
serving fleet uses.

GR006 extends the wall to the quantized ``fast`` tier
(:mod:`repro.runtime.qtape`): the int8-grid float32 tape may drift from
the float path, but only within tolerance — NaN/Inf, shape drift, drift
beyond the quantization error budget, or a *confident* verdict flip
(argmax change on a sample the float path classified with real margin)
each raise a finding.  A poisoned calibration scale (wrong units, stale
checkpoint) saturates or zeroes activations and trips these checks — the
seeded-corruption matrix pins that.

Heavy dependencies (models, the runtime engine) are imported lazily so the
lint framework itself stays importable without the model stack.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.lint.core import LintReport, Severity, rule

GR005 = rule(
    "GR005", "graph", Severity.ERROR,
    "tape-compiled forward must match the interpreted forward exactly",
)

GR006 = rule(
    "GR006", "graph", Severity.ERROR,
    "quantized fast-tier forward must stay within tolerance of the float "
    "forward (finite, bounded drift, no confident verdict flips)",
)

#: deterministic probe-model seed — findings must be reproducible run-to-run
_PROBE_SEED = 0

#: graphs compared per lint run; the tape is shape-specialized per batch
#: size, so a handful of ragged samples covers the interesting classes
_DEFAULT_MAX_GRAPHS = 8

#: GR006 drift budget: absolute floor plus a fraction of the float logits'
#: dynamic range — int8 symmetric quantization of three contraction sites
#: lands orders of magnitude below this; a poisoned scale lands far above
_GR006_DRIFT_ATOL = 0.1
_GR006_DRIFT_RTOL = 0.05

#: float-path margin above which an argmax flip counts as *confident* —
#: flips inside the margin band are the tier trade-off, not corruption
_GR006_FLIP_MARGIN = 0.05


def _probe_model(picked: List):
    """The deterministic probe MV-GNN GR005/GR006 share, sized to ``picked``.

    Identical construction across calls (fixed seed, dims read from the
    samples) — what lets a calibration from :func:`probe_calibration` drive
    a later :func:`check_quantized_consistency` pass over the same data.
    """
    from repro.models.dgcnn import DGCNNConfig
    from repro.models.mvgnn import MVGNN, MVGNNConfig

    sem_dim = int(np.asarray(picked[0].x_semantic).shape[1])
    walk_dim = int(np.asarray(picked[0].x_structural).shape[1])
    config = MVGNNConfig(
        semantic_features=sem_dim,
        walk_types=walk_dim,
        view_features=16,
        node_view=DGCNNConfig(sortpool_k=6),
        struct_view=DGCNNConfig(sortpool_k=6),
    )
    model = MVGNN(config, rng=_PROBE_SEED)
    model.eval()
    return model


def check_tape_consistency(
    report: LintReport,
    samples: Iterable,
    where: str = "dataset",
    max_graphs: Optional[int] = None,
) -> int:
    """Run GR005 over ``samples`` (LoopSample-likes), emitting into ``report``.

    Builds a small deterministic MV-GNN sized to the samples' feature
    dimensions, classifies up to ``max_graphs`` of them through both the
    tape-compiled and the interpreted engine paths, and compares the logit
    matrices.  Returns the number of graphs compared (0 when there is
    nothing to check).
    """
    from repro.runtime.engine import Engine
    from repro.runtime.features import FeatureCache

    limit = _DEFAULT_MAX_GRAPHS if max_graphs is None else max_graphs
    picked = [s for _, s in zip(range(limit), samples)]
    if not picked:
        return 0
    model = _probe_model(picked)

    # one shared cache: the compiled path's hoisted D̃⁻¹Ã blocks feed the
    # interpreted engine too, so the comparison also covers the hoisting
    cache = FeatureCache()
    compiled = Engine(model, cache=cache, compile=True).logits_many(picked)
    interpreted = Engine(model, cache=cache, compile=False).logits_many(picked)

    if compiled.shape != interpreted.shape:
        report.emit(
            GR005, where,
            f"tape logits shape {compiled.shape} != interpreted "
            f"{interpreted.shape}",
            {
                "compiled_shape": list(compiled.shape),
                "interpreted_shape": list(interpreted.shape),
            },
        )
        return len(picked)

    bad_nan = int(np.sum(~np.isfinite(compiled)))
    if bad_nan:
        report.emit(
            GR005, where,
            f"tape logits contain {bad_nan} NaN/Inf values "
            f"(interpreted has {int(np.sum(~np.isfinite(interpreted)))})",
            {"count": bad_nan},
        )

    drift = np.abs(compiled - interpreted)
    drift = drift[np.isfinite(drift)]
    max_drift = float(drift.max()) if drift.size else 0.0
    if not np.array_equal(compiled, interpreted):
        rows = np.where(
            ~np.all(
                np.isclose(compiled, interpreted, rtol=0.0, atol=0.0),
                axis=1,
            )
        )[0]
        report.emit(
            GR005, where,
            f"tape logits drift from interpreted on {rows.size} of "
            f"{len(picked)} graphs (max abs drift {max_drift:.3e})",
            {"graphs": [int(r) for r in rows[:16]], "max_drift": max_drift},
        )
    return len(picked)


def probe_calibration(samples: Iterable, max_graphs: Optional[int] = None):
    """Record the probe model's :class:`Calibration` over ``samples``.

    The scales :func:`check_quantized_consistency` derives itself when no
    calibration is injected — exposed so the corruption-matrix tests can
    take a genuine calibration, poison one scale, and prove GR006 fires.
    """
    from repro.runtime.engine import Engine

    limit = _DEFAULT_MAX_GRAPHS if max_graphs is None else max_graphs
    picked = [s for _, s in zip(range(limit), samples)]
    if not picked:
        raise ValueError("probe_calibration needs at least one sample")
    engine = Engine(_probe_model(picked), compile=True)
    return engine.calibrate(picked)


def check_quantized_consistency(
    report: LintReport,
    samples: Iterable,
    where: str = "dataset",
    max_graphs: Optional[int] = None,
    calibration=None,
) -> Dict[str, object]:
    """Run GR006 over ``samples``, emitting into ``report``.

    Classifies up to ``max_graphs`` samples through the probe model's
    exact (float64 tape) and fast (calibrated int8-grid float32 tape)
    paths and compares the logit matrices against the quantization error
    budget.  ``calibration`` overrides the self-recorded scales (the
    corruption tests inject a poisoned one).  Returns the stats dict the
    lint runner records (graphs compared, max drift, verdict flips).
    """
    from repro.runtime.engine import Engine
    from repro.runtime.features import FeatureCache

    limit = _DEFAULT_MAX_GRAPHS if max_graphs is None else max_graphs
    picked = [s for _, s in zip(range(limit), samples)]
    stats: Dict[str, object] = {
        "graphs": 0, "max_drift": 0.0, "verdict_flips": 0,
    }
    if not picked:
        return stats
    model = _probe_model(picked)

    cache = FeatureCache()
    engine = Engine(model, cache=cache, compile=True)
    if calibration is None:
        calibration = engine.calibrate(picked)
    engine.calibration = calibration
    engine.reset_fast_tapes()

    exact = engine.logits_many(picked, precision="exact")
    fast = engine.logits_many(picked, precision="fast")
    stats["graphs"] = len(picked)

    if fast.shape != exact.shape:
        report.emit(
            GR006, where,
            f"fast-tier logits shape {fast.shape} != float {exact.shape}",
            {
                "fast_shape": list(fast.shape),
                "exact_shape": list(exact.shape),
            },
        )
        return stats

    bad_nan = int(np.sum(~np.isfinite(fast)))
    if bad_nan:
        report.emit(
            GR006, where,
            f"fast-tier logits contain {bad_nan} NaN/Inf values "
            f"(float path has {int(np.sum(~np.isfinite(exact)))})",
            {"count": bad_nan},
        )

    drift = np.abs(fast.astype(np.float64) - exact)
    finite = drift[np.isfinite(drift)]
    max_drift = float(finite.max()) if finite.size else float("inf")
    stats["max_drift"] = max_drift
    scale = float(np.max(np.abs(exact))) if exact.size else 0.0
    budget = _GR006_DRIFT_ATOL + _GR006_DRIFT_RTOL * scale
    if not np.isfinite(max_drift) or max_drift > budget:
        rows = np.where(
            ~np.all(np.nan_to_num(drift, nan=np.inf) <= budget, axis=1)
        )[0]
        report.emit(
            GR006, where,
            f"fast-tier logits drift beyond the quantization budget on "
            f"{rows.size} of {len(picked)} graphs "
            f"(max abs drift {max_drift:.3e}, budget {budget:.3e})",
            {
                "graphs": [int(r) for r in rows[:16]],
                "max_drift": max_drift,
                "budget": budget,
            },
        )

    # margin-aware verdict flips: an argmax change where the float path
    # was confidently decided is corruption, not quantization noise
    exact_verdicts = np.argmax(exact, axis=1)
    fast_verdicts = np.argmax(np.nan_to_num(fast, nan=-np.inf), axis=1)
    sorted_logits = np.sort(exact, axis=1)
    margins = sorted_logits[:, -1] - sorted_logits[:, -2]
    flips = np.where(
        (exact_verdicts != fast_verdicts) & (margins > _GR006_FLIP_MARGIN)
    )[0]
    stats["verdict_flips"] = int(flips.size)
    if flips.size:
        report.emit(
            GR006, where,
            f"fast tier flips the verdict on {flips.size} of {len(picked)} "
            f"graphs the float path classified with margin > "
            f"{_GR006_FLIP_MARGIN:g}",
            {
                "graphs": [int(r) for r in flips[:16]],
                "margins": [float(margins[r]) for r in flips[:16]],
            },
        )
    return stats
