"""GR005: tape-compiled vs interpreted forward consistency.

The trace-compiled runtime (:mod:`repro.runtime.tape`) promises outputs
byte-identical to the layer-by-layer interpreted forward.  This rule drives
both paths over real dataset samples with a deterministic probe model and
emits a finding on any NaN, shape drift, or value drift between them — the
runtime analogue of the GR001–GR004 raw-array checks, run as part of
``repro lint`` so dataset validation also exercises the compiled path the
serving fleet uses.

Heavy dependencies (models, the runtime engine) are imported lazily so the
lint framework itself stays importable without the model stack.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.lint.core import LintReport, Severity, rule

GR005 = rule(
    "GR005", "graph", Severity.ERROR,
    "tape-compiled forward must match the interpreted forward exactly",
)

#: deterministic probe-model seed — findings must be reproducible run-to-run
_PROBE_SEED = 0

#: graphs compared per lint run; the tape is shape-specialized per batch
#: size, so a handful of ragged samples covers the interesting classes
_DEFAULT_MAX_GRAPHS = 8


def check_tape_consistency(
    report: LintReport,
    samples: Iterable,
    where: str = "dataset",
    max_graphs: Optional[int] = None,
) -> int:
    """Run GR005 over ``samples`` (LoopSample-likes), emitting into ``report``.

    Builds a small deterministic MV-GNN sized to the samples' feature
    dimensions, classifies up to ``max_graphs`` of them through both the
    tape-compiled and the interpreted engine paths, and compares the logit
    matrices.  Returns the number of graphs compared (0 when there is
    nothing to check).
    """
    from repro.models.dgcnn import DGCNNConfig
    from repro.models.mvgnn import MVGNN, MVGNNConfig
    from repro.runtime.engine import Engine
    from repro.runtime.features import FeatureCache

    limit = _DEFAULT_MAX_GRAPHS if max_graphs is None else max_graphs
    picked = [s for _, s in zip(range(limit), samples)]
    if not picked:
        return 0

    sem_dim = int(np.asarray(picked[0].x_semantic).shape[1])
    walk_dim = int(np.asarray(picked[0].x_structural).shape[1])
    config = MVGNNConfig(
        semantic_features=sem_dim,
        walk_types=walk_dim,
        view_features=16,
        node_view=DGCNNConfig(sortpool_k=6),
        struct_view=DGCNNConfig(sortpool_k=6),
    )
    model = MVGNN(config, rng=_PROBE_SEED)
    model.eval()

    # one shared cache: the compiled path's hoisted D̃⁻¹Ã blocks feed the
    # interpreted engine too, so the comparison also covers the hoisting
    cache = FeatureCache()
    compiled = Engine(model, cache=cache, compile=True).logits_many(picked)
    interpreted = Engine(model, cache=cache, compile=False).logits_many(picked)

    if compiled.shape != interpreted.shape:
        report.emit(
            GR005, where,
            f"tape logits shape {compiled.shape} != interpreted "
            f"{interpreted.shape}",
            {
                "compiled_shape": list(compiled.shape),
                "interpreted_shape": list(interpreted.shape),
            },
        )
        return len(picked)

    bad_nan = int(np.sum(~np.isfinite(compiled)))
    if bad_nan:
        report.emit(
            GR005, where,
            f"tape logits contain {bad_nan} NaN/Inf values "
            f"(interpreted has {int(np.sum(~np.isfinite(interpreted)))})",
            {"count": bad_nan},
        )

    drift = np.abs(compiled - interpreted)
    drift = drift[np.isfinite(drift)]
    max_drift = float(drift.max()) if drift.size else 0.0
    if not np.array_equal(compiled, interpreted):
        rows = np.where(
            ~np.all(
                np.isclose(compiled, interpreted, rtol=0.0, atol=0.0),
                axis=1,
            )
        )[0]
        report.emit(
            GR005, where,
            f"tape logits drift from interpreted on {rows.size} of "
            f"{len(picked)} graphs (max abs drift {max_drift:.3e})",
            {"graphs": [int(r) for r in rows[:16]], "max_drift": max_drift},
        )
    return len(picked)
